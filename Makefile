# Convenience targets for the proteus-repro repository.

PYTHON ?= python

.PHONY: install test bench bench-smoke figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# One-round routing/bloom microbenches plus the chaos availability check
# and the hot-key storm, autopilot, net-throughput, and overload
# ratchets: fast CI canary for the vectorized hot path, the degraded
# fetch path, the armor's load-flattening gate, the pipelined
# transport's RPS gate, and the overload armor's goodput/recovery gate
# (speedup/availability gates still enforced; absolute numbers are noisy).
bench-smoke:
	PROTEUS_BENCH_ROUNDS=1 $(PYTHON) -m pytest \
		benchmarks/bench_routing_perf.py --benchmark-disable -q -s
	$(PYTHON) benchmarks/bench_routing_shootout.py \
		--sizes 40,128 --keys 20000 --rounds 1
	$(PYTHON) benchmarks/bench_fault_tolerance.py --rounds 1
	$(PYTHON) benchmarks/bench_hotkey_storm.py --check
	$(PYTHON) benchmarks/bench_autopilot.py --check
	$(PYTHON) benchmarks/bench_net_throughput.py --check
	$(PYTHON) benchmarks/bench_overload.py --check

# Regenerate every paper figure as printed tables.
figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
