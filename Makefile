# Convenience targets for the proteus-repro repository.

PYTHON ?= python

.PHONY: install test bench figures examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

test-output:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Regenerate every paper figure as printed tables.
figures:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-output:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis .benchmarks
