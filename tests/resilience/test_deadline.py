"""Deadline budgets: clock-injected, deterministic expiry."""

import pytest

from repro.errors import DeadlineExceeded
from repro.resilience import Deadline


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestDeadline:
    def test_counts_down_against_the_injected_clock(self):
        clock = FakeClock(10.0)
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining() == 2.0
        assert not deadline.expired()
        clock.advance(1.5)
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(1.0)
        assert deadline.expired()
        assert deadline.remaining() == 0.0

    def test_expires_exactly_at_the_boundary(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        clock.advance(1.0)
        assert deadline.expired()

    def test_allows_is_the_pre_sleep_check(self):
        clock = FakeClock()
        deadline = Deadline(1.0, clock=clock)
        assert deadline.allows(0.5)
        assert deadline.allows(1.0)
        assert not deadline.allows(1.5)
        clock.advance(0.8)
        assert not deadline.allows(0.5)

    def test_unlimited_budget_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(None, clock=clock)
        clock.advance(1e9)
        assert not deadline.expired()
        assert deadline.remaining() == float("inf")
        assert deadline.allows(1e12)
        deadline.check()  # never raises

    def test_check_raises_deadline_exceeded(self):
        clock = FakeClock()
        deadline = Deadline(0.1, clock=clock)
        deadline.check()
        clock.advance(0.2)
        with pytest.raises(DeadlineExceeded):
            deadline.check("fetch")

    def test_explicit_now_overrides_the_clock(self):
        clock = FakeClock(5.0)
        deadline = Deadline(1.0, clock=clock)
        assert deadline.expired(now=7.0)
        assert not deadline.expired(now=5.5)

    def test_expires_at_and_after(self):
        clock = FakeClock(3.0)
        deadline = Deadline.after(2.0, clock=clock)
        assert deadline.expires_at == 5.0
        assert Deadline(None, clock=clock).expires_at is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(-1.0, clock=FakeClock())
