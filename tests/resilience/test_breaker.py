"""Circuit breaker: closed/open/half-open transitions, all clock-driven."""

from repro.resilience import BreakerState, CircuitBreaker, ResiliencePolicy
from repro.resilience.faults import FaultPlan, FaultSchedule


def make(threshold=3, reset=1.0, probes=1):
    return CircuitBreaker(
        failure_threshold=threshold, reset_timeout=reset,
        half_open_probes=probes,
    )


class TestTripCycle:
    def test_stays_closed_below_the_threshold(self):
        breaker = make(threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.1)
        assert breaker.state(0.2) is BreakerState.CLOSED
        assert breaker.allow(0.2)

    def test_success_resets_the_consecutive_count(self):
        breaker = make(threshold=3)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.1)
        breaker.record_success(now=0.2)
        breaker.record_failure(now=0.3)
        breaker.record_failure(now=0.4)
        assert breaker.state(0.5) is BreakerState.CLOSED

    def test_threshold_opens_and_refuses(self):
        breaker = make(threshold=2, reset=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.1)
        assert breaker.state(0.2) is BreakerState.OPEN
        assert not breaker.allow(0.2)
        assert breaker.trips == 1
        assert breaker.rejections == 1

    def test_reset_timeout_admits_half_open_probes(self):
        breaker = make(threshold=1, reset=1.0, probes=1)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(0.5)
        assert breaker.state(1.0) is BreakerState.HALF_OPEN
        assert breaker.allow(1.0)       # the probe
        assert not breaker.allow(1.0)   # only one probe per window

    def test_probe_success_closes(self):
        breaker = make(threshold=1, reset=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(1.5)
        breaker.record_success(now=1.6)
        assert breaker.state(1.6) is BreakerState.CLOSED
        assert breaker.allow(1.6)

    def test_probe_failure_reopens_for_another_window(self):
        breaker = make(threshold=1, reset=1.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(1.5)
        breaker.record_failure(now=1.5)
        assert breaker.state(1.6) is BreakerState.OPEN
        assert not breaker.allow(2.0)
        assert breaker.state(2.5) is BreakerState.HALF_OPEN
        assert breaker.trips == 2

    def test_multiple_probes_window(self):
        breaker = make(threshold=1, reset=1.0, probes=2)
        breaker.record_failure(now=0.0)
        assert breaker.allow(1.1)
        assert breaker.allow(1.1)
        assert not breaker.allow(1.1)


class TestPolicyFactories:
    def test_policy_builds_breakers_and_deadlines(self):
        policy = ResiliencePolicy.aggressive(op_timeout=0.25)
        breaker = policy.new_breaker()
        assert breaker.failure_threshold == policy.breaker_failures
        assert breaker.reset_timeout == policy.breaker_reset
        deadline = policy.new_deadline()
        assert deadline.budget == policy.request_budget
        assert policy.op_timeout == 0.25

    def test_default_policy_is_benign_but_retries(self):
        policy = ResiliencePolicy.default()
        assert policy.retry.max_attempts >= 2
        assert policy.op_timeout is None
        assert policy.degrade_to_database


class TestFaultScheduleVocabulary:
    def test_plans_at_respects_windows_and_ordering(self):
        schedule = FaultSchedule()
        schedule.add(1.0, 0, FaultPlan.killed(), clear_at=3.0)
        schedule.add(2.0, 0, FaultPlan.slow(0.05))
        schedule.add(2.0, 1, FaultPlan.flaky(0.1))
        assert schedule.plans_at(0.5) == {}
        assert schedule.plans_at(1.5) == {0: FaultPlan.killed()}
        plans = schedule.plans_at(2.5)
        # later entry wins for server 0
        assert plans[0] == FaultPlan.slow(0.05)
        assert plans[1] == FaultPlan.flaky(0.1)
        assert schedule.plans_at(3.5)[0] == FaultPlan.slow(0.05)
        assert schedule.change_points() == [1.0, 2.0, 3.0]
        assert schedule.servers() == [0, 1]

    def test_kills_server_only_for_unreachable_plans(self):
        assert FaultPlan.killed().kills_server
        assert FaultPlan(blackhole=True).kills_server
        assert not FaultPlan.slow(0.1).kills_server
        assert not FaultPlan.flaky(0.3).kills_server
        assert FaultPlan.none().is_benign


class TestSnapshots:
    def test_closed_snapshot(self):
        breaker = make(threshold=2)
        breaker.record_failure(now=0.0)
        snap = breaker.snapshot(0.1)
        assert snap.state is BreakerState.CLOSED
        assert snap.open_since is None
        assert snap.consecutive_failures == 1
        assert not snap.is_open

    def test_open_snapshot_carries_trip_time(self):
        breaker = make(threshold=2, reset=1.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.3)
        snap = breaker.snapshot(0.4)
        assert snap.state is BreakerState.OPEN
        assert snap.open_since == 0.3
        assert snap.trips == 1
        assert snap.is_open

    def test_snapshot_advances_due_half_open(self):
        breaker = make(threshold=1, reset=1.0)
        breaker.record_failure(now=0.0)
        snap = breaker.snapshot(2.0)  # past the reset timeout
        assert snap.state is BreakerState.HALF_OPEN
        assert not snap.is_open  # already probing its way back

    def test_snapshot_is_frozen(self):
        import dataclasses

        snap = make().snapshot(0.0)
        try:
            snap.trips = 99
        except dataclasses.FrozenInstanceError:
            pass
        else:  # pragma: no cover
            raise AssertionError("snapshot must be immutable")

    def test_policy_health_maps_fleet_by_position(self):
        breakers = [make(threshold=1) for _ in range(3)]
        breakers[1].record_failure(now=0.0)
        report = ResiliencePolicy.health(breakers, now=0.1)
        assert set(report) == {0, 1, 2}
        assert report[1].state is BreakerState.OPEN
        assert report[0].state is BreakerState.CLOSED
        assert report[2].state is BreakerState.CLOSED
