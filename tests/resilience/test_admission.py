"""DB-path admission controllers: the live and the virtual-clock models."""

import pytest

from repro.resilience import (
    AdaptiveConcurrencyLimiter,
    ConcurrencyAdmission,
    VirtualQueueAdmission,
)

ZERO = lambda: 0.0  # noqa: E731 - constructor clock; tests pass explicit now


class TestConcurrencyAdmission:
    def test_admits_up_to_the_limiter_window(self):
        admission = ConcurrencyAdmission(
            AdaptiveConcurrencyLimiter(initial=2.0, clock=ZERO)
        )
        assert admission.admit_db(now=0.0)
        assert admission.admit_db(now=0.0)
        assert not admission.admit_db(now=0.0)
        assert admission.admitted == 2
        assert admission.shed == 1
        assert admission.depth(now=0.0) == 2.0

    def test_db_finished_releases_and_feeds_aimd(self):
        limiter = AdaptiveConcurrencyLimiter(initial=4.0, clock=ZERO)
        admission = ConcurrencyAdmission(limiter)
        assert admission.admit_db(now=0.0)
        admission.db_finished(now=0.0, completed=0.0)  # ok=True
        assert admission.depth(now=0.0) == 0.0
        assert limiter.limit > 4.0  # success grew the window

    def test_failed_completion_cuts_the_window(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=8.0, backoff=0.5, clock=ZERO
        )
        admission = ConcurrencyAdmission(limiter)
        assert admission.admit_db(now=0.0)
        admission.db_finished(now=0.0, completed=0.0, ok=False)
        assert limiter.limit == pytest.approx(4.0)
        assert admission.depth(now=0.0) == 0.0


class TestVirtualQueueAdmission:
    def test_max_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            VirtualQueueAdmission(max_depth=0)

    def test_sheds_past_the_virtual_depth(self):
        admission = VirtualQueueAdmission(max_depth=2)
        assert admission.admit_db(now=0.0)
        admission.db_finished(completed=1.0)
        assert admission.admit_db(now=0.0)
        admission.db_finished(completed=2.0)
        # Two reads still outstanding on the virtual clock: refuse.
        assert not admission.admit_db(now=0.5)
        assert admission.shed == 1
        assert admission.depth(now=0.5) == 2.0

    def test_virtual_completions_free_slots(self):
        admission = VirtualQueueAdmission(max_depth=1)
        assert admission.admit_db(now=0.0)
        admission.db_finished(completed=1.0)
        assert not admission.admit_db(now=0.5)
        # The admitted read completed at t=1: the slot is free again.
        assert admission.admit_db(now=1.5)
        admission.db_finished(completed=2.5)
        assert admission.depth(now=3.0) == 0.0

    def test_depth_counts_admitted_but_unfinished_reads(self):
        # The batch case: every admission of one batch happens before the
        # first db_finished — the bound must hold within the batch too.
        admission = VirtualQueueAdmission(max_depth=2)
        assert admission.admit_db(now=0.0)
        assert admission.admit_db(now=0.0)
        assert not admission.admit_db(now=0.0)  # no completions reported yet
        assert admission.depth(now=0.0) == 2.0
        admission.db_finished(completed=1.0)
        admission.db_finished(completed=1.0)
        assert admission.depth(now=2.0) == 0.0

    def test_inert_without_a_virtual_clock(self):
        admission = VirtualQueueAdmission(max_depth=1)
        # A driver with no clock (now=None) gets zero behaviour change.
        assert admission.admit_db(now=None)
        assert admission.admit_db(now=None)
        assert admission.shed == 0
