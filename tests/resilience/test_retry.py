"""Retry policy: seeded jitter determinism and fault classification."""

import asyncio

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    TransitionError,
    TransportError,
)
from repro.resilience import RetryPolicy


class TestClassification:
    def test_transport_faults_are_transient(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransportError("reset"))
        assert policy.is_transient(ProtocolError("desync"))
        assert policy.is_transient(ConnectionResetError())
        assert policy.is_transient(ConnectionRefusedError())
        assert policy.is_transient(asyncio.TimeoutError())
        assert policy.is_transient(OSError("no route to host"))

    def test_logic_faults_are_fatal(self):
        policy = RetryPolicy()
        assert not policy.is_transient(ConfigurationError("bad id"))
        assert not policy.is_transient(TransitionError("drain open"))
        assert not policy.is_transient(ValueError("nope"))
        assert not policy.is_transient(KeyError("nope"))

    def test_custom_transient_classes(self):
        policy = RetryPolicy(transient=(ValueError,))
        assert policy.is_transient(ValueError())
        assert not policy.is_transient(TransportError("reset"))


class TestBackoff:
    def test_exponential_growth_with_cap_no_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.3, jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5, seed=42)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second
        assert list(RetryPolicy(max_attempts=6, jitter=0.5, seed=43).delays()) != first

    def test_jitter_stays_inside_the_proportional_band(self):
        policy = RetryPolicy(
            max_attempts=40, base_delay=0.1, multiplier=1.0,
            max_delay=1.0, jitter=0.2, seed=7,
        )
        for delay in policy.delays():
            assert 0.08 <= delay <= 0.12

    def test_one_attempt_means_no_sleeps(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_total_backoff_is_the_worst_case(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.1, multiplier=2.0,
            max_delay=1.0, jitter=0.2,
        )
        assert policy.total_backoff() == pytest.approx((0.1 + 0.2) * 1.2)

    def test_backoff_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
