"""Retry policy: seeded jitter determinism and fault classification."""

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import (
    ClientOverloadError,
    ConfigurationError,
    ProtocolError,
    ServerBusyError,
    TransitionError,
    TransportError,
)
from repro.resilience import RetryPolicy


class TestClassification:
    def test_transport_faults_are_transient(self):
        policy = RetryPolicy()
        assert policy.is_transient(TransportError("reset"))
        assert policy.is_transient(ProtocolError("desync"))
        assert policy.is_transient(ConnectionResetError())
        assert policy.is_transient(ConnectionRefusedError())
        assert policy.is_transient(asyncio.TimeoutError())
        assert policy.is_transient(OSError("no route to host"))

    def test_logic_faults_are_fatal(self):
        policy = RetryPolicy()
        assert not policy.is_transient(ConfigurationError("bad id"))
        assert not policy.is_transient(TransitionError("drain open"))
        assert not policy.is_transient(ValueError("nope"))
        assert not policy.is_transient(KeyError("nope"))

    def test_custom_transient_classes(self):
        policy = RetryPolicy(transient=(ValueError,))
        assert policy.is_transient(ValueError())
        assert not policy.is_transient(TransportError("reset"))

    def test_cancellation_is_never_retried(self):
        # A retry would defeat the cancellation — even a transient tuple
        # as broad as BaseException cannot opt it back in.
        assert not RetryPolicy().is_transient(asyncio.CancelledError())
        policy = RetryPolicy(transient=(BaseException,))
        assert not policy.is_transient(asyncio.CancelledError())

    def test_shed_replies_are_never_retried(self):
        # A shed means some layer refused work it could not absorb; an
        # immediate retry is the retry-storm amplifier.
        policy = RetryPolicy()
        assert not policy.is_transient(ServerBusyError("SERVER_ERROR busy"))
        assert not policy.is_transient(ClientOverloadError("window full"))
        # Unconditional: custom transient classes cannot override it.
        broad = RetryPolicy(transient=(Exception,))
        assert not broad.is_transient(ServerBusyError("SERVER_ERROR busy"))
        assert not broad.is_transient(ClientOverloadError("window full"))
        assert broad.is_transient(TransportError("reset"))


class TestBackoff:
    def test_exponential_growth_with_cap_no_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0,
            max_delay=0.3, jitter=0.0,
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.3, 0.3])

    def test_seeded_jitter_is_deterministic(self):
        policy = RetryPolicy(max_attempts=6, jitter=0.5, seed=42)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second
        assert list(RetryPolicy(max_attempts=6, jitter=0.5, seed=43).delays()) != first

    def test_jitter_stays_inside_the_proportional_band(self):
        policy = RetryPolicy(
            max_attempts=40, base_delay=0.1, multiplier=1.0,
            max_delay=1.0, jitter=0.2, seed=7,
        )
        for delay in policy.delays():
            assert 0.08 <= delay <= 0.12

    def test_one_attempt_means_no_sleeps(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_total_backoff_is_the_worst_case(self):
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.1, multiplier=2.0,
            max_delay=1.0, jitter=0.2,
        )
        assert policy.total_backoff() == pytest.approx((0.1 + 0.2) * 1.2)

    def test_backoff_rejects_negative_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff(-1)


class TestBackoffProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
        max_attempts=st.integers(min_value=1, max_value=8),
        jitter=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_total_sleep_never_exceeds_the_budget(
        self, seed, max_attempts, jitter
    ):
        """Whatever the seed draws, the realized backoff sequence fits
        inside ``total_backoff()`` — the bound drivers charge against
        deadlines and retry budgets."""
        policy = RetryPolicy(
            max_attempts=max_attempts, base_delay=0.01, multiplier=2.0,
            max_delay=0.5, jitter=jitter, seed=seed,
        )
        delays = list(policy.delays())
        assert len(delays) == max_attempts - 1
        assert all(delay >= 0.0 for delay in delays)
        assert sum(delays) <= policy.total_backoff() + 1e-12


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
