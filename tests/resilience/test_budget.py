"""RetryBudget and AdaptiveConcurrencyLimiter: deterministic clock tests."""

import pytest

from repro.resilience import AdaptiveConcurrencyLimiter, RetryBudget

ZERO = lambda: 0.0  # noqa: E731 - constructor clock; tests pass explicit now


class TestRetryBudgetValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(ratio=1.5)
        with pytest.raises(ValueError):
            RetryBudget(min_retries_per_second=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(burst=0.5)
        with pytest.raises(ValueError):
            RetryBudget(halflife=0.0)


class TestRetryBudgetTokens:
    def test_retries_capped_at_ratio_of_requests(self):
        budget = RetryBudget(
            ratio=0.5, min_retries_per_second=0.0, clock=ZERO
        )
        budget.record_request(n=10, now=0.0)
        grants = [budget.allow_retry(now=0.0) for _ in range(6)]
        # 10 requests x 0.5 tokens = 5 retries; the 6th is refused.
        assert grants == [True] * 5 + [False]
        assert budget.granted == 5
        assert budget.denied == 1
        assert budget.requests == 10

    def test_denial_is_final_without_new_deposits(self):
        budget = RetryBudget(ratio=0.2, min_retries_per_second=0.0, clock=ZERO)
        budget.record_request(now=0.0)  # 0.2 tokens: below one retry
        assert not budget.allow_retry(now=0.0)
        assert not budget.allow_retry(now=0.0)
        # more first attempts re-fund the bucket
        budget.record_request(n=4, now=0.0)
        assert budget.allow_retry(now=0.0)

    def test_balance_decays_with_halflife(self):
        budget = RetryBudget(
            ratio=1.0, min_retries_per_second=0.0, halflife=10.0, clock=ZERO
        )
        budget.record_request(n=8, now=0.0)
        assert budget.balance(now=0.0) == pytest.approx(8.0)
        # one half-life later, half the recent volume is forgotten
        assert budget.balance(now=10.0) == pytest.approx(4.0)
        assert budget.balance(now=30.0) == pytest.approx(1.0)

    def test_burst_caps_banked_tokens(self):
        budget = RetryBudget(
            ratio=1.0, min_retries_per_second=0.0, burst=5.0, clock=ZERO
        )
        budget.record_request(n=1000, now=0.0)
        assert budget.balance(now=0.0) == pytest.approx(5.0)

    def test_trickle_reserve_for_low_volume_clients(self):
        budget = RetryBudget(ratio=0.2, min_retries_per_second=1.0, clock=ZERO)
        budget.record_request(now=5.0)  # 0.2 tokens; reserve accrued to cap
        # The reserve is capped at one retry, however long the quiet spell.
        assert budget.allow_retry(now=100.0)
        assert not budget.allow_retry(now=100.0)

    def test_zero_reserve_starves_without_volume(self):
        budget = RetryBudget(ratio=0.2, min_retries_per_second=0.0, clock=ZERO)
        assert not budget.allow_retry(now=1000.0)
        assert budget.denied == 1


class TestLimiterValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(min_limit=0.5)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(min_limit=4.0, max_limit=2.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(initial=2048.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(increase=0.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(backoff=1.0)
        with pytest.raises(ValueError):
            AdaptiveConcurrencyLimiter(cooldown=-0.1)


class TestLimiterAdmission:
    def test_window_bounds_inflight(self):
        limiter = AdaptiveConcurrencyLimiter(initial=2.0, clock=ZERO)
        assert limiter.try_acquire(now=0.0)
        assert limiter.try_acquire(now=0.0)
        assert not limiter.try_acquire(now=0.0)
        assert limiter.shed == 1
        assert limiter.peak_inflight == 2
        limiter.release()
        assert limiter.try_acquire(now=0.0)

    def test_release_clamps_at_zero(self):
        limiter = AdaptiveConcurrencyLimiter(initial=2.0, clock=ZERO)
        limiter.release()  # spurious: must not go negative
        assert limiter.inflight == 0
        assert limiter.try_acquire(now=0.0)
        assert limiter.inflight == 1

    def test_integral_window_is_at_least_one(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=1.0, min_limit=1.0, clock=ZERO
        )
        for _ in range(10):
            limiter.on_overload(now=limiter.cuts * 10.0)
        assert limiter.limit == 1.0
        assert limiter.window == 1
        assert limiter.try_acquire(now=0.0)


class TestLimiterAIMD:
    def test_one_window_of_successes_grows_limit_by_about_one(self):
        limiter = AdaptiveConcurrencyLimiter(initial=8.0, clock=ZERO)
        for _ in range(8):
            limiter.on_success(now=0.0)
        assert 8.9 <= limiter.limit <= 9.1

    def test_growth_clamped_at_max_limit(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=4.0, max_limit=4.5, clock=ZERO
        )
        for _ in range(100):
            limiter.on_success(now=0.0)
        assert limiter.limit == 4.5

    def test_overload_cuts_multiplicatively(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=16.0, backoff=0.5, cooldown=1.0, clock=ZERO
        )
        limiter.on_overload(now=0.0)
        assert limiter.limit == pytest.approx(8.0)
        assert limiter.cuts == 1

    def test_cooldown_absorbs_echoes_of_one_congestion_event(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=16.0, backoff=0.5, cooldown=1.0, clock=ZERO
        )
        limiter.on_overload(now=0.0)
        # All the timeouts of one stalled window arrive together: one cut.
        limiter.on_overload(now=0.2)
        limiter.on_overload(now=0.9)
        assert limiter.limit == pytest.approx(8.0)
        assert limiter.cuts == 1
        limiter.on_overload(now=2.0)  # a new event, after the cooldown
        assert limiter.limit == pytest.approx(4.0)
        assert limiter.cuts == 2

    def test_cuts_bottom_out_at_min_limit(self):
        limiter = AdaptiveConcurrencyLimiter(
            initial=16.0, min_limit=2.0, cooldown=0.0, clock=ZERO
        )
        for i in range(20):
            limiter.on_overload(now=float(i))
        assert limiter.limit == 2.0
