"""Tests for the PDU-style power meter."""

import pytest

from repro.errors import ConfigurationError
from repro.power.meter import PowerMeter, busy_time_probe, utilization_probe
from repro.power.model import ServerPowerModel

MODEL = ServerPowerModel(p_off=5, p_idle=70, p_peak=120)


class TestPowerMeter:
    def test_sample_sums_channels(self):
        meter = PowerMeter()
        meter.add_channel("a", "cache", lambda t: (True, 0.0), MODEL)
        meter.add_channel("b", "cache", lambda t: (False, 0.0), MODEL)
        assert meter.sample(0.0) == 75.0

    def test_per_tier_series(self):
        meter = PowerMeter()
        meter.add_channel("c0", "cache", lambda t: (True, 0.0), MODEL)
        meter.add_channel("w0", "web", lambda t: (True, 1.0), MODEL)
        meter.sample(0.0)
        assert meter.tier_series["cache"].values == [70.0]
        assert meter.tier_series["web"].values == [120.0]
        assert meter.total_series.values == [190.0]
        assert meter.tiers() == ["cache", "web"]

    def test_energy_integration(self):
        meter = PowerMeter()
        meter.add_channel("a", "cache", lambda t: (True, 0.0), MODEL)
        meter.sample(0.0)
        meter.sample(3600.0)
        assert meter.energy_joules() == pytest.approx(70.0 * 3600)
        assert meter.energy_kwh() == pytest.approx(0.07)
        assert meter.energy_kwh("cache") == pytest.approx(0.07)

    def test_next_sample_due(self):
        meter = PowerMeter(sample_period=15.0)
        assert meter.next_sample_due(100.0) == 100.0
        meter.sample(100.0)
        assert meter.next_sample_due(100.0) == 115.0

    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            PowerMeter(sample_period=0.0)


class TestProbes:
    def test_utilization_probe_counts_window_ops(self):
        counter = {"n": 0}
        probe = utilization_probe(
            requests_counter=lambda: counter["n"],
            powered=lambda: True,
            op_cost=0.01,
        )
        assert probe(0.0) == (True, 0.0)  # first sample: no window yet
        counter["n"] = 500  # 500 ops in 10 s at 10 ms each -> 50% busy
        on, utilization = probe(10.0)
        assert on and utilization == pytest.approx(0.5)

    def test_utilization_probe_caps_at_one(self):
        counter = {"n": 0}
        probe = utilization_probe(lambda: counter["n"], lambda: True, 1.0)
        probe(0.0)
        counter["n"] = 10_000
        assert probe(10.0)[1] == 1.0

    def test_busy_time_probe(self):
        busy = {"t": 0.0}
        probe = busy_time_probe(lambda: busy["t"], lambda: True)
        probe(0.0)
        busy["t"] = 5.0
        on, utilization = probe(10.0)
        assert on and utilization == pytest.approx(0.5)

    def test_busy_time_probe_powered_flag(self):
        probe = busy_time_probe(lambda: 0.0, lambda: False)
        assert probe(0.0)[0] is False
