"""Tests for the server power model."""

import pytest

from repro.errors import ConfigurationError
from repro.power.model import ServerPowerModel


class TestServerPowerModel:
    def test_off_draws_standby(self):
        model = ServerPowerModel(p_off=5, p_idle=70, p_peak=120)
        assert model.power(False, 1.0) == 5

    def test_linear_interpolation(self):
        model = ServerPowerModel(p_off=5, p_idle=70, p_peak=120)
        assert model.power(True, 0.0) == 70
        assert model.power(True, 1.0) == 120
        assert model.power(True, 0.5) == 95

    def test_utilization_clamped(self):
        model = ServerPowerModel()
        assert model.power(True, 1.5) == model.power(True, 1.0)
        assert model.power(True, -0.5) == model.power(True, 0.0)

    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            ServerPowerModel(p_off=100, p_idle=70, p_peak=120)
        with pytest.raises(ConfigurationError):
            ServerPowerModel(p_off=5, p_idle=150, p_peak=120)

    def test_efficiency(self):
        model = ServerPowerModel(p_off=0, p_idle=50, p_peak=100)
        assert model.efficiency(200.0, 1.0) == pytest.approx(2.0)

    def test_scaled(self):
        model = ServerPowerModel(p_off=5, p_idle=70, p_peak=120).scaled(2.0)
        assert model.p_idle == 140
        with pytest.raises(ConfigurationError):
            model.scaled(0.0)

    def test_idle_dominates_energy(self):
        # The premise of power-proportional provisioning: an idle-but-on
        # server still burns most of its peak power.
        model = ServerPowerModel()
        assert model.power(True, 0.0) > 0.5 * model.power(True, 1.0)
