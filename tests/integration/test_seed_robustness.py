"""The headline orderings must hold across seeds, not on one lucky draw."""

import pytest

from repro.experiments.cluster import ExperimentConfig, run_scenarios
from repro.provisioning.policies import ProvisioningSchedule

SEEDS = (101, 202)


def tiny_config(seed: int) -> ExperimentConfig:
    return ExperimentConfig(
        schedule=ProvisioningSchedule(45.0, [4, 3, 4]),
        users_per_slot=[48, 36, 48],
        num_cache_servers=4,
        num_web_servers=2,
        num_db_shards=2,
        catalogue_size=3000,
        cache_capacity_bytes=4096 * 1200,
        ttl=20.0,
        plot_slots=9,
        pages_per_user=25,
        seed=seed,
        warmup_seconds=10.0,
    )


@pytest.fixture(scope="module")
def all_reports():
    return {seed: run_scenarios(tiny_config(seed)) for seed in SEEDS}


class TestOrderingsAcrossSeeds:
    def test_naive_spikes_worst_every_seed(self, all_reports):
        for seed, reports in all_reports.items():
            assert (
                reports["Naive"].peak_latency(99.0)
                > reports["Proteus"].peak_latency(99.0)
            ), f"seed {seed}"

    def test_proteus_db_pressure_lowest_dynamic_every_seed(self, all_reports):
        for seed, reports in all_reports.items():
            assert (
                reports["Proteus"].db_requests
                < reports["Naive"].db_requests
            ), f"seed {seed}"
            assert (
                reports["Proteus"].db_requests
                <= reports["Consistent"].db_requests
            ), f"seed {seed}"

    def test_energy_savings_every_seed(self, all_reports):
        for seed, reports in all_reports.items():
            static = reports["Static"].energy_kwh["cache"]
            for name in ("Naive", "Consistent", "Proteus"):
                assert reports[name].energy_kwh["cache"] < static, (
                    f"seed {seed}, scenario {name}"
                )

    def test_hit_ratio_ordering_every_seed(self, all_reports):
        for seed, reports in all_reports.items():
            assert (
                reports["Proteus"].hit_ratio > reports["Naive"].hit_ratio
            ), f"seed {seed}"
