"""Regression lock on the Fig. 9 spike ordering.

The paper's headline response-time result: abrupt (Naive) transitions dump
remapped keys onto the database and spike the tail latency, while Proteus's
smooth transitions keep the curve flat.  This test pins the *ordering* of
the spike ratios on a small :class:`ClusterExperiment` run, so refactors of
the retrieval path (e.g. moving Algorithm 2 into the sans-IO engine)
provably do not change experiment behaviour.
"""

import pytest

from repro.experiments.cluster import (
    ClusterExperiment,
    ExperimentConfig,
    ScenarioSpec,
)
from repro.provisioning.policies import ProvisioningSchedule


@pytest.fixture(scope="module")
def reports():
    # One scale-down only: the slots around it carry the spike, the rest
    # stay quiet, so peak-over-median isolates the transition penalty.
    config = ExperimentConfig(
        schedule=ProvisioningSchedule(30.0, [4, 3, 3, 3]),
        users_per_slot=[40, 30, 30, 30],
        num_cache_servers=4,
        num_web_servers=2,
        num_db_shards=3,
        catalogue_size=2000,
        cache_capacity_bytes=4096 * 800,
        ttl=15.0,
        plot_slots=12,
        pages_per_user=20,
        seed=5,
        warmup_seconds=10.0,
    )
    return {
        spec.name: ClusterExperiment(spec, config).run()
        for spec in (ScenarioSpec.naive(), ScenarioSpec.proteus())
    }


class TestSpikeOrdering:
    def test_naive_spike_ratio_dominates_proteus(self, reports):
        naive = reports["Naive"].spike_ratio(99.0)
        proteus = reports["Proteus"].spike_ratio(99.0)
        assert naive > 3 * proteus

    def test_proteus_stays_near_flat(self, reports):
        # ~1 means no transition spike; leave headroom for queueing noise
        # at this small scale, but far below the Naive spike.
        assert reports["Proteus"].spike_ratio(99.0) < 20.0

    def test_naive_spikes_visibly(self, reports):
        assert reports["Naive"].spike_ratio(99.0) > 20.0

    def test_smooth_transition_keeps_db_quiet(self, reports):
        assert reports["Proteus"].db_requests < reports["Naive"].db_requests
