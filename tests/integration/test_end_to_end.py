"""End-to-end flows across packages (no reduced-claim scaffolding)."""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.core.transition import TransitionManager
from repro.database.cluster import DatabaseCluster
from repro.net.client import MemcachedClient
from repro.net.server import MemcachedServer
from repro.provisioning.actuator import ProvisioningActuator
from repro.provisioning.controller import run_feedback_loop
from repro.provisioning.policies import limit_step_size
from repro.sim.events import EventLoop
from repro.web.frontend import FetchPath, WebServer
from repro.workload.trace import slot_counts
from repro.workload.wikipedia import generate_trace

CFG = optimal_config(2000)


class TestFullProvisioningPipeline:
    """Trace -> feedback loop -> schedule -> actuator -> cluster, like the
    paper's end-to-end methodology (Fig. 4 then Figs. 9-11)."""

    def test_trace_to_schedule_to_actuation(self):
        trace = generate_trace(
            duration=400.0, mean_rate=300.0, num_pages=2000,
            peak_to_valley=2.0, seed=31,
        )
        counts = slot_counts(trace, slot_seconds=50.0, num_slots=8)
        rates = [c / 50.0 for c in counts]
        schedule = limit_step_size(
            run_feedback_loop(rates, num_servers=8, per_server_rate=60.0,
                              slot_seconds=50.0)
        )
        assert schedule.num_slots == 8
        assert max(schedule.counts) > min(schedule.counts)  # tracks diurnal

        cache = CacheCluster(
            ProteusRouter(8), capacity_bytes=4096 * 500,
            initial_active=schedule.counts[0], ttl=10.0, bloom_config=CFG,
        )
        actuator = ProvisioningActuator(cache, smooth=True)
        loop = EventLoop()
        actuator.install(schedule, loop)
        loop.run_until(schedule.duration)
        assert cache.active_count == schedule.counts[-1]
        assert len(actuator.applied) == len(schedule.transitions())


class TestMultiWebServerConsistency:
    def test_independent_web_servers_agree_on_placement(self):
        """Section I objective 3: decisions must be consistent across web
        servers, with no coordination."""
        cache = CacheCluster(
            ProteusRouter(5), capacity_bytes=4096 * 500, bloom_config=CFG
        )
        db = DatabaseCluster(2)
        webs = [WebServer(i, cache, db, seed=i) for i in range(4)]
        # Each web server writes some keys; every other web server must hit.
        t = 0.0
        keys = [f"page:{i}" for i in range(40)]
        for i, key in enumerate(keys):
            webs[i % 4].fetch(key, t)
            t += 0.01
        for key in keys:
            for web in webs:
                result = web.fetch(key, t)
                assert result.path is FetchPath.HIT_NEW
                t += 0.01


class TestSimAndNetAgree:
    """The asyncio memcached server and the in-process cache server share
    store+digest code; a transition decision computed from TCP-fetched
    digests must match one computed in-process."""

    def test_digest_over_tcp_equals_in_process_snapshot(self):
        async def body():
            server = MemcachedServer(bloom_config=CFG)
            await server.start()
            try:
                async with MemcachedClient("127.0.0.1", server.port) as client:
                    for i in range(100):
                        await client.set(f"page:{i}", b"x")
                    await client.snapshot_digest()
                    over_tcp = await client.fetch_digest(
                        CFG.num_counters, CFG.num_hashes
                    )
            finally:
                await server.stop()
            in_process = server.digest.snapshot()
            probes = [f"page:{i}" for i in range(200)]
            assert [k in over_tcp for k in probes] == [
                k in in_process for k in probes
            ]
            return over_tcp

        digest = asyncio.run(body())
        # And that digest drives a TransitionManager exactly like a local one.
        mgr = TransitionManager(4, ttl=30.0)
        transition = mgr.begin(3, now=0.0, digests={3: digest})
        assert transition.digest_hit(3, "page:5")
        assert not transition.digest_hit(3, "page:150")


class TestColdStartRecovery:
    def test_scale_up_after_long_off_period_is_cold_but_correct(self):
        cache = CacheCluster(
            ProteusRouter(4), capacity_bytes=4096 * 500,
            initial_active=4, ttl=5.0, bloom_config=CFG,
        )
        db = DatabaseCluster(2)
        web = WebServer(0, cache, db)
        t = 0.0
        for i in range(50):
            web.fetch(f"page:{i}", t)
            t += 0.01
        # down to 2, let the window close, then back up to 4
        cache.scale_to(2, now=t)
        cache.finalize_expired(t + 6.0)
        t += 10.0
        cache.scale_to(4, now=t)
        # servers 2,3 are cold; their keys come from old owners 0,1 via
        # digest (those still hold them) or the DB; either way values match.
        for i in range(50):
            result = web.fetch(f"page:{i}", t)
            assert result.value == db.shard_for(f"page:{i}").lookup(f"page:{i}")
            t += 0.01
