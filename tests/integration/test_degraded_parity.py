"""Sim-vs-live parity under faults: one FaultSchedule, two substrates.

The same scripted fault is realized twice — in the simulator as
crash events (via :func:`failure_events_from_schedule`) and against the
live tier as chaos-proxy plans (via :meth:`FaultSchedule.plans_at`) —
and both sides must report the *same* engine accounting: identical
``FetchStats.counts`` per path and identical ``FetchStats.degraded``
event counters.  This is the fault-injection extension of the repo's
sim-vs-live retrieval parity suite.
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.experiments.failover import failure_events_from_schedule
from repro.net.chaosproxy import ChaosProxy
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.resilience import FaultPlan, FaultSchedule, ResiliencePolicy
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

N_SERVERS = 3
BLOOM = optimal_config(1000)
KEYS = [f"page:{i}" for i in range(24)]
#: live fails fast so the degraded answer arrives within the test budget
POLICY = ResiliencePolicy.aggressive(op_timeout=0.2)
FAULT_AT = 1.0


def schedule_killing(server_id):
    schedule = FaultSchedule()
    schedule.add(FAULT_AT, server_id, FaultPlan.killed())
    return schedule


def run(coro):
    return asyncio.run(coro)


def value_of(key):
    return f"db:{key}".encode()


async def database(key):
    return value_of(key)


def run_sim(schedule, transition_to=None):
    """Warm, apply *schedule* as crash events, refetch; return stats."""
    cache = CacheCluster(
        ProteusRouter(N_SERVERS),
        capacity_bytes=4096 * 2000,
        bloom_config=BLOOM,
    )
    db = DatabaseCluster(2, service_model=Constant(0.0001))
    web = WebServer(
        0, cache, db,
        cache_latency=Constant(0.0001), web_overhead=Constant(0.0001),
    )
    now = 0.0
    for key in KEYS:
        web.fetch(key, now=now)
        now += 0.01
    if transition_to is not None:
        cache.scale_to(transition_to, now=FAULT_AT)
    for event in failure_events_from_schedule(schedule):
        cache.fail_server(event.server_id, event.when)
    now = FAULT_AT + 0.1
    for key in KEYS:
        web.fetch(key, now=now)
        now += 0.01
    return web.stats


async def run_live(schedule, transition_to=None):
    """The same script against real servers behind chaos proxies."""
    servers = [MemcachedServer(bloom_config=BLOOM) for _ in range(N_SERVERS)]
    for server in servers:
        await server.start()
    proxies = [ChaosProxy("127.0.0.1", server.port) for server in servers]
    for proxy in proxies:
        await proxy.start()
    web = AsyncProteusFrontend(
        [("127.0.0.1", proxy.port) for proxy in proxies],
        BLOOM,
        database,
        resilience=POLICY,
    )
    try:
        await web.connect()
        for key in KEYS:
            await web.fetch(key)
        if transition_to is not None:
            await web.scale_to(transition_to, ttl=60.0)
        for server_id, plan in schedule.plans_at(FAULT_AT + 0.1).items():
            proxies[server_id].set_plan(plan)
        for key in KEYS:
            result = await web.fetch(key)
            assert result.value == value_of(key)
        return web.stats
    finally:
        await web.close()
        for proxy in proxies:
            await proxy.close()
        for server in servers:
            await server.stop()


def assert_parity(sim_stats, live_stats):
    assert sim_stats.counts == live_stats.counts
    assert sim_stats.degraded == live_stats.degraded
    assert sim_stats.degraded_events == live_stats.degraded_events


@pytest.mark.timeout(120)
class TestDegradedParity:
    def test_killed_owner_steady_state(self):
        # Kill server 0 after warming: its keys degrade to the database
        # (probe skipped, write-back skipped) on both substrates.
        schedule = schedule_killing(0)
        sim_stats = run_sim(schedule)
        live_stats = run(run_live(schedule))
        assert_parity(sim_stats, live_stats)
        assert sim_stats.counts["degraded_db"] > 0
        assert sim_stats.degraded["probe_new"] > 0
        assert sim_stats.degraded["writeback"] > 0

    def test_killed_old_owner_mid_transition(self):
        # Scale 3 -> 2, then kill the retiring server: every moved key's
        # digest hit leads to a dead old owner, so the hot-copy pull
        # degrades to the database while the write-back still installs
        # the value at the healthy new owner.
        schedule = schedule_killing(2)
        sim_stats = run_sim(schedule, transition_to=2)
        live_stats = run(run_live(schedule, transition_to=2))
        assert_parity(sim_stats, live_stats)
        assert sim_stats.degraded["probe_old"] > 0
        assert sim_stats.counts["degraded_db"] > 0

    def test_benign_schedule_stays_clean(self):
        # An empty schedule maps to zero crash events and benign proxies:
        # both substrates must report zero degraded activity.
        schedule = FaultSchedule()
        sim_stats = run_sim(schedule)
        live_stats = run(run_live(schedule))
        assert_parity(sim_stats, live_stats)
        assert sim_stats.degraded_events == 0
