"""Sim-vs-live health parity: one FaultSchedule, two monitors.

The same scripted fault is realized on both substrates — crash events in
the simulator, chaos-proxy plans against real servers — and a
:class:`ClusterHealthMonitor` wired to each (``for_simulation`` /
``for_frontend``) must produce *equivalent* ``HealthSnapshot`` series:
identical request/degraded/remap windows, and the same unhealthy-server
verdict, even though the sim learns it from the crash oracle and the live
tier from tripped breakers.  This is what lets the closed-loop controller
be developed against the simulator and deployed against the live tier.
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.experiments.failover import failure_events_from_schedule
from repro.net.chaosproxy import ChaosProxy
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.provisioning.health import ClusterHealthMonitor
from repro.resilience import FaultPlan, FaultSchedule, ResiliencePolicy
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

N_SERVERS = 3
BLOOM = optimal_config(1000)
KEYS = [f"page:{i}" for i in range(24)]
POLICY = ResiliencePolicy.aggressive(op_timeout=0.2)
FAULT_AT = 1.0


def schedule_killing(server_id):
    schedule = FaultSchedule()
    schedule.add(FAULT_AT, server_id, FaultPlan.killed())
    return schedule


def run(coro):
    return asyncio.run(coro)


def value_of(key):
    return f"db:{key}".encode()


async def database(key):
    return value_of(key)


def run_sim(schedule, transition_to=None):
    """Warm, fault, refetch — observing health before and after."""
    cache = CacheCluster(
        ProteusRouter(N_SERVERS),
        capacity_bytes=4096 * 2000,
        bloom_config=BLOOM,
    )
    db = DatabaseCluster(2, service_model=Constant(0.0001))
    web = WebServer(
        0, cache, db,
        cache_latency=Constant(0.0001), web_overhead=Constant(0.0001),
    )
    monitor = ClusterHealthMonitor.for_simulation(cache, [web])
    now = 0.0
    for key in KEYS:
        web.fetch(key, now=now)
        now += 0.01
    before = monitor.observe(now)
    if transition_to is not None:
        cache.scale_to(transition_to, now=FAULT_AT)
    for event in failure_events_from_schedule(schedule):
        cache.fail_server(event.server_id, event.when)
    now = FAULT_AT + 0.1
    for key in KEYS:
        web.fetch(key, now=now)
        now += 0.01
    after = monitor.observe(now)
    return before, after


async def run_live(schedule, transition_to=None):
    """The same script against real servers behind chaos proxies."""
    servers = [MemcachedServer(bloom_config=BLOOM) for _ in range(N_SERVERS)]
    for server in servers:
        await server.start()
    proxies = [ChaosProxy("127.0.0.1", server.port) for server in servers]
    for proxy in proxies:
        await proxy.start()
    web = AsyncProteusFrontend(
        [("127.0.0.1", proxy.port) for proxy in proxies],
        BLOOM,
        database,
        resilience=POLICY,
    )
    monitor = ClusterHealthMonitor.for_frontend(web)
    try:
        await web.connect()
        for key in KEYS:
            await web.fetch(key)
        before = monitor.observe(web._clock())
        if transition_to is not None:
            await web.scale_to(transition_to, ttl=60.0)
        for server_id, plan in schedule.plans_at(FAULT_AT + 0.1).items():
            proxies[server_id].set_plan(plan)
        for key in KEYS:
            result = await web.fetch(key)
            assert result.value == value_of(key)
        after = monitor.observe(web._clock())
        return before, after
    finally:
        await web.close()
        for proxy in proxies:
            await proxy.close()
        for server in servers:
            await server.stop()


def assert_window_parity(sim_snap, live_snap):
    """The engine-derived window facts must match exactly."""
    assert sim_snap.requests == live_snap.requests
    assert sim_snap.degraded == live_snap.degraded
    assert sim_snap.remap_misses == live_snap.remap_misses


@pytest.mark.timeout(120)
class TestHealthParity:
    def test_killed_owner_same_verdict(self):
        schedule = schedule_killing(0)
        sim_before, sim_after = run_sim(schedule)
        live_before, live_after = run(run_live(schedule))

        assert_window_parity(sim_before, live_before)
        assert sim_before.healthy and live_before.healthy

        assert_window_parity(sim_after, live_after)
        # Substrate-specific detection, identical verdict: the simulator's
        # crash oracle names the server, the live tier's breaker trips on it.
        assert sim_after.failed_servers == frozenset({0})
        assert 0 in live_after.open_servers
        assert sim_after.unhealthy_servers == live_after.unhealthy_servers
        assert not sim_after.healthy and not live_after.healthy

    def test_mid_transition_windows_agree(self):
        # Kill the retiring old owner: digest hits on moved keys degrade
        # to the database (no old-owner pull completes), so both monitors
        # must agree the remap window is *empty* while still flagging the
        # open drain window and the lost server.
        schedule = schedule_killing(2)
        _, sim_after = run_sim(schedule, transition_to=2)
        _, live_after = run(run_live(schedule, transition_to=2))
        assert_window_parity(sim_after, live_after)
        assert sim_after.in_transition and live_after.in_transition
        assert sim_after.remap_misses == 0

    def test_faultless_transition_remap_signal_agrees(self):
        # A healthy 3 -> 2 transition: moved keys *do* pull from the old
        # owner, and both monitors count the same remap-miss window.
        schedule = FaultSchedule()
        _, sim_after = run_sim(schedule, transition_to=2)
        _, live_after = run(run_live(schedule, transition_to=2))
        assert_window_parity(sim_after, live_after)
        assert sim_after.remap_misses > 0
        assert sim_after.in_transition and live_after.in_transition

    def test_benign_schedule_stays_healthy(self):
        schedule = FaultSchedule()
        _, sim_after = run_sim(schedule)
        _, live_after = run(run_live(schedule))
        assert_window_parity(sim_after, live_after)
        assert sim_after.healthy and live_after.healthy
        assert sim_after.unhealthy_servers == frozenset()
        assert live_after.unhealthy_servers == frozenset()
