"""Integration: push-assisted migration through the full experiment stack."""

import pytest

from repro.experiments.cluster import ClusterExperiment, ExperimentConfig, ScenarioSpec
from repro.provisioning.policies import ProvisioningSchedule


def config(push: bool):
    return ExperimentConfig(
        schedule=ProvisioningSchedule(40.0, [4, 3, 3, 4]),
        users_per_slot=[40, 30, 30, 40],
        num_cache_servers=4,
        num_web_servers=2,
        num_db_shards=2,
        catalogue_size=2500,
        cache_capacity_bytes=4096 * 1500,
        ttl=15.0,
        plot_slots=8,
        pages_per_user=40,  # revisit interval ~20 s > TTL: residue exists
        seed=9,
        warmup_seconds=10.0,
        push_migration=push,
    )


class TestPushThroughActuator:
    def test_actuator_creates_migrators_for_smooth_transitions(self):
        experiment = ClusterExperiment(ScenarioSpec.proteus(), config(True))
        experiment.run()
        assert len(experiment.actuator.migrators) == 2  # 4->3 and 3->4
        assert all(m.done for m in experiment.actuator.migrators)
        assert sum(m.progress.pushed for m in experiment.actuator.migrators) > 0

    def test_push_reduces_db_pressure(self):
        without = ClusterExperiment(ScenarioSpec.proteus(), config(False)).run()
        with_push = ClusterExperiment(ScenarioSpec.proteus(), config(True)).run()
        assert with_push.db_requests <= without.db_requests
        assert with_push.hit_ratio >= without.hit_ratio - 0.005

    def test_abrupt_scenarios_never_push(self):
        experiment = ClusterExperiment(ScenarioSpec.naive(), config(True))
        experiment.run()
        assert experiment.actuator.migrators == []
