"""Integration tests pinned to the paper's quantitative and qualitative claims.

Each test names the paper statement it checks.  Scales are reduced, so
assertions target the *shape* (orderings, ratios, zero-penalty properties),
not the absolute testbed numbers.
"""

import pytest

from repro.bloom.config import optimal_config
from repro.core.migration import empirical_remap_fraction, migration_lower_bound
from repro.core.placement import place_virtual_nodes, theoretical_min_vnodes
from repro.core.router import NaiveRouter, ProteusRouter
from repro.experiments.cluster import ExperimentConfig, run_scenarios
from repro.provisioning.policies import ProvisioningSchedule


class TestSectionIClaims:
    def test_reddit_incident_n_over_n_plus_1(self):
        """Intro: adding one server to an n-server modulo cluster remaps
        n/(n+1) of data IDs."""
        for n in (4, 9):
            measured = empirical_remap_fraction(
                NaiveRouter(n + 1), n, n + 1, num_samples=6000
            )
            assert measured == pytest.approx(n / (n + 1), abs=0.02)


class TestSectionIIIClaims:
    def test_theorem1_and_algorithm1_agree(self):
        """Theorem 1's N(N-1)/2+1 bound is met with equality by Algorithm 1."""
        for n in (2, 5, 10):
            assert place_virtual_nodes(n, 2 ** 30).num_vnodes == (
                theoretical_min_vnodes(n)
            )

    def test_migration_at_lower_bound(self):
        """Section II objective: at most |Δn|/max(n,n') of data remapped."""
        router = ProteusRouter(10)
        for n_old, n_new in ((10, 8), (6, 7), (3, 2)):
            bound = float(migration_lower_bound(n_old, n_new))
            measured = empirical_remap_fraction(router, n_old, n_new, 6000)
            assert measured <= bound + 0.02


class TestSectionIVClaims:
    def test_paper_bloom_sizing_example(self):
        """Section IV-B worked example: (1e4, 4, 1e-4, 1e-4) -> ~150 KB."""
        cfg = optimal_config(10_000, 4, 1e-4, 1e-4)
        assert cfg.counter_bits == 3
        assert 120 * 1024 < cfg.memory_bytes < 160 * 1024


class TestSectionVIClaims:
    """The headline evaluation, at reduced scale, all four scenarios."""

    @pytest.fixture(scope="class")
    def reports(self):
        schedule = ProvisioningSchedule(60.0, [6, 5, 4, 3, 4, 5, 6, 6])
        users = [90, 75, 60, 45, 60, 75, 90, 90]
        config = ExperimentConfig(
            schedule=schedule,
            users_per_slot=users,
            num_cache_servers=6,
            num_web_servers=3,
            num_db_shards=3,
            catalogue_size=6000,
            cache_capacity_bytes=4096 * 1500,
            ttl=45.0,
            plot_slots=24,
            seed=17,
            warmup_seconds=20.0,
        )
        return run_scenarios(config)

    def test_fig9_naive_has_the_worst_spike(self, reports):
        """Fig. 9: 'there is a huge response time spike' for Naive."""
        naive_peak = reports["Naive"].peak_latency(99.0)
        static_peak = reports["Static"].peak_latency(99.0)
        assert naive_peak > 2.0 * static_peak

    def test_fig9_proteus_matches_static(self, reports):
        """Fig. 9: 'Proteus's performance match what the static solution
        achieves' — peak within 2x of Static's (same order), far below
        Naive."""
        proteus_peak = reports["Proteus"].peak_latency(99.0)
        static_peak = reports["Static"].peak_latency(99.0)
        naive_peak = reports["Naive"].peak_latency(99.0)
        assert proteus_peak < 2.0 * static_peak
        assert proteus_peak < 0.5 * naive_peak

    def test_fig9_consistent_in_between(self, reports):
        """Fig. 9: consistent hashing 'shows much better performance during
        dynamics [than Naive], but there are still considerable
        performance degradation'."""
        assert (
            reports["Consistent"].peak_latency(99.0)
            < reports["Naive"].peak_latency(99.0)
        )

    def test_fig10_dynamic_scenarios_draw_less_power(self, reports):
        """Fig. 10: the three provisioned scenarios save similar power vs
        Static."""
        static = reports["Static"].energy_kwh["total"]
        for name in ("Naive", "Consistent", "Proteus"):
            assert reports[name].energy_kwh["total"] < static

    def test_fig11_energy_savings_in_paper_range(self, reports):
        """Fig. 11: ~10% whole-cluster and ~23% cache-tier saving.  Exact
        percentages depend on the schedule depth; assert the right order of
        magnitude and that cache-tier saving exceeds whole-cluster saving."""
        static = reports["Static"].energy_kwh
        proteus = reports["Proteus"].energy_kwh
        total_saving = 1 - proteus["total"] / static["total"]
        cache_saving = 1 - proteus["cache"] / static["cache"]
        assert 0.03 < total_saving < 0.30
        assert 0.10 < cache_saving < 0.45
        assert cache_saving > total_saving

    def test_proteus_saves_as_much_as_naive(self, reports):
        """Fig. 11: 'Proteus ... saves the same amount of energy compared to
        Naive and Consistent cases' (within a few percent — Proteus keeps
        drained servers on for TTL)."""
        naive = reports["Naive"].energy_kwh["total"]
        proteus = reports["Proteus"].energy_kwh["total"]
        assert proteus == pytest.approx(naive, rel=0.06)

    def test_proteus_db_pressure_flat(self, reports):
        """Section IV: 'the database tier will not realize transition
        dynamics is taking place'."""
        assert (
            reports["Proteus"].db_requests
            < 0.5 * reports["Naive"].db_requests
        )
