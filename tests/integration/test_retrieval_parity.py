"""Sim-vs-live parity for the shared Algorithm-2 retrieval engine.

Both :class:`repro.web.frontend.WebServer` (simulated substrate) and
:class:`repro.net.webtier.AsyncProteusFrontend` (asyncio TCP substrate)
drive the one sans-IO :class:`repro.core.retrieval.RetrievalEngine`.  These
tests put *equivalent cluster states* on both substrates and assert the
engines take identical :class:`FetchPath` branches for every scenario:
hit-new, hit-old, digest false positive, miss, and coalesced.
"""

import asyncio

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.retrieval import FetchPath
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

CFG = optimal_config(2000)
NUM_SERVERS = 4


def run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------- substrates


class SimSubstrate:
    """The simulated three-tier testbed, advanced by an explicit clock."""

    def __init__(self, coalesce=False, db_latency=0.005):
        self.cache = CacheCluster(
            ProteusRouter(NUM_SERVERS),
            capacity_bytes=4096 * 2000,
            ttl=60.0,
            bloom_config=CFG,
        )
        self.db = DatabaseCluster(2, service_model=Constant(db_latency))
        self.web = WebServer(
            0, self.cache, self.db,
            cache_latency=Constant(0.001), web_overhead=Constant(0.001),
            coalesce_misses=coalesce,
        )
        self.clock = 0.0

    def fetch(self, key):
        self.clock += 0.05
        return self.web.fetch(key, self.clock).path

    def scale_to(self, n_new):
        self.clock += 0.05
        self.cache.scale_to(n_new, now=self.clock)

    def transition(self):
        return self.cache.routing_epochs(self.clock).transition


class LiveSubstrate:
    """The asyncio TCP testbed: real sockets on localhost."""

    def __init__(self, coalesce=False):
        self.coalesce = coalesce
        self.db_reads = 0
        self.servers = []
        self.web = None

    async def start(self):
        self.servers = [
            MemcachedServer(bloom_config=CFG) for _ in range(NUM_SERVERS)
        ]
        endpoints = []
        for server in self.servers:
            port = await server.start()
            endpoints.append(("127.0.0.1", port))
        self.web = AsyncProteusFrontend(
            endpoints, CFG, self._db_fetch, coalesce_misses=self.coalesce
        )
        await self.web.connect()
        return self

    async def _db_fetch(self, key):
        self.db_reads += 1
        await asyncio.sleep(0.02)  # DB service time; opens a coalescing window
        return f"db-value-of-{key}".encode()

    async def fetch(self, key):
        result = await self.web.fetch(key)
        return result.path

    async def stop(self):
        if self.web is not None:
            await self.web.close()
        for server in self.servers:
            await server.stop()

    def transition(self):
        return self.web._current_transition()


# ------------------------------------------------------------------- parity


def remapped_keys(count=40):
    """Keys whose owner changes between the 4- and 3-server mappings."""
    router = ProteusRouter(NUM_SERVERS)
    found = []
    for i in range(100_000):
        key = f"page:{i}"
        if router.route(key, 4) != router.route(key, 3):
            found.append(key)
            if len(found) == count:
                return found
    raise AssertionError("not enough remapped keys")


class TestFetchPathParity:
    def test_miss_then_hit_new(self):
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                sim_paths = [sim.fetch("page:a"), sim.fetch("page:a")]
                live_paths = [
                    await live.fetch("page:a"), await live.fetch("page:a")
                ]
                assert sim_paths == live_paths == [
                    FetchPath.MISS_DB, FetchPath.HIT_NEW,
                ]
            finally:
                await live.stop()

        run(body())

    def test_hit_old_after_scale_down(self):
        keys = remapped_keys()
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                for key in keys:
                    sim.fetch(key)
                    await live.fetch(key)
                sim.scale_to(3)
                await live.web.scale_to(3, ttl=60.0)
                sim_paths = [sim.fetch(key) for key in keys]
                live_paths = [await live.fetch(key) for key in keys]
                # Identical decisions, key by key, across substrates.
                assert sim_paths == live_paths
                assert FetchPath.HIT_OLD in sim_paths
                assert FetchPath.MISS_DB not in sim_paths
                # Property 1: the second pass is authoritative everywhere.
                for key in keys:
                    assert sim.fetch(key) is FetchPath.HIT_NEW
                    assert (await live.fetch(key)) is FetchPath.HIT_NEW
            finally:
                await live.stop()

        run(body())

    def test_digest_false_positive(self):
        keys = remapped_keys()
        sim = SimSubstrate()
        router = ProteusRouter(NUM_SERVERS)

        def lying_filter():
            lying = BloomFilter(64, num_hashes=1)
            lying._bits = bytearray(b"\xff" * len(lying._bits))
            return lying

        async def body():
            live = await LiveSubstrate().start()
            try:
                for key in keys:
                    sim.fetch(key)
                    await live.fetch(key)
                sim.scale_to(3)
                await live.web.scale_to(3, ttl=60.0)
                # Replace every old-owner digest with an all-ones filter, so
                # a never-cached remapped key probes its old owner, misses,
                # and is classified as a false positive on both substrates.
                for sid in range(NUM_SERVERS):
                    sim.transition().digests[sid] = lying_filter()
                    live.transition().digests[sid] = lying_filter()
                probe = next(
                    f"page:fp-{i}" for i in range(100_000)
                    if router.route(f"page:fp-{i}", 4)
                    != router.route(f"page:fp-{i}", 3)
                )
                sim_path = sim.fetch(probe)
                live_path = await live.fetch(probe)
                assert sim_path is live_path is FetchPath.FALSE_POSITIVE_DB
            finally:
                await live.stop()

        run(body())

    def test_cold_miss_during_transition(self):
        keys = remapped_keys()
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                for key in keys:
                    sim.fetch(key)
                    await live.fetch(key)
                sim.scale_to(3)
                await live.web.scale_to(3, ttl=60.0)
                sim_path = sim.fetch("page:never-cached")
                live_path = await live.fetch("page:never-cached")
                assert sim_path is live_path is FetchPath.MISS_DB
            finally:
                await live.stop()

        run(body())

    def test_coalesced_storm_costs_one_db_read(self):
        sim = SimSubstrate(coalesce=True, db_latency=0.1)
        # Sim: 5 requests inside the leader's DB window.
        sim_paths = [sim.web.fetch("hot", now=i * 0.001).path for i in range(5)]
        sim_db_reads = sim.db.total_requests()

        async def body():
            live = await LiveSubstrate(coalesce=True).start()
            try:
                live_paths = await asyncio.gather(
                    *[live.fetch("hot") for _ in range(5)]
                )
                return list(live_paths), live.db_reads
            finally:
                await live.stop()

        live_paths, live_db_reads = run(body())
        assert sim_db_reads == live_db_reads == 1
        assert sorted(sim_paths) == sorted(live_paths)
        assert sim_paths.count(FetchPath.MISS_DB) == 1
        assert sim_paths.count(FetchPath.COALESCED) == 4

    def test_stats_objects_directly_comparable(self):
        # Both substrates expose the same FetchStats type with FetchPath
        # keys, so reports diff without label translation.
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                sim.fetch("k")
                sim.fetch("k")
                await live.fetch("k")
                await live.fetch("k")
                assert sim.web.stats.counts == live.web.stats.counts
                assert sim.web.stats.as_labels() == live.web.stats.as_labels()
                assert live.web.stats.counts[FetchPath.COALESCED] == 0
            finally:
                await live.stop()

        run(body())
