"""Sim-vs-live parity for batched retrieval (``fetch_many``).

Same structure as :mod:`tests.integration.test_retrieval_parity`, but for
the batch planner: equivalent cluster states on the simulated and asyncio
TCP substrates must produce identical per-key :class:`FetchPath` decisions
for a whole batch, identical values, and identical :class:`FetchStats`
counts to looping ``fetch`` — while the live tier spends at most one
``get_multi`` round trip per probed server per routing epoch.
"""

import asyncio

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.retrieval import FetchPath
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

CFG = optimal_config(2000)
NUM_SERVERS = 4


def run(coro):
    return asyncio.run(coro)


class SimSubstrate:
    """The simulated three-tier testbed, advanced by an explicit clock."""

    def __init__(self, coalesce=False):
        self.cache = CacheCluster(
            ProteusRouter(NUM_SERVERS),
            capacity_bytes=4096 * 2000,
            ttl=60.0,
            bloom_config=CFG,
        )
        self.db = DatabaseCluster(2, service_model=Constant(0.005))
        self.web = WebServer(
            0, self.cache, self.db,
            cache_latency=Constant(0.001), web_overhead=Constant(0.001),
            coalesce_misses=coalesce,
        )
        self.clock = 0.0

    def fetch_many(self, keys):
        # Each batch starts after the previous one completed (writes at a
        # future virtual time are invisible to earlier reads, by design).
        self.clock += 0.05
        results = self.web.fetch_many(keys, self.clock)
        self.clock = max(
            self.clock, max(r.completed for r in results.values())
        )
        return results

    def fetch(self, key):
        self.clock += 0.05
        result = self.web.fetch(key, self.clock)
        self.clock = max(self.clock, result.completed)
        return result

    def scale_to(self, n_new):
        self.clock += 0.05
        self.cache.scale_to(n_new, now=self.clock)


class LiveSubstrate:
    """The asyncio TCP testbed: real sockets on localhost."""

    def __init__(self, coalesce=False):
        self.coalesce = coalesce
        self.db_reads = 0
        self.servers = []
        self.web = None
        #: (server_id, key_count) per get_multi round trip issued
        self.multiget_log = []

    async def start(self):
        self.servers = [
            MemcachedServer(bloom_config=CFG) for _ in range(NUM_SERVERS)
        ]
        endpoints = []
        for server in self.servers:
            port = await server.start()
            endpoints.append(("127.0.0.1", port))
        self.web = AsyncProteusFrontend(
            endpoints, CFG, self._db_fetch, coalesce_misses=self.coalesce
        )
        inner = self.web._get_multi

        async def logged(server_id, keys, deadline=None):
            self.multiget_log.append((server_id, len(keys)))
            return await inner(server_id, keys, deadline)

        self.web._get_multi = logged
        await self.web.connect()
        return self

    async def _db_fetch(self, key):
        self.db_reads += 1
        await asyncio.sleep(0.001)
        return f"db-value-of-{key}".encode()

    async def stop(self):
        if self.web is not None:
            await self.web.close()
        for server in self.servers:
            await server.stop()


def remapped_keys(count=20):
    """Keys whose owner changes between the 4- and 3-server mappings."""
    router = ProteusRouter(NUM_SERVERS)
    found = []
    for i in range(100_000):
        key = f"page:{i}"
        if router.route(key, 4) != router.route(key, 3):
            found.append(key)
            if len(found) == count:
                return found
    raise AssertionError("not enough remapped keys")


def paths(results):
    return {key: result.path for key, result in results.items()}


class TestFetchManyParity:
    def test_cold_then_warm_batch(self):
        keys = [f"page:{i}" for i in range(16)]
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                sim_cold = paths(sim.fetch_many(keys))
                live_cold = paths(await live.web.fetch_many(keys))
                sim_warm = paths(sim.fetch_many(keys))
                live_warm = paths(await live.web.fetch_many(keys))
                assert sim_cold == live_cold
                assert sim_warm == live_warm
                assert set(sim_cold.values()) == {FetchPath.MISS_DB}
                assert set(sim_warm.values()) == {FetchPath.HIT_NEW}
            finally:
                await live.stop()

        run(body())

    def test_mid_transition_batch_mixes_digest_and_db_paths(self):
        warm = remapped_keys()
        cold = [f"page:never-{i}" for i in range(6)]
        sim = SimSubstrate()

        async def body():
            live = await LiveSubstrate().start()
            try:
                sim.fetch_many(warm)
                await live.web.fetch_many(warm)
                sim.scale_to(3)
                await live.web.scale_to(3, ttl=60.0)
                # One batch spanning hot remapped keys and never-cached keys.
                sim_paths = paths(sim.fetch_many(warm + cold))
                live_paths = paths(await live.web.fetch_many(warm + cold))
                assert sim_paths == live_paths
                assert FetchPath.HIT_OLD in set(sim_paths.values())
                assert all(
                    sim_paths[key] is FetchPath.MISS_DB for key in cold
                )
                # Property 1: the batch's write-backs made the next batch
                # authoritative everywhere, on both substrates.
                again_sim = paths(sim.fetch_many(warm + cold))
                again_live = paths(await live.web.fetch_many(warm + cold))
                assert set(again_sim.values()) == {FetchPath.HIT_NEW}
                assert again_sim == again_live
            finally:
                await live.stop()

        run(body())

    def test_live_values_byte_identical_to_sequential(self):
        keys = [f"page:{i}" for i in range(12)]

        async def body():
            batched = await LiveSubstrate().start()
            sequential = await LiveSubstrate().start()
            try:
                many = await batched.web.fetch_many(keys)
                singles = {
                    key: await sequential.web.fetch(key) for key in keys
                }
                for key in keys:
                    assert many[key].value == singles[key].value
                    assert isinstance(many[key].value, bytes)
                    assert many[key].path is singles[key].path
                assert (
                    batched.web.stats.counts == sequential.web.stats.counts
                )
            finally:
                await batched.stop()
                await sequential.stop()

        run(body())

    def test_live_batch_is_one_multiget_per_server_per_epoch(self):
        warm = remapped_keys()
        cold = [f"page:never-{i}" for i in range(6)]

        async def body():
            live = await LiveSubstrate().start()
            try:
                await live.web.fetch_many(warm)
                steady_counts = {}
                for server_id, _ in live.multiget_log:
                    steady_counts[server_id] = (
                        steady_counts.get(server_id, 0) + 1
                    )
                # Steady state: one epoch, so one multiget per server.
                assert all(count == 1 for count in steady_counts.values())

                await live.web.scale_to(3, ttl=60.0)
                live.multiget_log.clear()
                await live.web.fetch_many(warm + cold)
                transition_counts = {}
                for server_id, _ in live.multiget_log:
                    transition_counts[server_id] = (
                        transition_counts.get(server_id, 0) + 1
                    )
                # In transition each server is probed at most once per
                # epoch: once as a new owner, once as an old owner.
                assert all(
                    count <= 2 for count in transition_counts.values()
                )
            finally:
                await live.stop()

        run(body())

    def test_sim_batch_equals_sequential_loop_on_twin_substrates(self):
        warm = remapped_keys()
        cold = [f"page:never-{i}" for i in range(4)]
        batched, sequential = SimSubstrate(), SimSubstrate()
        batched.fetch_many(warm)
        for key in warm:
            sequential.fetch(key)
        batched.scale_to(3)
        sequential.scale_to(3)
        many = batched.fetch_many(warm + cold)
        singles = {key: sequential.fetch(key) for key in warm + cold}
        for key in warm + cold:
            assert many[key].value == singles[key].value
            assert many[key].path is singles[key].path
            assert many[key].new_server == singles[key].new_server
        assert batched.web.stats.counts == sequential.web.stats.counts

    def test_duplicate_keys_one_entry_and_one_db_read(self):
        sim = SimSubstrate()
        results = sim.fetch_many(["dup", "dup", "dup"])
        assert list(results) == ["dup"]
        assert sim.db.total_requests() == 1

        async def body():
            live = await LiveSubstrate().start()
            try:
                out = await live.web.fetch_many(["dup", "dup", "dup"])
                assert list(out) == ["dup"]
                assert live.db_reads == 1
            finally:
                await live.stop()

        run(body())
