"""Tests for the counting Bloom filter (the Proteus digest)."""

import pytest

from repro.bloom.counting import CountingBloomFilter
from repro.errors import DigestError
from tests.conftest import make_keys


class TestInsertDelete:
    def test_insert_then_contains(self):
        cbf = CountingBloomFilter(4096, counter_bits=4, num_hashes=4)
        cbf.add("k1")
        assert "k1" in cbf

    def test_delete_removes_membership(self):
        cbf = CountingBloomFilter(4096)
        cbf.add("k1")
        cbf.remove("k1")
        assert "k1" not in cbf

    def test_double_insert_needs_double_delete(self):
        cbf = CountingBloomFilter(4096)
        cbf.add("k1")
        cbf.add("k1")
        cbf.remove("k1")
        assert "k1" in cbf  # still one count left
        cbf.remove("k1")
        assert "k1" not in cbf

    def test_count_tracks_net_inserts(self):
        cbf = CountingBloomFilter(4096)
        keys = make_keys(50)
        cbf.update(keys)
        assert cbf.count == 50
        cbf.remove(keys[0])
        assert cbf.count == 49

    def test_deleting_absent_key_raises_in_strict_mode(self):
        cbf = CountingBloomFilter(4096, strict=True)
        with pytest.raises(DigestError):
            cbf.remove("never-inserted")

    def test_lenient_mode_clamps_at_zero(self):
        cbf = CountingBloomFilter(4096, strict=False)
        cbf.remove("never-inserted")  # no exception
        assert cbf.count == 0

    def test_no_false_negatives_without_overflow(self):
        # b=8 counters cannot overflow with 300 keys spread over 8192 slots.
        cbf = CountingBloomFilter(8192, counter_bits=8, num_hashes=4)
        keys = make_keys(300)
        cbf.update(keys)
        for key in keys[:150]:
            cbf.remove(key)
        assert all(k in cbf for k in keys[150:])
        assert cbf.overflow_events == 0


class TestOverflow:
    def test_saturation_is_recorded(self):
        cbf = CountingBloomFilter(16, counter_bits=1, num_hashes=2)
        for key in make_keys(64):
            cbf.add(key)
        assert cbf.overflow_events > 0
        assert cbf.max_counter() == 1

    def test_overflow_then_delete_causes_false_negative(self):
        # The Section IV-B failure mode, provoked deliberately: 1-bit
        # counters saturate, deletions then drive shared counters to zero,
        # and a still-present key vanishes from the digest.
        cbf = CountingBloomFilter(8, counter_bits=1, num_hashes=4, strict=False)
        keys = make_keys(40)
        cbf.update(keys)
        for key in keys[1:]:
            cbf.remove(key)
        assert keys[0] not in cbf  # false negative

    def test_wide_counters_do_not_saturate(self):
        cbf = CountingBloomFilter(64, counter_bits=12, num_hashes=2)
        for _ in range(100):
            cbf.add("same-key")
        assert cbf.overflow_events == 0
        # If the key's two probes collide, one counter absorbs both
        # increments per add; either way nothing saturates below 4096.
        assert cbf.max_counter() in (100, 200)

    def test_saturated_fraction(self):
        cbf = CountingBloomFilter(16, counter_bits=1, num_hashes=4)
        assert cbf.saturated_fraction() == 0.0
        for key in make_keys(64):
            cbf.add(key)
        assert cbf.saturated_fraction() > 0.5


class TestSnapshotAndMaintenance:
    def test_snapshot_preserves_membership(self):
        cbf = CountingBloomFilter(4096, num_hashes=4)
        keys = make_keys(100)
        cbf.update(keys)
        snap = cbf.snapshot()
        assert all(k in snap for k in keys)

    def test_snapshot_is_frozen(self):
        cbf = CountingBloomFilter(4096)
        cbf.add("before")
        snap = cbf.snapshot()
        cbf.add("after")
        assert "before" in snap
        assert "after" not in snap

    def test_snapshot_smaller_than_counters(self):
        cbf = CountingBloomFilter(4096, counter_bits=4)
        assert cbf.snapshot().size_bytes() < cbf.size_bytes()

    def test_clear_resets_everything(self):
        cbf = CountingBloomFilter(1024)
        cbf.update(make_keys(20))
        cbf.clear()
        assert cbf.count == 0
        assert cbf.max_counter() == 0
        assert all(k not in cbf for k in make_keys(20))

    def test_size_bytes(self):
        assert CountingBloomFilter(1000, counter_bits=4).size_bytes() == 500
        assert CountingBloomFilter(1000, counter_bits=3).size_bytes() == 375

    def test_wide_counter_storage_path(self):
        # counter_bits > 8 switches to a list-backed array; same semantics.
        cbf = CountingBloomFilter(256, counter_bits=12, num_hashes=3)
        keys = make_keys(30)
        cbf.update(keys)
        assert all(k in cbf for k in keys)
        for k in keys:
            cbf.remove(k)
        assert all(k not in cbf for k in keys)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0)
        with pytest.raises(ValueError):
            CountingBloomFilter(10, counter_bits=0)
