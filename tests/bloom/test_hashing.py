"""Tests for repro.bloom.hashing."""

import pytest

from repro.bloom.hashing import DoubleHashFamily, ring_position, stable_hash64


class TestStableHash64:
    def test_deterministic_across_calls(self):
        assert stable_hash64("wiki:Main_Page") == stable_hash64("wiki:Main_Page")

    def test_known_value_is_stable(self):
        # Pin one value so accidental algorithm changes (which would break
        # cross-process consistency) fail loudly.
        assert stable_hash64("proteus") == stable_hash64("proteus")
        assert stable_hash64("proteus") != stable_hash64("proteus", salt=1)

    def test_accepts_bytes_and_str_equivalently(self):
        assert stable_hash64("abc") == stable_hash64(b"abc")

    def test_unicode_keys(self):
        assert stable_hash64("pagé:héllo") == stable_hash64("pagé:héllo")

    def test_salt_changes_output(self):
        values = {stable_hash64("k", salt=s) for s in range(16)}
        assert len(values) == 16

    def test_output_is_64_bit(self):
        for i in range(100):
            value = stable_hash64(f"key{i}")
            assert 0 <= value < 2 ** 64

    def test_distribution_is_roughly_uniform(self):
        buckets = [0] * 8
        for i in range(8000):
            buckets[stable_hash64(f"key{i}") % 8] += 1
        assert min(buckets) > 800  # expectation 1000, loose 20% bound


class TestDoubleHashFamily:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DoubleHashFamily(0, 10)
        with pytest.raises(ValueError):
            DoubleHashFamily(4, 0)

    def test_index_count_and_range(self):
        family = DoubleHashFamily(4, 997)
        idx = family.indexes("hello")
        assert len(idx) == 4
        assert all(0 <= i < 997 for i in idx)

    def test_iter_matches_list(self):
        family = DoubleHashFamily(5, 1024)
        assert list(family.iter_indexes("k")) == family.indexes("k")

    def test_same_key_same_indexes(self):
        family = DoubleHashFamily(4, 4096)
        assert family.indexes("k1") == family.indexes("k1")

    def test_distinct_keys_mostly_distinct_probes(self):
        family = DoubleHashFamily(4, 2 ** 20)
        a = set(family.indexes("key-a"))
        b = set(family.indexes("key-b"))
        assert a != b

    def test_probes_usually_distinct_within_key(self):
        family = DoubleHashFamily(4, 2 ** 20)
        collisions = sum(
            1 for i in range(500) if len(set(family.indexes(f"k{i}"))) < 4
        )
        assert collisions <= 2  # collisions possible, must be rare


class TestRingPosition:
    def test_in_range(self):
        for i in range(100):
            assert 0 <= ring_position(f"k{i}", 2 ** 32) < 2 ** 32

    def test_replica_rings_are_independent(self):
        positions = {ring_position("k", 2 ** 32, replica=r) for r in range(4)}
        assert len(positions) == 4

    def test_rejects_bad_ring_size(self):
        with pytest.raises(ValueError):
            ring_position("k", 0)

    def test_deterministic(self):
        assert ring_position("k", 1000) == ring_position("k", 1000)
