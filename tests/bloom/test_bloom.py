"""Tests for the plain Bloom filter."""

import math

import pytest

from repro.bloom.bloom import BloomFilter
from tests.conftest import make_keys


class TestBasics:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            BloomFilter(0)

    def test_empty_contains_nothing(self):
        bf = BloomFilter(1024)
        assert "anything" not in bf
        assert not bf.contains("anything")

    def test_no_false_negatives(self):
        bf = BloomFilter(8192, num_hashes=4)
        keys = make_keys(500)
        bf.update(keys)
        assert all(k in bf for k in keys)

    def test_count_tracks_inserts(self):
        bf = BloomFilter(1024)
        bf.update(make_keys(10))
        assert bf.count == 10

    def test_single_hash_function_works(self):
        bf = BloomFilter(4096, num_hashes=1)
        bf.add("solo")
        assert "solo" in bf


class TestFalsePositives:
    def test_measured_rate_close_to_eq4(self):
        # kappa=500, h=4, l=8192  ->  Gp ~ (1 - e^{-0.244})^4 ~ 2.2e-3
        bf = BloomFilter(8192, num_hashes=4)
        bf.update(make_keys(500, prefix="in"))
        probes = make_keys(20000, prefix="out", seed=9)
        measured = sum(1 for k in probes if k in bf) / len(probes)
        predicted = bf.expected_false_positive_rate(500)
        assert measured == pytest.approx(predicted, rel=0.5, abs=2e-3)

    def test_rate_increases_with_load(self):
        small = BloomFilter(2048, num_hashes=4)
        small.update(make_keys(2000, prefix="x"))
        probes = make_keys(3000, prefix="probe", seed=3)
        heavy_rate = sum(1 for k in probes if k in small) / len(probes)
        light = BloomFilter(2048, num_hashes=4)
        light.update(make_keys(100, prefix="x"))
        light_rate = sum(1 for k in probes if k in light) / len(probes)
        assert heavy_rate > light_rate

    def test_expected_rate_formula(self):
        bf = BloomFilter(1000, num_hashes=3)
        expected = (1 - math.exp(-200 * 3 / 1000)) ** 3
        assert bf.expected_false_positive_rate(200) == pytest.approx(expected)


class TestFillRatioAndSize:
    def test_fill_ratio_empty_and_after_inserts(self):
        bf = BloomFilter(1024, num_hashes=2)
        assert bf.fill_ratio() == 0.0
        bf.update(make_keys(50))
        assert 0.0 < bf.fill_ratio() <= 100 / 1024

    def test_size_bytes(self):
        assert BloomFilter(1024).size_bytes() == 128
        assert BloomFilter(1025).size_bytes() == 129


class TestSerialization:
    def test_roundtrip_preserves_membership(self):
        bf = BloomFilter(4096, num_hashes=4)
        keys = make_keys(200)
        bf.update(keys)
        clone = BloomFilter.from_bytes(bf.to_bytes(), 4096, 4)
        assert all(k in clone for k in keys)

    def test_roundtrip_rejects_wrong_size(self):
        bf = BloomFilter(4096)
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(bf.to_bytes(), 8192)

    def test_wire_size_matches_size_bytes(self):
        bf = BloomFilter(999)
        assert len(bf.to_bytes()) == bf.size_bytes()
