"""Tests for the Section IV-B digest sizing math (Eqs. 4-10, Table I)."""

import math

import pytest

from repro.bloom.config import (
    MAX_COUNTER_BITS,
    counter_bits_closed_form,
    counter_bits_enumerated,
    false_negative_bound,
    false_positive_rate,
    minimal_counters,
    optimal_config,
)
from repro.errors import ConfigurationError


class TestEq4FalsePositive:
    def test_formula(self):
        expected = (1 - math.exp(-1000 * 4 / 10_000)) ** 4
        assert false_positive_rate(10_000, 1000, 4) == pytest.approx(expected)

    def test_zero_keys_never_false_positive(self):
        assert false_positive_rate(1000, 0, 4) == 0.0

    def test_monotone_in_counters(self):
        rates = [false_positive_rate(l, 1000, 4) for l in (2000, 8000, 32_000)]
        assert rates[0] > rates[1] > rates[2]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            false_positive_rate(0, 10, 4)
        with pytest.raises(ConfigurationError):
            false_positive_rate(10, -1, 4)


class TestEq5FalseNegative:
    def test_monotone_decreasing_in_counter_bits(self):
        bounds = [false_negative_bound(10_000, b, 5000, 4) for b in (1, 2, 3, 4)]
        assert bounds == sorted(bounds, reverse=True)

    def test_zero_keys_cannot_overflow(self):
        assert false_negative_bound(1000, 2, 0, 4) == 0.0

    def test_overflow_returns_inf_not_raises(self):
        # Tiny filter, absurd load: the power blows up; we want inf, not crash.
        assert false_negative_bound(1, 16, 10**9, 8) == math.inf

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            false_negative_bound(0, 3, 10, 4)
        with pytest.raises(ConfigurationError):
            false_negative_bound(10, 0, 10, 4)


class TestMinimalCounters:
    def test_satisfies_the_bound_tightly(self):
        l = minimal_counters(10_000, 4, 1e-4)
        assert false_positive_rate(l, 10_000, 4) <= 1e-4
        assert false_positive_rate(l - 100, 10_000, 4) > 1e-4

    def test_rejects_bad_probability(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ConfigurationError):
                minimal_counters(100, 4, bad)

    def test_scales_linearly_with_kappa(self):
        l1 = minimal_counters(10_000, 4, 1e-4)
        l2 = minimal_counters(20_000, 4, 1e-4)
        assert l2 == pytest.approx(2 * l1, rel=0.01)


class TestCounterBits:
    def test_closed_form_matches_enumeration(self):
        for kappa in (1000, 10_000, 100_000):
            l = minimal_counters(kappa, 4, 1e-4)
            enumerated = counter_bits_enumerated(l, kappa, 4, 1e-4)
            closed = counter_bits_closed_form(l, kappa, 4, 1e-4)
            assert enumerated == math.ceil(closed)

    def test_enumeration_is_minimal(self):
        l = minimal_counters(10_000, 4, 1e-4)
        b = counter_bits_enumerated(l, 10_000, 4, 1e-4)
        assert false_negative_bound(l, b, 10_000, 4) <= 1e-4
        if b > 1:
            assert false_negative_bound(l, b - 1, 10_000, 4) > 1e-4

    def test_infeasible_raises(self):
        with pytest.raises(ConfigurationError):
            counter_bits_enumerated(1, 10**9, 8, 1e-12)

    def test_max_counter_bits_is_sane(self):
        assert MAX_COUNTER_BITS >= 8


class TestPaperExample:
    """Section IV-B: kappa=1e4, h=4, pp=pn=1e-4 -> l=4e5, b=3, ~150 KB."""

    def test_paper_worked_example(self):
        cfg = optimal_config(10_000, num_hashes=4, pp=1e-4, pn=1e-4)
        assert cfg.num_counters == pytest.approx(4e5, rel=0.06)
        assert cfg.counter_bits == 3
        # "about 150KB memory per digest"
        assert cfg.memory_bytes == pytest.approx(150 * 1024, rel=0.10)

    def test_bounds_are_met(self):
        cfg = optimal_config(10_000, num_hashes=4, pp=1e-4, pn=1e-4)
        assert cfg.fp_bound <= 1e-4
        assert cfg.fn_bound <= 1e-4

    def test_build_returns_matching_filter(self):
        cfg = optimal_config(2000)
        cbf = cfg.build()
        assert cbf.num_counters == cfg.num_counters
        assert cbf.counter_bits == cfg.counter_bits
        assert cbf.num_hashes == cfg.num_hashes

    def test_memory_bits_objective(self):
        cfg = optimal_config(5000)
        assert cfg.memory_bits == cfg.num_counters * cfg.counter_bits

    def test_tighter_bounds_cost_more_memory(self):
        loose = optimal_config(10_000, pp=1e-2, pn=1e-2)
        tight = optimal_config(10_000, pp=1e-6, pn=1e-6)
        assert tight.memory_bits > loose.memory_bits
