"""Tests for the sharded database tier."""

import collections

import pytest

from repro.database.cluster import DEFAULT_NUM_SHARDS, DatabaseCluster
from repro.errors import ConfigurationError
from repro.sim.latency import Constant
from tests.conftest import make_keys


class TestSharding:
    def test_default_is_seven_shards(self):
        assert DEFAULT_NUM_SHARDS == 7
        assert DatabaseCluster().num_shards == 7

    def test_shard_routing_is_deterministic(self):
        db = DatabaseCluster(5)
        assert db.shard_for("k").shard_id == db.shard_for("k").shard_id

    def test_keys_spread_over_shards(self):
        db = DatabaseCluster(7)
        counts = collections.Counter(
            db.shard_for(k).shard_id for k in make_keys(7000)
        )
        assert set(counts) == set(range(7))
        assert min(counts.values()) / max(counts.values()) > 0.8

    def test_put_and_get_route_to_same_shard(self):
        db = DatabaseCluster(4, synthesize=False)
        db.put("k", b"v")
        assert db.get("k", 0.0).value == b"v"

    def test_load_dataset_partitions(self):
        db = DatabaseCluster(3, synthesize=False)
        dataset = {f"k{i}": i for i in range(30)}
        db.load_dataset(dataset)
        assert sum(len(s.dataset) for s in db.shards) == 30
        for key, value in dataset.items():
            assert db.get(key, 0.0).value == value

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigurationError):
            DatabaseCluster(0)


class TestPressureMetrics:
    def test_total_requests(self):
        db = DatabaseCluster(3)
        for key in make_keys(10):
            db.get(key, 0.0)
        assert db.total_requests() == 10

    def test_max_queue_delay_under_burst(self):
        db = DatabaseCluster(2, service_model=Constant(0.1))
        for key in make_keys(20):
            db.get(key, now=0.0)
        assert db.max_queue_delay(0.0) > 0.5

    def test_reset(self):
        db = DatabaseCluster(2)
        db.get("k", 0.0)
        db.reset()
        assert db.total_requests() == 0
