"""Tests for database shards."""

import pytest

from repro.database.shard import DatabaseShard, synthesize_page
from repro.errors import ConfigurationError
from repro.sim.latency import Constant


class TestSynthesizePage:
    def test_deterministic(self):
        assert synthesize_page("Alan_Turing") == synthesize_page("Alan_Turing")

    def test_size(self):
        assert len(synthesize_page("k", size=4096)) == 4096
        assert len(synthesize_page("k", size=100)) == 100

    def test_distinct_keys_distinct_pages(self):
        assert synthesize_page("a") != synthesize_page("b")


class TestShard:
    def test_synthesized_lookup_always_found(self):
        shard = DatabaseShard(0)
        response = shard.get("anything", now=0.0)
        assert response.found

    def test_dataset_overrides_synthesizer(self):
        shard = DatabaseShard(0, dataset={"k": b"explicit"})
        assert shard.lookup("k") == b"explicit"

    def test_non_synthesizing_shard_misses(self):
        shard = DatabaseShard(0, synthesize=False)
        response = shard.get("missing", now=0.0)
        assert not response.found
        assert shard.not_found == 1

    def test_put_installs_data(self):
        shard = DatabaseShard(0, synthesize=False)
        shard.put("k", b"v")
        assert shard.get("k", 0.0).value == b"v"

    def test_fifo_queueing_under_burst(self):
        shard = DatabaseShard(0, service_model=Constant(0.1))
        completions = [shard.get(f"k{i}", now=0.0).completion_time for i in range(5)]
        assert completions == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_queue_delay_reported(self):
        shard = DatabaseShard(0, service_model=Constant(0.1))
        response = shard.get("a", now=0.0)
        assert response.queue_delay == 0.0
        response = shard.get("b", now=0.0)
        assert response.queue_delay == pytest.approx(0.1)
        assert shard.queue_delay(0.0) == pytest.approx(0.2)

    def test_idle_gap_resets_backlog(self):
        shard = DatabaseShard(0, service_model=Constant(0.1))
        shard.get("a", now=0.0)
        response = shard.get("b", now=10.0)
        assert response.completion_time == pytest.approx(10.1)

    def test_reset_keeps_dataset(self):
        shard = DatabaseShard(0, dataset={"k": 1})
        shard.get("k", 0.0)
        shard.reset()
        assert shard.requests == 0
        assert shard.lookup("k") == 1

    def test_service_times_deterministic_per_seed(self):
        a = DatabaseShard(0, seed=5)
        b = DatabaseShard(0, seed=5)
        ta = [a.get(f"k{i}", 0.0).service_time for i in range(10)]
        tb = [b.get(f"k{i}", 0.0).service_time for i in range(10)]
        assert ta == tb

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigurationError):
            DatabaseShard(-1)
