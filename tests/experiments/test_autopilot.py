"""Tests for the closed-loop autopilot experiment harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.autopilot import (
    NEVER_RECOVERED,
    AutopilotConfig,
    AutopilotExperiment,
    AutopilotReport,
)
from repro.resilience import FaultPlan, FaultSchedule
from repro.sim.metrics import SlottedRecorder, TimeSeries


def config(**overrides):
    defaults = dict(
        users_per_slot=[30, 24, 18, 18, 24, 30],
        slot_seconds=20.0,
        num_servers=6,
        num_web_servers=2,
        catalogue_size=1500,
        pages_per_user=15,
        seed=5,
    )
    defaults.update(overrides)
    return AutopilotConfig(**defaults)


def kill(at, server_id, clear_at=None):
    schedule = FaultSchedule()
    schedule.add(at=at, server_id=server_id, plan=FaultPlan.killed(),
                 clear_at=clear_at)
    return schedule


class TestValidation:
    def test_rejects_empty_workload(self):
        with pytest.raises(ConfigurationError):
            config(users_per_slot=[])

    def test_rejects_bad_slot_seconds(self):
        with pytest.raises(ConfigurationError):
            config(slot_seconds=0.0)

    def test_rejects_min_servers_out_of_range(self):
        with pytest.raises(ConfigurationError):
            config(min_servers=0)
        with pytest.raises(ConfigurationError):
            config(min_servers=7)

    def test_rejects_fault_on_unknown_server(self):
        with pytest.raises(ConfigurationError):
            config(faults=kill(10.0, 99))

    def test_duration_and_slots(self):
        cfg = config()
        assert cfg.num_slots == 6
        assert cfg.duration == 120.0


class TestOpenLoop:
    def test_defaults_are_the_open_loop(self):
        report = AutopilotExperiment(config()).run()
        assert report.config_label == "open_loop"
        assert report.availability == 1.0
        assert report.emergency_scale_ups == 0
        assert report.vetoed_scale_downs == 0
        assert report.health_history == []

    def test_fixed_ttl_windows(self):
        report = AutopilotExperiment(config(ttl_seconds=25.0)).run()
        assert all(ttl == 25.0 for ttl in report.ttls_used)
        assert report.half_lives == []

    def test_deterministic_given_the_seed(self):
        first = AutopilotExperiment(config()).run()
        second = AutopilotExperiment(config()).run()
        assert first.active_counts == second.active_counts
        assert first.measured_delays == second.measured_delays
        assert first.total_requests == second.total_requests


class TestClosedLoop:
    def test_kill_triggers_emergency_scale_up(self):
        # Kill during the valley: delay-only control stays blind, the
        # health loop must react.
        faults = kill(45.0, 1, clear_at=110.0)
        open_report = AutopilotExperiment(config(faults=faults)).run()
        closed_report = AutopilotExperiment(
            config(faults=faults, health_feedback=True)
        ).run()
        assert closed_report.config_label == "closed_loop"
        assert closed_report.emergency_scale_ups >= 1
        assert closed_report.availability == 1.0
        assert len(closed_report.health_history) == len(
            closed_report.active_counts
        )
        assert closed_report.recovery_slots(45.0) <= open_report.recovery_slots(
            45.0
        )

    def test_failed_sets_track_the_schedule(self):
        report = AutopilotExperiment(
            config(faults=kill(45.0, 1, clear_at=110.0), health_feedback=True)
        ).run()
        fault_slots = [i for i, s in enumerate(report.failed_sets) if s]
        assert fault_slots, "the kill never showed up in failed_sets"
        assert all(report.failed_sets[i] == frozenset({1})
                   for i in fault_slots)

    def test_adaptive_ttl_learns_from_decay(self):
        experiment = AutopilotExperiment(
            config(
                users_per_slot=[30, 24, 18, 18, 24, 30] * 2,
                adaptive_ttl=True,
                max_ttl=90.0,
            )
        )
        report = experiment.run()
        assert report.config_label == "closed_loop"
        # a drain window was observed and fitted...
        assert report.half_lives
        # ...so the *next* window the policy would hand out departs from
        # the fixed default (learning applies forward, window by window).
        assert experiment.ttl_policy.ttl_for() != 60.0
        for ttl in report.ttls_used:
            assert 5.0 <= ttl <= 90.0

    def test_to_dict_is_json_ready(self):
        import json

        report = AutopilotExperiment(
            config(health_feedback=True, adaptive_ttl=True)
        ).run()
        payload = report.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["config"] == "closed_loop"
        assert len(payload["active_counts"]) == 6
        assert payload["remap_misses_total"] == report.remap_misses_total


class TestRecoveryMetrics:
    def make_report(self, healthy, required):
        return AutopilotReport(
            config_label="synthetic",
            duration=len(healthy) * 10.0,
            slot_seconds=10.0,
            total_requests=1,
            served_requests=1,
            active_counts=list(healthy),
            healthy_counts=list(healthy),
            failed_sets=[frozenset() for _ in healthy],
            required_counts=list(required),
            measured_delays=[0.0] * len(healthy),
            arrival_rates=[0.0] * len(healthy),
            health_history=[],
            latencies=SlottedRecorder(10.0),
            transitions=[],
            energy_kwh={},
            active_series=TimeSeries(),
            emergency_scale_ups=0,
            vetoed_scale_downs=0,
        )

    def test_recovery_counts_slots_until_requirement_met(self):
        report = self.make_report(
            healthy=[4, 3, 3, 4, 4], required=[4, 4, 4, 4, 4]
        )
        assert report.recovery_slots(5.0) == 3

    def test_never_recovered_sentinel(self):
        report = self.make_report(healthy=[4, 3, 3], required=[4, 4, 4])
        assert report.recovery_slots(5.0) == NEVER_RECOVERED

    def test_underprovisioned_horizon(self):
        report = self.make_report(
            healthy=[4, 3, 3, 3, 4], required=[4, 4, 4, 4, 4]
        )
        assert report.underprovisioned_slots(5.0) == 3
        assert report.underprovisioned_slots(5.0, horizon_slots=2) == 2

    def test_fault_outside_run_rejected(self):
        report = self.make_report(healthy=[4], required=[4])
        with pytest.raises(ConfigurationError):
            report.recovery_slots(500.0)
        with pytest.raises(ConfigurationError):
            report.underprovisioned_slots(500.0)
