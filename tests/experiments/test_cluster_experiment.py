"""Tests for the full 3-tier cluster experiment harness (Figs. 9-11)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.cluster import (
    ClusterExperiment,
    ExperimentConfig,
    ScenarioSpec,
    run_scenarios,
)
from repro.provisioning.policies import ProvisioningSchedule


def small_config(**overrides):
    defaults = dict(
        schedule=ProvisioningSchedule(30.0, [4, 3, 3, 4]),
        users_per_slot=[40, 30, 30, 40],
        num_cache_servers=4,
        num_web_servers=2,
        num_db_shards=2,
        catalogue_size=2000,
        cache_capacity_bytes=4096 * 800,
        ttl=15.0,
        plot_slots=12,
        pages_per_user=20,
        seed=3,
        warmup_seconds=10.0,
    )
    defaults.update(overrides)
    return ExperimentConfig(**defaults)


class TestScenarioSpec:
    def test_all_four_names_match_table2(self):
        names = [s.name for s in ScenarioSpec.all_four()]
        assert names == ["Static", "Naive", "Consistent", "Proteus"]

    def test_only_proteus_is_smooth(self):
        for spec in ScenarioSpec.all_four():
            assert spec.smooth == (spec.name == "Proteus")

    def test_only_static_is_not_dynamic(self):
        for spec in ScenarioSpec.all_four():
            assert spec.dynamic == (spec.name != "Static")

    def test_coalescing_defers_to_config_by_default(self):
        for spec in ScenarioSpec.all_four():
            assert spec.coalesce_misses is None
        experiment = ClusterExperiment(
            ScenarioSpec.naive(), small_config(coalesce_misses=True)
        )
        assert all(web.coalesce_misses for web in experiment.webs)

    def test_with_coalescing_overrides_config(self):
        spec = ScenarioSpec.naive().with_coalescing()
        assert spec.name == "Naive+coalesce"
        assert spec.coalesce_misses is True
        experiment = ClusterExperiment(
            spec, small_config(coalesce_misses=False)
        )
        assert all(web.coalesce_misses for web in experiment.webs)
        # The override works in both directions.
        off = ScenarioSpec.naive().with_coalescing(False)
        assert off.name == "Naive-coalesce"
        experiment = ClusterExperiment(
            off, small_config(coalesce_misses=True)
        )
        assert not any(web.coalesce_misses for web in experiment.webs)


class TestConfigValidation:
    def test_slot_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(users_per_slot=[10, 10])

    def test_oversubscribed_schedule_rejected(self):
        with pytest.raises(ConfigurationError):
            small_config(schedule=ProvisioningSchedule(30.0, [9, 9, 9, 9]))

    def test_duration(self):
        assert small_config().duration == 120.0


class TestSingleScenarioRun:
    @pytest.fixture(scope="class")
    def proteus_report(self):
        return ClusterExperiment(ScenarioSpec.proteus(), small_config()).run()

    def test_requests_were_served(self, proteus_report):
        assert proteus_report.total_requests > 1000

    def test_latency_slots_populated(self, proteus_report):
        series = proteus_report.latency_percentiles(99.0)
        assert len(series) >= 10

    def test_transitions_follow_schedule(self, proteus_report):
        assert [(t.n_old, t.n_new) for t in proteus_report.transitions] == [
            (4, 3), (3, 4),
        ]
        assert all(t.smooth for t in proteus_report.transitions)

    def test_power_series_has_all_tiers(self, proteus_report):
        assert set(proteus_report.power_series) == {
            "total", "cache", "web", "database",
        }

    def test_energy_decomposes(self, proteus_report):
        parts = (
            proteus_report.energy_kwh["cache"]
            + proteus_report.energy_kwh["web"]
            + proteus_report.energy_kwh["database"]
        )
        assert parts == pytest.approx(proteus_report.energy_kwh["total"], rel=1e-6)

    def test_active_series_tracks_schedule(self, proteus_report):
        values = proteus_report.active_series.values
        assert max(values) == 4
        assert min(values) == 3

    def test_high_hit_ratio(self, proteus_report):
        assert proteus_report.hit_ratio > 0.8

    def test_fetch_paths_accounted(self, proteus_report):
        assert sum(proteus_report.fetch_paths.values()) == (
            proteus_report.total_requests
        )
        assert proteus_report.fetch_paths["hit_old"] > 0  # transitions happened


class TestStaticScenario:
    def test_static_never_transitions(self):
        report = ClusterExperiment(ScenarioSpec.static(), small_config()).run()
        assert report.transitions == []
        assert set(report.active_series.values) == {4.0}


class TestCrossScenario:
    @pytest.fixture(scope="class")
    def reports(self):
        return run_scenarios(small_config(seed=5))

    def test_all_four_ran(self, reports):
        assert set(reports) == {"Static", "Naive", "Consistent", "Proteus"}

    def test_naive_touches_db_most(self, reports):
        assert reports["Naive"].db_requests > reports["Proteus"].db_requests
        assert reports["Naive"].db_requests > reports["Static"].db_requests

    def test_proteus_db_pressure_near_static(self, reports):
        # The headline claim: Proteus transitions are invisible to the DB.
        static_db = max(1, reports["Static"].db_requests)
        assert reports["Proteus"].db_requests <= 2.5 * static_db

    def test_dynamic_scenarios_save_cache_energy(self, reports):
        static_cache = reports["Static"].energy_kwh["cache"]
        for name in ("Naive", "Consistent", "Proteus"):
            assert reports[name].energy_kwh["cache"] < static_cache

    def test_naive_spike_dominates_proteus(self, reports):
        assert (
            reports["Naive"].peak_latency(99.0)
            > reports["Proteus"].peak_latency(99.0)
        )

    def test_only_proteus_uses_old_server_path(self, reports):
        assert reports["Proteus"].fetch_paths["hit_old"] > 0
        for name in ("Static", "Naive", "Consistent"):
            assert reports[name].fetch_paths["hit_old"] == 0


class TestWarmupAndPrewarm:
    def test_prewarm_fills_initial_users_pages(self):
        experiment = ClusterExperiment(ScenarioSpec.proteus(), small_config())
        experiment._resize_population(small_config().users_per_slot[0])
        experiment._prewarm()
        total_items = sum(
            len(server.store) for server in experiment.cache.servers
        )
        distinct_pages = len(
            {page for user in experiment.population.active for page in user.pages}
        )
        assert total_items == distinct_pages

    def test_warmup_excludes_early_latency_samples(self):
        report = ClusterExperiment(
            ScenarioSpec.static(), small_config(warmup_seconds=30.0)
        ).run()
        first_slot_time = report.latencies.series("count").times[0]
        assert first_slot_time >= 30.0

    def test_prewarm_off_means_cold_start(self):
        cold = ClusterExperiment(
            ScenarioSpec.static(), small_config(prewarm=False, seed=11)
        ).run()
        warm = ClusterExperiment(
            ScenarioSpec.static(), small_config(prewarm=True, seed=11)
        ).run()
        assert cold.db_requests > warm.db_requests


class TestReportSerialization:
    def test_to_dict_and_save_roundtrip(self, tmp_path):
        import json

        report = ClusterExperiment(ScenarioSpec.proteus(), small_config()).run()
        payload = report.to_dict(pct=99.0)
        assert payload["scenario"] == "Proteus"
        assert payload["total_requests"] == report.total_requests
        assert len(payload["latency_series"]["values"]) >= 1
        assert set(payload["power_series"]) == {
            "total", "cache", "web", "database",
        }
        path = tmp_path / "report.json"
        report.save(path, pct=99.0)
        loaded = json.loads(path.read_text())
        assert loaded == payload
