"""Tests for the Fig. 5 load-balance evaluation harness."""

import pytest

from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
)
from repro.errors import ConfigurationError
from repro.experiments.loadbalance import compare_routers, evaluate_load_balance
from repro.provisioning.policies import ProvisioningSchedule
from repro.workload.trace import TraceRecord
from repro.workload.wikipedia import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        duration=80.0, mean_rate=400.0, num_pages=4000, seed=11
    )


@pytest.fixture(scope="module")
def schedule():
    return ProvisioningSchedule(20.0, [6, 4, 3, 5])


class TestEvaluate:
    def test_slot_loads_cover_schedule(self, trace, schedule):
        result = evaluate_load_balance(ProteusRouter(6), trace, schedule)
        assert len(result.slot_loads) == 4
        assert len(result.ratios()) == 4

    def test_loads_only_on_active_servers(self, trace, schedule):
        result = evaluate_load_balance(ProteusRouter(6), trace, schedule)
        for slot, loads in enumerate(result.slot_loads):
            active = schedule.counts[slot]
            servers = [s for s in loads if s >= 0]
            assert all(s < active for s in servers)

    def test_static_router_uses_full_fleet(self, trace, schedule):
        result = evaluate_load_balance(StaticRouter(6), trace, schedule)
        for loads in result.slot_loads:
            assert max(s for s in loads if s >= 0) == 5

    def test_proteus_ratio_high_on_uniform_keys(self, schedule):
        # With uniform key popularity the only imbalance left is the
        # router's own key-space split — near-perfect for Proteus.
        uniform = generate_trace(
            duration=80.0, mean_rate=400.0, num_pages=4000, alpha=0.0, seed=12
        )
        result = evaluate_load_balance(ProteusRouter(6), uniform, schedule)
        assert result.worst_ratio() > 0.8

    def test_paper_ordering_proteus_beats_consistent(self, trace, schedule):
        # Fig. 5's qualitative claim: Proteus ~ Naive ~ Static >> Consistent.
        proteus = evaluate_load_balance(ProteusRouter(6), trace, schedule)
        naive = evaluate_load_balance(NaiveRouter(6), trace, schedule)
        log_ch = evaluate_load_balance(
            ConsistentRouter.log_variant(6), trace, schedule
        )
        assert proteus.mean_ratio() > log_ch.mean_ratio()
        assert naive.mean_ratio() > log_ch.mean_ratio()

    def test_quadratic_consistent_beats_log_variant_on_ring_share(self):
        # Fig. 5's stars-vs-squares claim, measured where it is deterministic
        # enough to assert: mean min/max key-space share over active
        # prefixes, averaged over seeds.  (At N=6 the two variants happen to
        # place the same vnode count, so we use N=10 as the paper does.)
        import statistics

        from repro.core.ring import prefix_active

        def mean_share_ratio(router):
            ratios = []
            for n in range(2, 11):
                owned = router.ring.owned_lengths(prefix_active(n))
                values = [owned.get(s, 0) for s in range(n)]
                ratios.append(min(values) / max(values))
            return statistics.mean(ratios)

        log_mean = statistics.mean(
            mean_share_ratio(ConsistentRouter.log_variant(10, seed=s))
            for s in range(6)
        )
        quad_mean = statistics.mean(
            mean_share_ratio(ConsistentRouter.quadratic_variant(10, seed=s))
            for s in range(6)
        )
        assert quad_mean > log_mean
        # and Proteus is exactly balanced at every prefix
        assert mean_share_ratio(ProteusRouter(10)) == pytest.approx(1.0)

    def test_empty_trace_rejected(self, schedule):
        with pytest.raises(ConfigurationError):
            evaluate_load_balance(ProteusRouter(4), [], schedule)


class TestCompare:
    def test_names_disambiguated(self, trace, schedule):
        results = compare_routers(
            [
                ConsistentRouter.log_variant(6),
                ConsistentRouter.quadratic_variant(6),
                ProteusRouter(6),
            ],
            trace,
            schedule,
        )
        assert set(results) == {"Consistent", "Consistent#2", "Proteus"}

    def test_zero_request_slot_counts_as_imbalanced_if_server_idle(self):
        # One record in slot 0 only: with 2 active servers, one is idle.
        schedule = ProvisioningSchedule(10.0, [2])
        trace = [TraceRecord(1.0, "only-key")]
        result = evaluate_load_balance(NaiveRouter(2), trace, schedule)
        assert result.ratios() == [0.0]
