"""Tests for the Fig. 6 hit-ratio harness."""

import pytest

from repro.core.router import ProteusRouter
from repro.errors import ConfigurationError
from repro.experiments.hitratio import (
    sharded_hit_ratio,
    simulate_hit_ratio,
    sweep_cache_sizes,
)
from repro.workload.wikipedia import generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(
        duration=120.0, mean_rate=500.0, num_pages=3000, alpha=0.9, seed=21
    )


class TestSimulateHitRatio:
    def test_unbounded_cache_hits_everything_after_first_touch(self, trace):
        huge = simulate_hit_ratio(trace, capacity_bytes=4096 * 100_000)
        distinct = huge.distinct_keys
        # Upper bound: every request except each key's first touch can hit.
        assert huge.hit_ratio <= 1.0
        assert huge.hit_ratio > 0.8
        assert huge.evictions == 0
        assert distinct <= 3000

    def test_monotone_in_capacity(self, trace):
        points = sweep_cache_sizes(
            trace, [4096 * 50, 4096 * 200, 4096 * 1000, 4096 * 3000]
        )
        ratios = [p.hit_ratio for p in points]
        assert all(a <= b + 0.02 for a, b in zip(ratios, ratios[1:]))
        assert ratios[-1] - ratios[0] > 0.2  # the sweep actually moves

    def test_tiny_cache_evicts(self, trace):
        point = simulate_hit_ratio(trace, capacity_bytes=4096 * 10)
        assert point.evictions > 0
        assert point.hit_ratio < 0.6

    def test_warmup_exclusion(self, trace):
        with_warmup = simulate_hit_ratio(
            trace, 4096 * 500, warmup_fraction=0.3
        )
        without = simulate_hit_ratio(trace, 4096 * 500, warmup_fraction=0.0)
        # Excluding the cold start can only help (or tie).
        assert with_warmup.hit_ratio >= without.hit_ratio - 0.01

    def test_eviction_policy_selectable(self, trace):
        lru = simulate_hit_ratio(trace, 4096 * 200, eviction="lru")
        fifo = simulate_hit_ratio(trace, 4096 * 200, eviction="fifo")
        # LRU should not lose to FIFO by much on a Zipf trace.
        assert lru.hit_ratio >= fifo.hit_ratio - 0.05

    def test_validation(self, trace):
        with pytest.raises(ConfigurationError):
            simulate_hit_ratio([], 4096)
        with pytest.raises(ConfigurationError):
            simulate_hit_ratio(trace, 4096, warmup_fraction=1.0)


class TestShardedComposition:
    def test_routed_cluster_tracks_single_cache_at_same_total(self, trace):
        total = 4096 * 900
        single = simulate_hit_ratio(trace, total, warmup_fraction=0.0)
        sharded = sharded_hit_ratio(
            trace, ProteusRouter(3), num_active=3,
            capacity_bytes_per_server=total // 3,
        )
        assert sharded == pytest.approx(single.hit_ratio, abs=0.06)

    def test_empty_trace(self):
        assert sharded_hit_ratio([], ProteusRouter(2), 2, 4096) == 0.0
