"""Tests for the failure-injection experiment harness."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.failover import (
    FailoverConfig,
    FailoverExperiment,
    FailureEvent,
)


def config(**overrides):
    defaults = dict(
        duration=60.0,
        num_servers=5,
        replicas=2,
        num_users=40,
        catalogue_size=2000,
        pages_per_user=20,
        slot_seconds=10.0,
        seed=2,
    )
    defaults.update(overrides)
    return FailoverConfig(**defaults)


class TestValidation:
    def test_failure_event_ordering(self):
        with pytest.raises(ConfigurationError):
            FailureEvent(when=10.0, server_id=0, repair_at=5.0)
        with pytest.raises(ConfigurationError):
            FailureEvent(when=-1.0, server_id=0)

    def test_unknown_server_rejected(self):
        with pytest.raises(ConfigurationError):
            config(failures=[FailureEvent(when=5.0, server_id=99)])

    def test_failure_after_end_rejected(self):
        with pytest.raises(ConfigurationError):
            config(failures=[FailureEvent(when=500.0, server_id=0)])


class TestRuns:
    def test_baseline_run_without_failures(self):
        report = FailoverExperiment(config()).run()
        assert report.total_requests > 1000
        assert report.failovers == 0
        # After warm-up the DB fraction settles low.
        assert report.db_fraction.values[-1] < 0.1

    def test_crash_spikes_db_fraction_then_recovers(self):
        report = FailoverExperiment(config(
            duration=90.0,
            failures=[FailureEvent(when=40.0, server_id=0, repair_at=60.0)],
        )).run()
        values = report.db_fraction.values
        times = report.db_fraction.times
        # Compare against the slot immediately before the crash (earlier
        # slots still carry the cold-start decay).
        pre_crash = [v for t, v in zip(times, values) if 30 <= t < 40][-1]
        during = [v for t, v in zip(times, values) if 40 <= t < 60]
        after = [v for t, v in zip(times, values) if t >= 70]
        assert max(during) > 1.5 * pre_crash
        assert report.failovers > 0
        # Repair + cache refill brings the fallback rate back down.
        assert min(after) < max(during)

    def test_more_replicas_fail_over_more_and_fall_back_less(self):
        failures = [FailureEvent(when=30.0, server_id=0)]
        r1 = FailoverExperiment(config(replicas=1, failures=failures)).run()
        r2 = FailoverExperiment(config(replicas=2, failures=failures)).run()
        assert r2.failovers > r1.failovers == 0
        # post-crash DB pressure strictly lower with a replica
        assert r2.db_reads < r1.db_reads

    def test_report_series_cover_the_run(self):
        report = FailoverExperiment(config()).run()
        assert report.db_fraction.times[-1] <= 60.0
        assert len(report.db_fraction) >= 5
        assert report.overall_db_fraction < 0.6


class TestConfiguredTTL:
    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ConfigurationError):
            config(ttl_seconds=0.0)

    def test_ttl_flows_to_the_cache_cluster(self):
        experiment = FailoverExperiment(config(ttl_seconds=17.0))
        assert experiment.cache.transitions.ttl == 17.0
