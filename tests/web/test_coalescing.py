"""Tests for dog-pile (miss-storm) coalescing in the web tier."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.sim.latency import Constant
from repro.web.frontend import FetchPath, WebServer

CFG = optimal_config(2000)


def build(coalesce: bool):
    cache = CacheCluster(
        ProteusRouter(4, ring_size=2 ** 20), capacity_bytes=4096 * 2000,
        ttl=60.0, bloom_config=CFG,
    )
    db = DatabaseCluster(2, service_model=Constant(0.1))
    web = WebServer(
        0, cache, db, cache_latency=Constant(0.001),
        web_overhead=Constant(0.001), coalesce_misses=coalesce,
    )
    return cache, db, web


class TestCoalescing:
    def test_storm_on_one_key_costs_one_db_read(self):
        cache, db, web = build(coalesce=True)
        # 10 requests for the same cold key within the DB service time.
        results = [web.fetch("hot", now=i * 0.001) for i in range(10)]
        assert db.total_requests() == 1
        assert results[0].path is FetchPath.MISS_DB
        assert all(r.path is FetchPath.COALESCED for r in results[1:])
        assert all(r.value == results[0].value for r in results)

    def test_followers_wait_for_the_leader(self):
        cache, db, web = build(coalesce=True)
        leader = web.fetch("hot", now=0.0)
        follower = web.fetch("hot", now=0.001)
        # The follower cannot complete before the leader's DB fetch did.
        assert follower.completed >= leader.completed - 0.001
        assert follower.path is FetchPath.COALESCED

    def test_without_coalescing_every_miss_hits_db(self):
        cache, db, web = build(coalesce=False)
        for i in range(10):
            web.fetch("hot", now=i * 0.001)
        assert db.total_requests() == 10

    def test_after_leader_completes_normal_hits_resume(self):
        cache, db, web = build(coalesce=True)
        leader = web.fetch("hot", now=0.0)
        later = web.fetch("hot", now=leader.completed + 1.0)
        assert later.path is FetchPath.HIT_NEW

    def test_distinct_keys_do_not_coalesce(self):
        cache, db, web = build(coalesce=True)
        web.fetch("a", now=0.0)
        result = web.fetch("b", now=0.001)
        assert result.path is FetchPath.MISS_DB
        assert db.total_requests() == 2

    def test_coalesced_counts_in_stats(self):
        cache, db, web = build(coalesce=True)
        web.fetch("hot", now=0.0)
        web.fetch("hot", now=0.001)
        assert web.stats.counts[FetchPath.COALESCED] == 1
        # Coalesced requests are not database touches.
        assert web.stats.database_fraction == pytest.approx(0.5)
