"""Tests for Algorithm 2 (the WebServer data-retrieval path)."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.sim.latency import Constant
from repro.web.frontend import FetchPath, WebServer

CFG = optimal_config(2000)


# db_latency small by default: warm loops space requests 10 ms apart, and
# write-backs must complete (become visible) before later reads.
def build(n=4, active=None, ttl=60.0, db_latency=0.005):
    cache = CacheCluster(
        ProteusRouter(n, ring_size=2 ** 20),
        capacity_bytes=4096 * 2000,
        initial_active=active,
        ttl=ttl,
        bloom_config=CFG,
    )
    db = DatabaseCluster(3, service_model=Constant(db_latency))
    web = WebServer(
        0, cache, db, cache_latency=Constant(0.001), web_overhead=Constant(0.002)
    )
    return cache, db, web


class TestSteadyState:
    def test_first_fetch_misses_to_db_then_hits(self):
        cache, db, web = build()
        first = web.fetch("page:1", now=0.0)
        assert first.path is FetchPath.MISS_DB
        assert first.touched_database
        second = web.fetch("page:1", now=1.0)
        assert second.path is FetchPath.HIT_NEW
        assert not second.touched_database
        assert db.total_requests() == 1

    def test_hit_latency_is_cache_only(self):
        cache, db, web = build()
        web.fetch("page:1", now=0.0)
        result = web.fetch("page:1", now=1.0)
        # web overhead + one cache get
        assert result.latency == pytest.approx(0.003, abs=1e-6)

    def test_miss_latency_includes_db(self):
        cache, db, web = build(db_latency=0.05)
        result = web.fetch("page:1", now=0.0)
        # overhead 0.002 + get 0.001 + db 0.05 + set 0.001 (+pool setup 0.001x2)
        assert result.latency > 0.05

    def test_value_comes_from_authoritative_store(self):
        cache, db, web = build()
        result = web.fetch("page:X", now=0.0)
        assert result.value == db.shard_for("page:X").lookup("page:X")

    def test_stats_paths_counted(self):
        cache, db, web = build()
        web.fetch("a", 0.0)
        web.fetch("a", 1.0)
        assert web.stats.counts[FetchPath.MISS_DB] == 1
        assert web.stats.counts[FetchPath.HIT_NEW] == 1
        assert web.stats.database_fraction == 0.5


class TestScaleDownTransition:
    def warm(self, web, keys, start=0.0):
        t = start
        for key in keys:
            web.fetch(key, t)
            t += 0.01
        return t

    def test_remapped_keys_served_from_old_server(self):
        cache, db, web = build(4)
        keys = [f"page:{i}" for i in range(120)]
        t = self.warm(web, keys)
        db_before = db.total_requests()
        cache.scale_to(3, now=t)
        paths = [web.fetch(k, t + 1.0).path for k in keys]
        assert db.total_requests() == db_before  # zero DB penalty
        assert paths.count(FetchPath.HIT_OLD) > 0
        assert FetchPath.MISS_DB not in paths

    def test_hot_migration_amortized_once(self):
        # Property 1 (Section IV-A): only the first request reaches the old
        # server; the second finds the data at the new owner.
        cache, db, web = build(4)
        keys = [f"page:{i}" for i in range(60)]
        t = self.warm(web, keys)
        cache.scale_to(3, now=t)
        first = {k: web.fetch(k, t + 1.0).path for k in keys}
        second = {k: web.fetch(k, t + 2.0).path for k in keys}
        movers = [k for k, p in first.items() if p is FetchPath.HIT_OLD]
        assert movers
        assert all(second[k] is FetchPath.HIT_NEW for k in movers)

    def test_cold_keys_go_to_db_without_touching_old(self):
        cache, db, web = build(4)
        t = self.warm(web, [f"page:{i}" for i in range(30)])
        cache.scale_to(3, now=t)
        result = web.fetch("page:never-seen", t + 1.0)
        assert result.path is FetchPath.MISS_DB

    def test_after_ttl_old_server_is_gone(self):
        cache, db, web = build(4, ttl=30.0)
        keys = [f"page:{i}" for i in range(60)]
        t = self.warm(web, keys)
        cache.scale_to(3, now=t)
        # Touch nothing during the window; after expiry everything remapped
        # that was never pulled must come from the DB.
        late = t + 31.0
        cache.finalize_expired(late)
        paths = [web.fetch(k, late).path for k in keys]
        assert FetchPath.HIT_OLD not in paths
        assert paths.count(FetchPath.MISS_DB) > 0


class TestScaleUpTransition:
    def test_new_server_filled_from_ceding_owners(self):
        cache, db, web = build(4, active=3)
        keys = [f"page:{i}" for i in range(120)]
        t = 0.0
        for key in keys:
            web.fetch(key, t)
            t += 0.01
        db_before = db.total_requests()
        cache.scale_to(4, now=t)
        paths = [web.fetch(k, t + 1.0).path for k in keys]
        assert paths.count(FetchPath.HIT_OLD) > 0
        assert FetchPath.MISS_DB not in paths
        assert db.total_requests() == db_before


class TestDigestFalsePositive:
    def test_false_positive_goes_to_db_and_is_counted(self):
        # Force a false positive: a digest that says yes for everything.
        cache, db, web = build(4)
        t = 0.0
        for i in range(50):
            web.fetch(f"page:{i}", t)
            t += 0.01
        transition = cache.scale_to(3, now=t)
        # Replace server 3's digest with an all-ones filter.
        from repro.bloom.bloom import BloomFilter

        lying = BloomFilter(64, num_hashes=1)
        lying._bits = bytearray(b"\xff" * len(lying._bits))
        transition.digests[3] = lying
        # Pick a never-fetched key whose *old* owner is the drained server 3,
        # so Algorithm 2 actually consults the lying digest.
        key = next(
            f"page:fp-{i}" for i in range(10_000)
            if cache.router.route(f"page:fp-{i}", 4) == 3
        )
        result = web.fetch(key, t + 1.0)
        assert result.path is FetchPath.FALSE_POSITIVE_DB
        assert web.stats.counts[FetchPath.FALSE_POSITIVE_DB] == 1


class TestAdmissionControl:
    """DB-path admission in the sim tier (the live frontend's mirror)."""

    def build_admitted(self, max_depth=1, db_latency=0.05):
        from repro.resilience import VirtualQueueAdmission

        cache = CacheCluster(
            ProteusRouter(4, ring_size=2 ** 20),
            capacity_bytes=4096 * 2000,
            ttl=60.0,
            bloom_config=CFG,
        )
        db = DatabaseCluster(3, service_model=Constant(db_latency))
        web = WebServer(
            0, cache, db,
            cache_latency=Constant(0.001), web_overhead=Constant(0.002),
            admission=VirtualQueueAdmission(max_depth=max_depth),
        )
        return cache, db, web

    def test_excess_misses_are_shed_not_queued(self):
        cache, db, web = self.build_admitted(max_depth=1)
        first = web.fetch("page:a", now=0.0)
        assert first.path is FetchPath.MISS_DB
        # The admitted read is still outstanding on the virtual clock:
        # further DB-path work at the same instant is refused, unserved.
        shed = web.fetch("page:b", now=0.0)
        assert shed.path is FetchPath.SHED
        assert shed.value is None
        assert not shed.touched_database
        assert web.stats.shed == 1
        assert web.stats.goodput == web.stats.total - 1
        assert db.total_requests() == 1  # the shed never reached the DB

    def test_hits_are_never_consulted(self):
        cache, db, web = self.build_admitted(max_depth=1)
        web.fetch("page:a", now=0.0)
        # Saturate the virtual queue with a concurrent miss.
        web.fetch("page:b", now=1.0)
        # A hit at the same saturated instant still serves: it completes
        # before any database decision is made.
        hit = web.fetch("page:a", now=1.0)
        assert hit.path is FetchPath.HIT_NEW
        assert hit.value is not None

    def test_virtual_queue_drains_with_time(self):
        cache, db, web = self.build_admitted(max_depth=1, db_latency=0.05)
        web.fetch("page:a", now=0.0)
        assert web.queue_depth(0.01) == 1.0
        assert web.fetch("page:b", now=0.0).path is FetchPath.SHED
        # Past the admitted read's completion the slot frees up.
        assert web.queue_depth(1.0) == 0.0
        later = web.fetch("page:b", now=1.0)
        assert later.path is FetchPath.MISS_DB

    def test_no_admission_means_zero_behaviour_change(self):
        cache, db, web = build()
        assert web.admission is None
        assert web.queue_depth(0.0) == 0.0
        result = web.fetch("page:a", now=0.0)
        assert result.path is FetchPath.MISS_DB
        assert web.stats.shed == 0

    def test_batch_sheds_only_the_excess(self):
        cache, db, web = self.build_admitted(max_depth=2)
        keys = [f"page:{i}" for i in range(6)]
        results = web.fetch_many(keys, now=0.0)
        paths = [results[k].path for k in keys]
        assert paths.count(FetchPath.MISS_DB) == 2
        assert paths.count(FetchPath.SHED) == 4
        assert db.total_requests() == 2
        # shed keys carry no value and trigger no write-back
        for key in keys:
            if results[key].path is FetchPath.SHED:
                assert results[key].value is None
