"""Tests for the replicated read/write path (Section III-E operational)."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.cache.server import PowerState
from repro.core.replication import ReplicatedProteusRouter
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.sim.latency import Constant
from repro.web.replicated import ReplicatedWebServer

CFG = optimal_config(2000)


def build(n=6, replicas=2, active=None):
    cache = CacheCluster(
        ReplicatedProteusRouter(n, replicas=replicas, ring_size=2 ** 24),
        capacity_bytes=4096 * 2000,
        initial_active=active,
        ttl=60.0,
        bloom_config=CFG,
    )
    # Fast constant-latency DB so warm-phase write-backs complete before the
    # post-crash re-reads (items are invisible before their write time).
    db = DatabaseCluster(3, service_model=Constant(0.002))
    return cache, db, ReplicatedWebServer(0, cache, db)


class TestConstruction:
    def test_requires_replicated_router(self):
        cache = CacheCluster(
            ProteusRouter(4, ring_size=2 ** 20), bloom_config=CFG
        )
        with pytest.raises(ConfigurationError):
            ReplicatedWebServer(0, cache, DatabaseCluster(2))


class TestWrites:
    def test_put_reaches_all_distinct_replicas(self):
        cache, db, web = build(replicas=3)
        written = web.put("page:1", b"v", now=0.0)
        expected = cache.router.distinct_replica_servers("page:1", 6)
        assert written == expected
        for server_id in written:
            assert cache.server(server_id).get("page:1", 0.0) == b"v"


class TestReadsAndFailover:
    def test_fetch_miss_populates_all_replicas(self):
        cache, db, web = build(replicas=2)
        result = web.fetch("page:x", now=0.0)
        assert result.touched_database
        for server_id in cache.router.distinct_replica_servers("page:x", 6):
            assert cache.server(server_id).get("page:x", 1.0) is not None

    def test_fetch_hit_from_primary(self):
        cache, db, web = build(replicas=2)
        web.fetch("page:x", now=0.0)
        result = web.fetch("page:x", now=1.0)
        assert not result.touched_database
        assert result.served_by == cache.router.route("page:x", 6)
        assert web.failovers == 0

    def test_failover_serves_from_replica_after_crash(self):
        cache, db, web = build(replicas=2)
        keys = [f"page:{i}" for i in range(150)]
        t = 0.0
        for key in keys:
            web.fetch(key, t)
            t += 0.01
        db_before = db.total_requests()
        cache.fail_server(0, now=t)  # crash the first server
        failed_over = 0
        db_fallback = 0
        for key in keys:
            result = web.fetch(key, t + 1.0)
            assert result.value is not None
            if result.served_by is not None and (
                cache.router.route(key, 6) == 0
            ):
                failed_over += 1
            if result.touched_database:
                db_fallback += 1
        # Keys whose primary was server 0 are served from their replica...
        assert failed_over > 0
        assert web.failovers == failed_over
        # ...and only replica-conflict keys (both copies on server 0) fall
        # through to the DB: a small fraction (Eq. 3 at n=6 predicts ~1/6
        # of server-0 keys, i.e. a few percent overall).
        assert db_fallback < len(keys) * 0.1
        assert db.total_requests() - db_before == db_fallback

    def test_without_replication_every_crashed_key_hits_db(self):
        cache, db, web = build(replicas=1)
        keys = [f"page:{i}" for i in range(150)]
        t = 0.0
        for key in keys:
            web.fetch(key, t)
            t += 0.01
        cache.fail_server(0, now=t)
        db_before = db.total_requests()
        primaries = sum(1 for k in keys if cache.router.route(k, 6) == 0)
        for key in keys:
            web.fetch(key, t + 1.0)
        assert db.total_requests() - db_before == primaries
        assert primaries > 0

    def test_all_replicas_crashed_still_serves_via_db(self):
        cache, db, web = build(replicas=2)
        web.fetch("page:q", now=0.0)
        owners = cache.router.distinct_replica_servers("page:q", 6)
        for owner in owners:
            cache.fail_server(owner, now=1.0)
        result = web.fetch("page:q", now=2.0)
        assert result.touched_database
        assert result.value is not None
        assert result.served_by is None


class TestClusterFailureApi:
    def test_fail_and_repair(self):
        cache, db, web = build()
        cache.fail_server(2, now=0.0)
        assert cache.failed_servers() == frozenset({2})
        assert cache.server(2).state is PowerState.OFF
        cache.repair_server(2, now=1.0)
        assert cache.failed_servers() == frozenset()
        assert cache.server(2).state is PowerState.ON
        assert len(cache.server(2).store) == 0  # came back cold

    def test_repair_of_inactive_server_stays_off(self):
        cache, db, web = build(active=3)
        cache.fail_server(5, now=0.0)  # already OFF: no-op
        assert cache.failed_servers() == frozenset()
        cache.fail_server(2, now=0.0)
        cache.scale_to(2, now=1.0)  # server 2 now outside the active prefix
        cache.repair_server(2, now=2.0)
        assert cache.server(2).state is PowerState.OFF

    def test_failing_twice_is_idempotent(self):
        cache, db, web = build()
        cache.fail_server(1, now=0.0)
        cache.fail_server(1, now=1.0)
        assert cache.failed_servers() == frozenset({1})
