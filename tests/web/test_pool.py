"""Tests for connection pools."""

import pytest

from repro.errors import ConfigurationError
from repro.web.pool import ConnectionPool, PoolRegistry


class TestConnectionPool:
    def test_first_acquire_pays_setup(self):
        pool = ConnectionPool(capacity=2, setup_cost=0.01)
        assert pool.acquire() == 0.01
        assert pool.created == 1

    def test_release_then_acquire_is_free(self):
        pool = ConnectionPool(capacity=2, setup_cost=0.01)
        pool.acquire()
        pool.release()
        assert pool.acquire() == 0.0
        assert pool.reused == 1

    def test_at_capacity_counts_waits(self):
        pool = ConnectionPool(capacity=1, setup_cost=0.01)
        pool.acquire()
        assert pool.acquire() == 0.0
        assert pool.waited == 1

    def test_busy_idle_accounting(self):
        pool = ConnectionPool(capacity=4)
        pool.acquire()
        pool.acquire()
        assert pool.busy == 2
        pool.release()
        assert pool.busy == 1 and pool.idle == 1

    def test_release_without_acquire_raises(self):
        with pytest.raises(ConfigurationError):
            ConnectionPool().release()

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            ConnectionPool(capacity=0)
        with pytest.raises(ConfigurationError):
            ConnectionPool(setup_cost=-1.0)


class TestPoolRegistry:
    def test_singleton_per_backend(self):
        registry = PoolRegistry()
        assert registry.pool("cache:0") is registry.pool("cache:0")
        assert registry.pool("cache:0") is not registry.pool("cache:1")

    def test_total_created(self):
        registry = PoolRegistry()
        registry.pool("a").acquire()
        registry.pool("b").acquire()
        assert registry.total_created() == 2
