"""Cross-cutting tests: error hierarchy, stress shapes, small gaps."""

import asyncio

import pytest

from repro import errors


class TestErrorHierarchy:
    def test_all_library_errors_share_a_root(self):
        leaf_classes = [
            errors.ConfigurationError, errors.PlacementError,
            errors.RoutingError, errors.TransitionError, errors.CacheError,
            errors.CacheKeyError, errors.CapacityError, errors.DigestError,
            errors.ProtocolError, errors.SimulationError,
            errors.ProvisioningError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.ProteusError)

    def test_cache_key_error_is_a_key_error(self):
        assert issubclass(errors.CacheKeyError, KeyError)

    def test_one_handler_catches_everything(self):
        from repro.core.router import NaiveRouter

        try:
            NaiveRouter(4).route("k", 9)
        except errors.ProteusError as exc:
            assert "num_active" in str(exc)
        else:  # pragma: no cover
            pytest.fail("expected a ProteusError")


class TestEventLoopStress:
    def test_ten_thousand_interleaved_events(self):
        from repro.sim.events import EventLoop

        loop = EventLoop()
        fired = []
        handles = []
        for i in range(10_000):
            handles.append(
                loop.schedule_at(float(i % 100), fired.append, i)
            )
        for handle in handles[::3]:
            handle.cancel()
        loop.run()
        assert len(fired) == 10_000 - len(handles[::3])
        # time order respected
        times = [i % 100 for i in fired]
        assert times == sorted(times)

    def test_cancel_from_within_a_callback(self):
        from repro.sim.events import EventLoop

        loop = EventLoop()
        fired = []
        later = loop.schedule_at(2.0, fired.append, "later")
        loop.schedule_at(1.0, later.cancel)
        loop.run()
        assert fired == []


class TestZipfExtremes:
    def test_alpha_above_one(self):
        from repro.workload.zipf import ZipfSampler

        sampler = ZipfSampler(10_000, alpha=1.5, seed=8, shuffle=False)
        draws = sampler.sample_many(20_000)
        head = (draws < 10).mean()
        assert head > 0.6  # very heavy head at alpha=1.5

    def test_single_item_catalogue(self):
        from repro.workload.zipf import ZipfSampler

        sampler = ZipfSampler(1, alpha=0.9)
        assert sampler.sample() == 0
        assert sampler.popularity(0) == pytest.approx(1.0)


class TestStoreSmallGaps:
    def test_default_item_size_used(self):
        from repro.cache.store import KeyValueStore

        store = KeyValueStore(default_item_size=100)
        store.set("k", "v")
        assert store.used_bytes == 100

    def test_purge_on_empty_store(self):
        from repro.cache.store import KeyValueStore

        assert KeyValueStore().purge_expired(100.0) == 0

    def test_keys_iterator(self):
        from repro.cache.store import KeyValueStore

        store = KeyValueStore()
        store.set("a", 1)
        store.set("b", 2)
        assert sorted(store.keys()) == ["a", "b"]


class TestNoreplyOverTcp:
    def test_set_noreply_then_get(self):
        from repro.bloom.config import optimal_config
        from repro.net.client import MemcachedClient
        from repro.net.server import MemcachedServer

        async def body():
            server = MemcachedServer(bloom_config=optimal_config(500))
            await server.start()
            try:
                async with MemcachedClient("127.0.0.1", server.port) as client:
                    # noreply set: no response line is sent; the next get
                    # must parse cleanly (no response desync).
                    await client.send_noreply(b"set k 0 0 3 noreply\r\nabc\r\n")
                    assert await client.get("k") == b"abc"
                    await client.send_noreply(b"delete k noreply\r\n")
                    assert await client.get("k") is None
            finally:
                await server.stop()

        asyncio.run(body())


class TestRapidTransitions:
    def test_down_up_down_sequence_through_actuator(self):
        from repro.bloom.config import optimal_config
        from repro.cache.cluster import CacheCluster
        from repro.cache.server import PowerState
        from repro.core.router import ProteusRouter
        from repro.provisioning.actuator import ProvisioningActuator
        from repro.provisioning.policies import ProvisioningSchedule
        from repro.sim.events import EventLoop

        cache = CacheCluster(
            ProteusRouter(6, ring_size=2 ** 20), capacity_bytes=4096 * 100,
            initial_active=6, ttl=4.0, bloom_config=optimal_config(500),
        )
        actuator = ProvisioningActuator(cache, smooth=True)
        schedule = ProvisioningSchedule(10.0, [6, 4, 6, 3, 5, 5])
        loop = EventLoop()
        actuator.install(schedule, loop)
        loop.run_until(schedule.duration)
        assert cache.active_count == 5
        states = [server.state for server in cache.servers]
        assert states[:5].count(PowerState.ON) == 5
        assert states[5] is PowerState.OFF
        assert len(actuator.applied) == 4

    def test_cli_place_custom_ring_size(self, capsys):
        from repro.cli import main

        assert main(["place", "3", "--ring-size", "1000", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "ring=1000" in out
