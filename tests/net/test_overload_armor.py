"""Frontend overload armor: shed classification, budgets, admission.

The client-side half of the overload contract:

* shed replies (``SERVER_ERROR busy``) and local bounds (full windows,
  saturated pools) are **never retried** — one attempt, then degrade;
* cancellation propagates immediately (never absorbed into a retry);
* the driver-wide :class:`~repro.resilience.RetryBudget` caps total
  retry volume at a fraction of request volume;
* per-server AIMD limiters bound concurrent RPCs and treat op timeouts
  (not refused connections) as congestion signals;
* DB-path admission sheds misses while hits keep being served.
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.core.retrieval import SERVER_UNAVAILABLE, FetchPath
from repro.errors import ClientOverloadError, ServerBusyError, TransportError
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.resilience import (
    AdmissionController,
    Deadline,
    ResiliencePolicy,
    RetryPolicy,
)

CFG = optimal_config(2000)


def run(coro):
    return asyncio.run(coro)


def make_frontend(resilience=None, **kwargs):
    async def db(key):
        return f"db-value-of-{key}".encode()

    return AsyncProteusFrontend(
        [("127.0.0.1", 1)], CFG, db, resilience=resilience, **kwargs
    )


def fast_retry(**overrides):
    kwargs = dict(max_attempts=3, base_delay=0.0, jitter=0.0)
    kwargs.update(overrides)
    return RetryPolicy(**kwargs)


class _CountingOp:
    """A zero-arg async op raising a scripted error every call."""

    def __init__(self, error):
        self.error = error
        self.calls = 0

    async def __call__(self):
        self.calls += 1
        raise self.error


class TestNeverRetrySheds:
    def test_server_busy_is_one_attempt_then_degrade(self):
        async def body():
            web = make_frontend(ResiliencePolicy(retry=fast_retry()))
            op = _CountingOp(ServerBusyError("SERVER_ERROR busy x"))
            result = await web._cache_rpc(0, op, None)
            assert result is SERVER_UNAVAILABLE
            assert op.calls == 1  # a shed is never retried
            assert web.shed_rpcs == 1
            assert web.transient_failures == 0  # not a breaker failure

        run(body())

    def test_client_overload_is_one_attempt_then_degrade(self):
        async def body():
            web = make_frontend(ResiliencePolicy(retry=fast_retry()))
            op = _CountingOp(ClientOverloadError("window full"))
            result = await web._cache_rpc(0, op, None)
            assert result is SERVER_UNAVAILABLE
            assert op.calls == 1
            assert web.shed_rpcs == 1

        run(body())

    def test_cancellation_propagates_without_retry(self):
        async def body():
            web = make_frontend(ResiliencePolicy(retry=fast_retry()))
            op = _CountingOp(asyncio.CancelledError())
            with pytest.raises(asyncio.CancelledError):
                await web._cache_rpc(0, op, None)
            assert op.calls == 1

        run(body())

    def test_expired_deadline_skips_the_op_entirely(self):
        async def body():
            web = make_frontend(ResiliencePolicy(retry=fast_retry()))
            op = _CountingOp(TransportError("unreached"))
            result = await web._cache_rpc(0, op, Deadline(0.0))
            assert result is SERVER_UNAVAILABLE
            assert op.calls == 0  # fail fast: no dial, no queue
            assert web.unavailable_rpcs == 1

        run(body())


class TestRetryBudget:
    def test_spent_budget_denies_the_retry(self):
        async def body():
            policy = ResiliencePolicy(
                retry=fast_retry(),
                retry_budget_ratio=0.01,  # one RPC deposits ~nothing
                retry_budget_min_rate=0.0,
            )
            web = make_frontend(policy)
            assert web.retry_budget is not None
            op = _CountingOp(TransportError("reset"))
            result = await web._cache_rpc(0, op, None)
            assert result is SERVER_UNAVAILABLE
            assert op.calls == 1  # the retry was denied, not slept
            assert web.budget_denied_retries == 1
            stats = web.transport_stats()
            assert stats["retries_denied"] == 1
            assert stats["retries_granted"] == 0

        run(body())

    def test_funded_budget_grants_retries(self):
        async def body():
            policy = ResiliencePolicy(
                retry=fast_retry(),
                retry_budget_ratio=1.0,
                retry_budget_min_rate=0.0,
            )
            web = make_frontend(policy)
            # Fund the bucket with request volume first.
            web.retry_budget.record_request(n=10)
            op = _CountingOp(TransportError("reset"))
            await web._cache_rpc(0, op, None)
            assert op.calls == 3  # all attempts ran
            assert web.budget_denied_retries == 0
            assert web.transport_stats()["retries_granted"] == 2

        run(body())


class TestAdaptiveLimiter:
    def test_full_window_sheds_before_the_op(self):
        async def body():
            policy = ResiliencePolicy(retry=fast_retry(), limiter_window=1)
            web = make_frontend(policy)
            limiter = web.limiters[0]
            limiter.inflight = limiter.window  # window occupied
            op = _CountingOp(TransportError("unreached"))
            result = await web._cache_rpc(0, op, None)
            assert result is SERVER_UNAVAILABLE
            assert op.calls == 0
            assert web.shed_rpcs == 1
            assert web.transport_stats()["limiter_shed"] == 1

        run(body())

    def test_op_timeouts_cut_the_window(self):
        async def body():
            policy = ResiliencePolicy(
                retry=fast_retry(max_attempts=2), limiter_window=8
            )
            web = make_frontend(policy)
            timeout = TransportError("op timed out")
            timeout.__cause__ = asyncio.TimeoutError()
            await web._cache_rpc(0, _CountingOp(timeout), None)
            limiter = web.limiters[0]
            assert limiter.cuts >= 1
            assert limiter.limit < 8.0
            assert limiter.inflight == 0  # released on every exit path

        run(body())

    def test_refused_connections_do_not_cut_the_window(self):
        async def body():
            # A refused dial is the breaker's business, not congestion.
            policy = ResiliencePolicy(
                retry=fast_retry(max_attempts=2), limiter_window=8
            )
            web = make_frontend(policy)
            await web._cache_rpc(0, _CountingOp(ConnectionRefusedError()), None)
            assert web.limiters[0].cuts == 0
            assert web.transient_failures == 2

        run(body())


class TestTransportStats:
    def test_base_keys_always_present(self):
        web = make_frontend()
        stats = web.transport_stats()
        for key in (
            "dials", "ejections", "reconnects", "pool_waited",
            "pool_leases_peak", "pool_overflow_failures",
            "unavailable_rpcs", "transient_failures", "shed_rpcs",
            "budget_denied_retries", "shed_fetches",
        ):
            assert key in stats
        # armor disabled: no budget/limiter sections
        assert "retries_granted" not in stats
        assert "limiter_shed" not in stats

    def test_armor_profile_exposes_budget_and_limiter_sections(self):
        web = make_frontend(ResiliencePolicy.overload_armor())
        stats = web.transport_stats()
        for key in (
            "retries_granted", "retries_denied",
            "limiter_shed", "limiter_cuts", "limiter_peak_inflight",
        ):
            assert key in stats


class _DenyAll(AdmissionController):
    """Refuse every DB read — the deterministic overload oracle."""

    def _admit(self, now):
        return False


class TestLiveAdmission:
    def test_hits_served_while_db_path_sheds(self):
        async def body():
            server = MemcachedServer(bloom_config=CFG)
            await server.start()

            async def db(key):
                return f"db-value-of-{key}".encode()

            web = AsyncProteusFrontend(
                [("127.0.0.1", server.port)], CFG, db
            )
            await web.connect()
            try:
                # Warm one key with admission off.
                first = await web.fetch("page:warm")
                assert first.path is FetchPath.MISS_DB

                web.engine.admission = _DenyAll()
                # Priority tier 1: the hit completes before any database
                # decision — admission is never consulted.
                hit = await web.fetch("page:warm")
                assert hit.path is FetchPath.HIT_NEW
                assert hit.value == b"db-value-of-page:warm"
                # Priority tier 2: the miss's DB read is refused.
                cold = await web.fetch("page:cold")
                assert cold.path is FetchPath.SHED
                assert cold.value is None
                assert web.stats.shed == 1
                assert web.stats.goodput == web.stats.total - 1
                assert web.transport_stats()["shed_fetches"] == 1
                assert web.engine.admission.shed == 1
            finally:
                await web.close()
                await server.stop()

        run(body())
