"""Server-side backpressure: inflight caps, busy sheds, paused reads.

The overload contract on the wire: a command over the server's global
``max_inflight`` cap is answered ``SERVER_ERROR busy ...`` in its reply
slot — a *well-formed* error line, so the stream stays framed and later
pipelined commands still get their own replies.  Clients surface it as
:class:`~repro.errors.ServerBusyError`, which the retry policy refuses
to retry (shed replies must not amplify into retry storms).
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ConfigurationError, ServerBusyError
from repro.net import protocol as proto
from repro.net.client import MemcachedClient
from repro.net.parser import ErrorLine
from repro.net.server import MemcachedServer
from repro.resilience import RetryPolicy

CFG = optimal_config(500)


def run(coro):
    return asyncio.run(coro)


async def with_raw_server(test_body, **server_kwargs):
    server_kwargs.setdefault("bloom_config", CFG)
    server = MemcachedServer(**server_kwargs)
    await server.start()
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    try:
        await test_body(server, reader, writer)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
        await server.stop()


class TestValidation:
    def test_caps_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            MemcachedServer(bloom_config=CFG, max_inflight=0)
        with pytest.raises(ConfigurationError):
            MemcachedServer(bloom_config=CFG, max_conn_inflight=0)


class TestGlobalInflightCap:
    def test_burst_over_the_cap_is_shed_with_busy_lines(self):
        async def body(server, reader, writer):
            # One TCP segment carrying 5 pipelined gets against a cap of
            # 2: the first 2 dispatch, the excess 3 are shed in place.
            writer.write(b"get k\r\n" * 5)
            await writer.drain()
            replies = [await reader.readline() for _ in range(5)]
            served = [r for r in replies if r == b"END\r\n"]
            shed = [r for r in replies if r.startswith(proto.BUSY_PREFIX)]
            assert len(served) == 2
            assert len(shed) == 3
            assert server.shed_commands == 3

        run(with_raw_server(body, max_inflight=2))

    def test_stream_stays_framed_after_a_shed(self):
        async def body(server, reader, writer):
            writer.write(b"get a\r\nget b\r\nget c\r\n")
            await writer.drain()
            for _ in range(3):
                await reader.readline()
            # The connection survived the sheds: later commands on the
            # same socket get normal replies in their own slots.
            writer.write(b"set k 0 0 1\r\nv\r\n")
            await writer.drain()
            assert await reader.readline() == b"STORED\r\n"
            writer.write(b"get k\r\n")
            await writer.drain()
            assert await reader.readline() == b"VALUE k 0 1\r\n"
            assert await reader.readline() == b"v\r\n"
            assert await reader.readline() == b"END\r\n"

        run(with_raw_server(body, max_inflight=1))

    def test_stats_expose_the_armor_counters(self):
        async def body(server, reader, writer):
            writer.write(b"get k\r\nget k\r\n")
            await writer.drain()
            await reader.readline()
            await reader.readline()
            writer.write(b"stats\r\n")
            await writer.drain()
            lines = []
            while True:
                line = await reader.readline()
                lines.append(line)
                if line == b"END\r\n":
                    break
            text = b"".join(lines).decode()
            assert "inflight_commands" in text
            assert "shed_commands" in text
            assert "paused_reads" in text

        run(with_raw_server(body, max_inflight=1))


class TestPerConnectionWatermark:
    def test_oversized_chunk_pauses_reads_until_drained(self):
        async def body(server, reader, writer):
            writer.write(b"get k\r\n" * 4)
            await writer.drain()
            replies = [await reader.readline() for _ in range(4)]
            # Nothing shed — the watermark pauses, it does not refuse.
            assert replies == [b"END\r\n"] * 4
            assert server.paused_reads >= 1
            assert server.shed_commands == 0

        run(with_raw_server(body, max_conn_inflight=2))


class _BusyServer:
    """A fake memcached that sheds every command line it reads."""

    def __init__(self):
        self._server = None

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                writer.write(proto.busy_response("synthetic overload"))
                await writer.drain()
        finally:
            writer.close()

    async def __aenter__(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[1]

    async def __aexit__(self, *exc_info):
        self._server.close()
        await self._server.wait_closed()


class TestClientClassification:
    def test_error_line_classifies_busy(self):
        busy = ErrorLine(proto.busy_response("x").rstrip(b"\r\n"))
        plain = ErrorLine(b"SERVER_ERROR out of memory")
        assert busy.is_busy
        assert not plain.is_busy
        with pytest.raises(ServerBusyError):
            busy.raise_()

    def test_client_raises_server_busy_and_policy_refuses_retry(self):
        async def body():
            async with _BusyServer() as port:
                async with MemcachedClient("127.0.0.1", port) as client:
                    with pytest.raises(ServerBusyError) as info:
                        await client.get("k")
            # The wire shed maps to the never-retry class: storms
            # cannot amplify through the retry loop.
            assert not RetryPolicy().is_transient(info.value)

        run(body())
