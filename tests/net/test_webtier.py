"""Tests for the asyncio web tier (Algorithm 2 over live TCP)."""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ConfigurationError, TransitionError
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend

CFG = optimal_config(2000)


def run(coro):
    return asyncio.run(coro)


class CountingDatabase:
    """Async dict-backed authoritative store with a read counter."""

    def __init__(self):
        self.reads = 0

    async def fetch(self, key: str) -> bytes:
        self.reads += 1
        return f"db-value-of-{key}".encode()


async def start_cluster(num_servers: int):
    servers = [MemcachedServer(bloom_config=CFG) for _ in range(num_servers)]
    endpoints = []
    for server in servers:
        port = await server.start()
        endpoints.append(("127.0.0.1", port))
    return servers, endpoints


async def stop_cluster(servers):
    for server in servers:
        await server.stop()


class TestSteadyState:
    def test_fetch_miss_then_hit(self):
        async def body():
            servers, endpoints = await start_cluster(3)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    result = await web.fetch("page:1")
                    assert result.path == "miss_db"
                    assert result.value == b"db-value-of-page:1"
                    result = await web.fetch("page:1")
                    assert result.path == "hit_new"
                    assert db.reads == 1
            finally:
                await stop_cluster(servers)

        run(body())

    def test_routing_matches_simulator_router(self):
        async def body():
            servers, endpoints = await start_cluster(4)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    for i in range(40):
                        key = f"page:{i}"
                        await web.fetch(key)
                        owner = web.router.route(key, 4)
                        # The item physically lives on the routed server.
                        assert key in servers[owner].store
            finally:
                await stop_cluster(servers)

        run(body())

    def test_put_write_through(self):
        async def body():
            servers, endpoints = await start_cluster(3)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    await web.put("k", b"direct")
                    result = await web.fetch("k")
                    assert result.value == b"direct" and result.path == "hit_new"
                    assert db.reads == 0
            finally:
                await stop_cluster(servers)

        run(body())

    def test_requires_connect(self):
        web = AsyncProteusFrontend([("127.0.0.1", 1)], CFG, CountingDatabase().fetch)
        with pytest.raises(ConfigurationError):
            run(web.fetch("k"))

    def test_validation(self):
        db = CountingDatabase()
        with pytest.raises(ConfigurationError):
            AsyncProteusFrontend([], CFG, db.fetch)
        with pytest.raises(ConfigurationError):
            AsyncProteusFrontend([("h", 1)], CFG, db.fetch, initial_active=2)


class TestSmoothTransition:
    def test_scale_down_zero_db_reads_for_hot_keys(self):
        async def body():
            servers, endpoints = await start_cluster(4)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    keys = [f"page:{i}" for i in range(150)]
                    for key in keys:
                        await web.fetch(key)
                    reads_before = db.reads
                    await web.scale_to(3, ttl=60.0)
                    paths = [
                        (await web.fetch(key)).path for key in keys
                    ]
                    assert db.reads == reads_before
                    assert paths.count("hit_old") > 0
                    assert "miss_db" not in paths
                    # Property 1: second pass is all authoritative hits.
                    second = [(await web.fetch(key)).path for key in keys]
                    assert set(second) == {"hit_new"}
            finally:
                await stop_cluster(servers)

        run(body())

    def test_scale_up_pulls_from_ceding_owners(self):
        async def body():
            servers, endpoints = await start_cluster(4)
            db = CountingDatabase()
            try:
                web = AsyncProteusFrontend(
                    endpoints, CFG, db.fetch, initial_active=3
                )
                await web.connect()
                keys = [f"page:{i}" for i in range(150)]
                for key in keys:
                    await web.fetch(key)
                reads_before = db.reads
                await web.scale_to(4, ttl=60.0)
                paths = [(await web.fetch(key)).path for key in keys]
                assert db.reads == reads_before
                assert paths.count("hit_old") > 0
                await web.close()
            finally:
                await stop_cluster(servers)

        run(body())

    def test_window_expires_by_clock(self):
        async def body():
            servers, endpoints = await start_cluster(3)
            db = CountingDatabase()
            fake = {"t": 0.0}
            try:
                web = AsyncProteusFrontend(
                    endpoints, CFG, db.fetch, clock=lambda: fake["t"]
                )
                await web.connect()
                await web.fetch("page:1")
                await web.scale_to(2, ttl=10.0)
                assert web._current_transition() is not None
                fake["t"] = 10.0
                assert web._current_transition() is None
                # After expiry, cold remapped keys go to the DB.
                await web.close()
            finally:
                await stop_cluster(servers)

        run(body())

    def test_overlapping_transition_rejected(self):
        async def body():
            servers, endpoints = await start_cluster(3)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    await web.scale_to(2, ttl=100.0)
                    with pytest.raises(TransitionError):
                        await web.scale_to(3, ttl=100.0)
            finally:
                await stop_cluster(servers)

        run(body())

    def test_noop_scale_rejected(self):
        async def body():
            servers, endpoints = await start_cluster(2)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as web:
                    with pytest.raises(TransitionError):
                        await web.scale_to(2, ttl=10.0)
            finally:
                await stop_cluster(servers)

        run(body())


class TestMultipleFrontends:
    def test_independent_frontends_agree(self):
        # The consistency objective over real sockets: two frontends with no
        # shared state route identically and see each other's writes.
        async def body():
            servers, endpoints = await start_cluster(4)
            db = CountingDatabase()
            try:
                async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as a:
                    async with AsyncProteusFrontend(endpoints, CFG, db.fetch) as b:
                        for i in range(30):
                            await a.fetch(f"page:{i}")
                        reads_after_a = db.reads
                        for i in range(30):
                            result = await b.fetch(f"page:{i}")
                            assert result.path == "hit_new"
                        assert db.reads == reads_after_a
            finally:
                await stop_cluster(servers)

        run(body())
