"""Live TCP tests for the extended memcached commands."""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ProtocolError
from repro.net import protocol as proto
from repro.net.client import MemcachedClient
from repro.net.server import MemcachedServer

CFG = optimal_config(2000)


def run(coro):
    return asyncio.run(coro)


async def with_server(test_body, **server_kwargs):
    server_kwargs.setdefault("bloom_config", CFG)
    server = MemcachedServer(**server_kwargs)
    await server.start()
    try:
        async with MemcachedClient("127.0.0.1", server.port) as client:
            await test_body(server, client)
    finally:
        await server.stop()


class TestCas:
    def test_gets_returns_cas_id(self):
        async def body(server, client):
            await client.set("k", b"v1")
            first = await client.gets("k")
            assert first.value == b"v1"
            await client.set("k", b"v2")
            second = await client.gets("k")
            assert second.cas > first.cas

        run(with_server(body))

    def test_cas_succeeds_when_unchanged(self):
        async def body(server, client):
            await client.set("k", b"v1")
            token = await client.gets("k")
            assert await client.cas("k", b"v2", token.cas) == "stored"
            assert await client.get("k") == b"v2"

        run(with_server(body))

    def test_cas_fails_after_concurrent_write(self):
        async def body(server, client):
            await client.set("k", b"v1")
            token = await client.gets("k")
            await client.set("k", b"intervening")
            assert await client.cas("k", b"v2", token.cas) == "exists"
            assert await client.get("k") == b"intervening"

        run(with_server(body))

    def test_cas_on_missing_key(self):
        async def body(server, client):
            assert await client.cas("ghost", b"v", 1) == "not_found"

        run(with_server(body))

    def test_gets_miss_returns_none(self):
        async def body(server, client):
            assert await client.gets("missing") is None

        run(with_server(body))


class TestConcat:
    def test_append(self):
        async def body(server, client):
            await client.set("k", b"hello")
            assert await client.append("k", b" world")
            assert await client.get("k") == b"hello world"

        run(with_server(body))

    def test_prepend(self):
        async def body(server, client):
            await client.set("k", b"world")
            assert await client.prepend("k", b"hello ")
            assert await client.get("k") == b"hello world"

        run(with_server(body))

    def test_concat_on_missing_key_not_stored(self):
        async def body(server, client):
            assert not await client.append("ghost", b"x")
            assert not await client.prepend("ghost", b"x")

        run(with_server(body))

    def test_concat_keeps_digest_consistent(self):
        async def body(server, client):
            await client.set("k", b"a")
            await client.append("k", b"b")
            assert server.digest.count == 1  # replace, not duplicate insert
            assert "k" in server.digest

        run(with_server(body))


class TestArithmetic:
    def test_incr(self):
        async def body(server, client):
            await client.set("n", b"10")
            assert await client.incr("n", 5) == 15
            assert await client.get("n") == b"15"

        run(with_server(body))

    def test_decr_clamps_at_zero(self):
        async def body(server, client):
            await client.set("n", b"3")
            assert await client.decr("n", 10) == 0

        run(with_server(body))

    def test_arith_on_missing_returns_none(self):
        async def body(server, client):
            assert await client.incr("ghost") is None
            assert await client.decr("ghost") is None

        run(with_server(body))

    def test_arith_on_non_numeric_raises(self):
        async def body(server, client):
            await client.set("s", b"not-a-number")
            with pytest.raises(ProtocolError):
                await client.incr("s")

        run(with_server(body))

    def test_incr_wraps_at_64_bits(self):
        async def body(server, client):
            await client.set("n", str(2 ** 64 - 1).encode())
            assert await client.incr("n", 1) == 0

        run(with_server(body))


class TestTouch:
    def test_touch_extends_expiry(self):
        async def body(server, client):
            fake = {"t": 0.0}
            server._clock = lambda: fake["t"]
            await client.set("k", b"v", exptime=10)
            fake["t"] = 8.0
            assert await client.touch("k", 100)
            fake["t"] = 50.0
            assert await client.get("k") == b"v"

        run(with_server(body))

    def test_touch_missing_key(self):
        async def body(server, client):
            assert not await client.touch("ghost", 10)

        run(with_server(body))

    def test_touch_zero_clears_expiry(self):
        async def body(server, client):
            fake = {"t": 0.0}
            server._clock = lambda: fake["t"]
            await client.set("k", b"v", exptime=5)
            assert await client.touch("k", 0)
            fake["t"] = 1e9
            assert await client.get("k") == b"v"

        run(with_server(body))


class TestGetMulti:
    def test_batched_hits_and_misses(self):
        async def body(server, client):
            await client.set("a", b"1")
            await client.set("b", b"2")
            out = await client.get_multi(["a", "missing", "b"])
            assert out == {"a": b"1", "b": b"2"}

        run(with_server(body))

    def test_empty_batch(self):
        async def body(server, client):
            assert await client.get_multi([]) == {}

        run(with_server(body))

    def test_large_batch(self):
        async def body(server, client):
            for i in range(64):
                await client.set(f"k{i}", str(i).encode())
            out = await client.get_multi([f"k{i}" for i in range(64)])
            assert len(out) == 64
            assert out["k7"] == b"7"

        run(with_server(body))


class TestParsingOfNewCommands:
    def test_cas_parse(self):
        req = proto.parse_command_line(b"cas k 1 0 3 42\r\n")
        assert req.command == "cas" and req.cas == 42 and req.num_bytes == 3

    def test_cas_wrong_arity(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"cas k 1 0 3\r\n")

    def test_incr_parse(self):
        req = proto.parse_command_line(b"incr k 7\r\n")
        assert req.command == "incr" and req.delta == 7

    def test_incr_negative_delta_rejected(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"incr k -1\r\n")

    def test_touch_parse(self):
        req = proto.parse_command_line(b"touch k 60 noreply\r\n")
        assert req.command == "touch" and req.exptime == 60 and req.noreply

    def test_append_parse(self):
        req = proto.parse_command_line(b"append k 0 0 5\r\n")
        assert req.command == "append" and req.num_bytes == 5
