"""ConnectionPool: lazy dial, shared leases, broken-connection ejection."""

import asyncio
import types

import pytest

from repro.bloom.config import optimal_config
from repro.errors import (
    ClientOverloadError,
    ConfigurationError,
    DeadlineExceeded,
)
from repro.net.pool import ConnectionPool
from repro.net.server import MemcachedServer
from repro.resilience import Deadline

BLOOM = optimal_config(500)


def run(coro):
    return asyncio.run(coro)


async def with_pool(test_body, **pool_kwargs):
    server = MemcachedServer(bloom_config=BLOOM)
    await server.start()
    pool = ConnectionPool("127.0.0.1", server.port, **pool_kwargs)
    try:
        await test_body(server, pool)
    finally:
        await pool.close()
        await server.stop()


class TestLifecycle:
    def test_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConnectionPool("127.0.0.1", 1, size=0)

    def test_lazy_dial(self):
        async def body(server, pool):
            assert pool.live == 0
            assert pool.dials == 0
            async with pool.connection() as client:
                assert await client.set("k", b"v")
            assert pool.live == 1
            assert pool.dials == 1

        run(with_pool(body))

    def test_prewarm_dials_once(self):
        async def body(server, pool):
            first = await pool.prewarm()
            again = await pool.prewarm()
            assert first is again
            assert pool.dials == 1

        run(with_pool(body))

    def test_prewarm_failure_propagates_but_pool_survives(self):
        async def body():
            pool = ConnectionPool("127.0.0.1", 1)
            with pytest.raises(OSError):
                await pool.prewarm()
            assert pool.live == 0
            await pool.close()

        run(body())

    def test_closed_pool_refuses_acquire(self):
        async def body(server, pool):
            await pool.close()
            with pytest.raises(ConfigurationError):
                await pool.acquire()

        run(with_pool(body))


class TestLeases:
    def test_idle_connection_is_reused(self):
        async def body(server, pool):
            async with pool.connection() as client:
                await client.set("k", b"v")
            async with pool.connection() as again:
                assert client is again
            assert pool.dials == 1

        run(with_pool(body))

    def test_concurrent_leases_dial_up_to_size(self):
        async def body(server, pool):
            clients = [await pool.acquire() for _ in range(5)]
            # 2 sockets for 5 leases: the bound holds, leases share.
            assert pool.live == 2
            assert pool.leases == 5
            assert len({id(c) for c in clients}) == 2
            for client in clients:
                pool.release(client)
            assert pool.leases == 0

        run(with_pool(body, size=2))

    def test_least_loaded_connection_is_chosen(self):
        async def body(server, pool):
            a = await pool.acquire()
            b = await pool.acquire()
            assert a is not b
            pool.release(b)
            # a holds a lease, b is idle: next acquire must pick b.
            assert await pool.acquire() is b
            pool.release(a)
            pool.release(b)

        run(with_pool(body, size=2))

    def test_concurrent_traffic_spreads_across_sockets(self):
        async def body(server, pool):
            async def worker(i):
                async with pool.connection() as client:
                    await client.set(f"k{i}", b"v")
                    return await client.get(f"k{i}")

            results = await asyncio.gather(*(worker(i) for i in range(20)))
            assert results == [b"v"] * 20
            assert 1 <= pool.live <= 3

        run(with_pool(body, size=3))


class TestEjection:
    def test_broken_connection_ejected_on_release(self):
        async def body(server, pool):
            client = await pool.acquire()
            await client.set("k", b"v")
            client._poison()
            pool.release(client)
            assert pool.live == 0
            assert pool.ejections == 1
            # next acquire dials a replacement; data is still there
            async with pool.connection() as fresh:
                assert fresh is not client
                assert await fresh.get("k") == b"v"
            assert pool.dials == 2

        run(with_pool(body))

    def test_idle_broken_connection_swept_on_acquire(self):
        async def body(server, pool):
            client = await pool.acquire()
            pool.release(client)
            client._poison()  # breaks while idle in the pool
            fresh = await pool.acquire()
            assert fresh is not client
            assert pool.ejections == 1
            pool.release(fresh)

        run(with_pool(body))

    def test_ejection_counts_as_reconnect(self):
        async def body(server, pool):
            client = await pool.acquire()
            client._poison()
            pool.release(client)
            assert pool.reconnects == 1  # churn visible to health monitors

        run(with_pool(body))

    def test_reconnects_survive_close(self):
        async def body(server, pool):
            client = await pool.acquire()
            await client.set("k", b"v")
            client._poison()
            assert await client.get("k") == b"v"  # client-level redial
            pool.release(client)
            before = pool.reconnects
            assert before >= 1
            await pool.close()
            assert pool.reconnects == before  # monotonic across retirement

        run(with_pool(body))


class TestCloseRaces:
    def test_release_after_close_is_a_noop(self):
        async def body(server, pool):
            client = await pool.acquire()
            # close() races the outstanding lease: it retires everything
            # and the straggler release must not resurrect the connection.
            await pool.close()
            pool.release(client)
            assert pool.live == 0
            assert pool.leases == 0

        run(with_pool(body))

    def test_double_release_never_goes_negative(self):
        async def body(server, pool):
            client = await pool.acquire()
            pool.release(client)
            pool.release(client)  # buggy caller: clamp, don't corrupt
            assert pool.leases == 0
            # the pool is still fully usable afterwards
            async with pool.connection() as again:
                assert await again.set("k", b"v")

        run(with_pool(body))

    def test_released_broken_connection_not_double_ejected(self):
        async def body(server, pool):
            client = await pool.acquire()
            client._poison()
            pool.release(client)
            assert pool.ejections == 1
            pool.release(client)  # already ejected: key is gone
            assert pool.ejections == 1
            assert pool.live == 0

        run(with_pool(body))


class TestContention:
    def test_waited_and_leases_peak_track_sharing(self):
        async def body(server, pool):
            first = await pool.acquire()
            assert pool.waited == 0
            second = await pool.acquire()  # size=1: must share
            assert first is second
            assert pool.waited == 1
            assert pool.leases_peak == 2
            pool.release(first)
            pool.release(second)
            # the high-water mark survives the leases draining
            assert pool.leases == 0
            assert pool.leases_peak == 2

        run(with_pool(body, size=1))


class TestSaturationFailFast:
    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConnectionPool("127.0.0.1", 1, max_inflight_per_conn=0)

    def test_expired_deadline_fails_before_any_dial(self):
        async def body():
            pool = ConnectionPool("127.0.0.1", 1)
            with pytest.raises(DeadlineExceeded):
                await pool.acquire(Deadline(0.0))
            assert pool.dials == 0  # no socket work for a dead budget
            await pool.close()

        run(body())

    def _saturated(self, count=2, inflight=8):
        return [types.SimpleNamespace(inflight=inflight) for _ in range(count)]

    def test_full_windows_with_no_time_left_raise(self):
        pool = ConnectionPool(
            "127.0.0.1", 1, size=2, timeout=0.25, max_inflight_per_conn=8
        )
        tight = Deadline(0.1)  # cannot afford one op-timeout of queueing
        with pytest.raises(ClientOverloadError):
            pool._check_saturation(self._saturated(), tight)
        assert pool.overflow_failures == 1

    def test_roomy_deadline_queues_instead_of_failing(self):
        pool = ConnectionPool(
            "127.0.0.1", 1, size=2, timeout=0.25, max_inflight_per_conn=8
        )
        pool._check_saturation(self._saturated(), Deadline(5.0))
        assert pool.overflow_failures == 0

    def test_one_free_window_admits(self):
        pool = ConnectionPool(
            "127.0.0.1", 1, size=2, timeout=0.25, max_inflight_per_conn=8
        )
        candidates = self._saturated() + [types.SimpleNamespace(inflight=3)]
        pool._check_saturation(candidates, Deadline(0.1))
        assert pool.overflow_failures == 0

    def test_disabled_window_never_fails(self):
        pool = ConnectionPool("127.0.0.1", 1, size=2, timeout=0.25)
        pool._check_saturation(self._saturated(), Deadline(0.0))
        assert pool.overflow_failures == 0
