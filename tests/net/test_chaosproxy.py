"""Chaos integration: the live tier served through fault-injecting proxies.

Each test stands up real ``MemcachedServer`` endpoints behind
``ChaosProxy`` instances, drives ``AsyncProteusFrontend`` through a
scripted fault, and asserts the acceptance bar: every request answered
with the correct value, the degraded path accounted, no exception
escaping ``fetch``/``fetch_many``.
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import DigestBroadcastError, TransitionError
from repro.net.chaosproxy import ChaosProxy
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.resilience import FaultPlan, ResiliencePolicy

BLOOM = optimal_config(1000)
POLICY = ResiliencePolicy.aggressive(op_timeout=0.2)


def run(coro):
    return asyncio.run(coro)


def value_of(key):
    return f"db:{key}".encode()


async def database(key):
    return value_of(key)


class Stack:
    """Servers + proxies + frontend, torn down in one place."""

    def __init__(self, n=3, policy=POLICY):
        self.n = n
        self.policy = policy
        self.servers = []
        self.proxies = []
        self.frontend = None

    async def __aenter__(self):
        self.servers = [MemcachedServer(bloom_config=BLOOM) for _ in range(self.n)]
        for server in self.servers:
            await server.start()
        self.proxies = [
            ChaosProxy("127.0.0.1", server.port) for server in self.servers
        ]
        for proxy in self.proxies:
            await proxy.start()
        self.frontend = AsyncProteusFrontend(
            [("127.0.0.1", proxy.port) for proxy in self.proxies],
            BLOOM,
            database,
            resilience=self.policy,
        )
        await self.frontend.connect()
        return self

    async def __aexit__(self, *exc_info):
        await self.frontend.close()
        for proxy in self.proxies:
            await proxy.close()
        for server in self.servers:
            await server.stop()


@pytest.mark.timeout(60)
class TestKilledServer:
    def test_server_killed_mid_fetch_degrades_to_database(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"k{i}" for i in range(24)]
                await web.fetch_many(keys)  # warm while healthy
                stack.proxies[0].set_plan(FaultPlan.killed())
                for key in keys:
                    result = await web.fetch(key)
                    assert result.value == value_of(key)
                assert web.stats.degraded["probe_new"] > 0
                assert web.stats.counts["degraded_db"] > 0
                # repeated requests trip the breaker: later fetches skip
                # the dead server without paying the dial cost
                assert web.breakers[0].trips >= 1
                # heal: after the breaker's reset window, service recovers
                stack.proxies[0].set_plan(FaultPlan.none())
                await asyncio.sleep(stack.policy.breaker_reset + 0.05)
                degraded_before = web.stats.degraded_events
                for key in keys:
                    result = await web.fetch(key)
                    assert result.value == value_of(key)
                assert web.stats.degraded_events == degraded_before

        run(body())

    def test_server_killed_mid_transition_digest_hits_degrade(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"page:{i}" for i in range(32)]
                await web.fetch_many(keys)
                await web.scale_to(2, ttl=30.0)
                # the old owners' digests are armed; now kill server 0
                stack.proxies[0].set_plan(FaultPlan.killed())
                results = await web.fetch_many(keys)
                for key in keys:
                    assert results[key].value == value_of(key)
                for key in keys:
                    result = await web.fetch(key)
                    assert result.value == value_of(key)

        run(body())


@pytest.mark.timeout(60)
class TestResetStorm:
    def test_reset_storm_during_fetch_many_serves_every_key(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"k{i}" for i in range(30)]
                await web.fetch_many(keys)
                for index, proxy in enumerate(stack.proxies):
                    proxy.set_plan(FaultPlan.flaky(0.3, seed=index + 1))
                for _ in range(4):
                    results = await web.fetch_many(keys)
                    for key in keys:
                        assert results[key].value == value_of(key)
                resets = sum(proxy.resets for proxy in stack.proxies)
                assert resets > 0  # the storm actually happened
                # retries + reconnects (not only DB fallbacks) carried load
                assert web.reconnects > 0

        run(body())


@pytest.mark.timeout(60)
class TestBlackhole:
    def test_blackholed_server_times_out_and_degrades(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"k{i}" for i in range(12)]
                await web.fetch_many(keys)
                stack.proxies[1].set_plan(FaultPlan(blackhole=True))
                results = await web.fetch_many(keys)
                for key in keys:
                    assert results[key].value == value_of(key)
                assert web.stats.degraded_events > 0

        run(body())


@pytest.mark.timeout(60)
class TestScaleToBroadcastFailure:
    def test_failed_digest_broadcast_rolls_back_and_reports_servers(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"page:{i}" for i in range(16)]
                await web.fetch_many(keys)
                # server 2 is the ceding (draining) server for 3 -> 2; it
                # is the only digest the broadcast needs, so kill it.
                stack.proxies[2].set_plan(FaultPlan.killed())
                with pytest.raises(DigestBroadcastError) as excinfo:
                    await web.scale_to(2, ttl=30.0)
                error = excinfo.value
                assert isinstance(error, TransitionError)
                assert list(error.failures) == [2]
                # rolled back: no drain window armed, routing unchanged
                assert web.n_active == 3
                epochs = web._manager.routing_counts(0.0)
                assert not epochs.in_transition
                # requests still served (degraded around the dead path)
                result = await web.fetch(keys[0])
                assert result.value == value_of(keys[0])
                # heal and retry: the same call now succeeds
                stack.proxies[2].set_plan(FaultPlan.none())
                await asyncio.sleep(stack.policy.breaker_reset + 0.05)
                transition = await web.scale_to(2, ttl=30.0)
                assert transition.n_new == 2
                assert web.n_active == 2

        run(body())

    def test_delayed_digest_broadcast_still_succeeds(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"page:{i}" for i in range(8)]
                await web.fetch_many(keys)
                # 50 ms per chunk is inside the 200 ms op timeout: slower,
                # but the broadcast must complete without degrading
                stack.proxies[0].set_plan(FaultPlan.slow(0.05))
                transition = await web.scale_to(2, ttl=30.0)
                assert transition.n_new == 2
                assert transition.digests  # every old owner answered
                results = await web.fetch_many(keys)
                for key in keys:
                    assert results[key].value == value_of(key)

        run(body())


@pytest.mark.timeout(60)
class TestProxyBookkeeping:
    def test_counters_and_plan_swaps(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            proxy = await ChaosProxy("127.0.0.1", server.port).start()
            from repro.net.client import MemcachedClient

            client = await MemcachedClient("127.0.0.1", proxy.port).connect()
            await client.set("k", b"v")
            assert await client.get("k") == b"v"
            assert proxy.connections == 1
            assert proxy.plan.is_benign
            # killed: existing connection aborted, new dials refused
            proxy.set_plan(FaultPlan.killed())
            from repro.errors import TransportError

            with pytest.raises(TransportError):
                await client.get("k")
            with pytest.raises((TransportError, OSError)):
                await client.get("k")  # auto-reconnect attempt is refused
            assert proxy.rejected >= 1
            # back to benign: the same client recovers by redialing
            proxy.set_plan(FaultPlan.none())
            assert await client.get("k") == b"v"
            await client.close()
            await proxy.close()
            await server.stop()

        run(body())


@pytest.mark.timeout(60)
class TestConnectPhaseShapes:
    def test_syn_drop_times_out_and_degrades(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"s{i}" for i in range(12)]
                await web.fetch_many(keys)  # warm while healthy
                stack.proxies[0].set_plan(FaultPlan.syn_dropped())
                stack.proxies[0]._abort_live_connections()
                for key in keys:
                    result = await web.fetch(key)
                    assert result.value == value_of(key)
                # redial attempts were swallowed, not refused:
                assert stack.proxies[0].syn_dropped >= 1
                assert web.stats.degraded_events > 0

        run(body())

    def test_syn_dropped_plan_counts_as_killing(self):
        assert FaultPlan.syn_dropped().kills_server
        assert not FaultPlan.syn_dropped().is_benign

    def test_slow_accept_delays_but_serves(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            proxy = await ChaosProxy("127.0.0.1", server.port).start()
            proxy.set_plan(FaultPlan.slow_accept(0.05))
            from repro.net.client import MemcachedClient

            client = await MemcachedClient("127.0.0.1", proxy.port).connect()
            await client.set("k", b"v")
            assert await client.get("k") == b"v"
            assert proxy.slow_accepts == 1
            await client.close()
            await proxy.close()
            await server.stop()

        run(body())


@pytest.mark.timeout(60)
class TestLossyRequests:
    def test_full_loss_degrades_to_database(self):
        async def body():
            async with Stack() as stack:
                web = stack.frontend
                keys = [f"l{i}" for i in range(8)]
                await web.fetch_many(keys)
                stack.proxies[0].set_plan(
                    FaultPlan.lossy_requests(1.0, seed=1)
                )
                for key in keys:
                    result = await web.fetch(key)
                    assert result.value == value_of(key)
                assert stack.proxies[0].dropped_requests >= 1
                assert web.stats.degraded_events > 0

        run(body())

    def test_partial_loss_is_seeded_and_recoverable(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            proxy = await ChaosProxy("127.0.0.1", server.port).start()
            from repro.net.client import MemcachedClient

            client = await MemcachedClient("127.0.0.1", proxy.port).connect()
            await client.set("k", b"v")
            proxy.set_plan(FaultPlan.lossy_requests(0.5, seed=7))
            served = 0
            for _ in range(12):
                try:
                    if await asyncio.wait_for(client.get("k"), 0.3) == b"v":
                        served += 1
                except Exception:
                    # swallowed request: redial and continue
                    try:
                        await client.close()
                    except Exception:
                        pass
                    client = await MemcachedClient(
                        "127.0.0.1", proxy.port
                    ).connect()
            assert served >= 1
            assert proxy.dropped_requests >= 1
            proxy.set_plan(FaultPlan.none())
            client = await MemcachedClient("127.0.0.1", proxy.port).connect()
            assert await client.get("k") == b"v"
            await client.close()
            await proxy.close()
            await server.stop()

        run(body())
