"""Pipelined transport under fire: poisoning, no mispairing, parity.

With many commands in flight on one connection, a mid-stream fault is
worse than before: every queued command's reply is unattributable, not
just one.  These tests pin the pipelined contract:

* every queued future fails with :class:`~repro.errors.TransportError`
  (the transient class retry policies see) — never a wrong value;
* the one command whose reply was actually malformed gets
  :class:`~repro.errors.ProtocolError`;
* the connection is poisoned and the next call reconnects;
* a pooled/pipelined frontend returns results identical to the serial
  one (the regression guard for reply mispairing at the tier level).
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ProtocolError, TransportError
from repro.net.chaosproxy import ChaosProxy
from repro.net.client import MemcachedClient
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.resilience import FaultPlan, ResiliencePolicy

BLOOM = optimal_config(1000)


def run(coro):
    return asyncio.run(coro)


class ScriptedPipelineServer:
    """Accepts one connection, waits for *expect_lines* command lines,
    then writes a fixed byte script (optionally aborting after)."""

    def __init__(self, script, expect_lines, abort_after=False):
        self.script = script
        self.expect_lines = expect_lines
        self.abort_after = abort_after
        self.received = bytearray()
        self._server = None

    async def start(self):
        self._server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self._server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer):
        try:
            while self.received.count(b"\n") < self.expect_lines:
                data = await reader.read(4096)
                if not data:
                    return
                self.received += data
            writer.write(self.script)
            await writer.drain()
            if self.abort_after:
                writer.transport.abort()
            else:
                await reader.read()  # hold the connection open
        except (ConnectionError, OSError):
            pass

    async def stop(self):
        self._server.close()
        await self._server.wait_closed()


async def gather_outcomes(coros):
    return await asyncio.gather(*coros, return_exceptions=True)


class TestPipelinedReplies:
    def test_interleaved_hits_and_misses_pair_correctly(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            try:
                async with MemcachedClient("127.0.0.1", server.port) as c:
                    for i in range(0, 10, 2):
                        await c.set(f"k{i}", f"v{i}".encode())
                    results = await asyncio.gather(
                        *(c.get(f"k{i}") for i in range(10))
                    )
                    for i, result in enumerate(results):
                        expected = f"v{i}".encode() if i % 2 == 0 else None
                        assert result == expected
            finally:
                await server.stop()

        run(body())

    def test_concurrent_commands_share_one_connection(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            try:
                async with MemcachedClient("127.0.0.1", server.port) as c:
                    await asyncio.gather(
                        *(c.set(f"k{i}", b"v") for i in range(50))
                    )
                    assert server.connections == 1
                    assert c.reconnects == 0
            finally:
                await server.stop()

        run(body())

    def test_serial_mode_admits_one_in_flight(self):
        async def body():
            server = MemcachedServer(bloom_config=BLOOM)
            await server.start()
            try:
                client = MemcachedClient(
                    "127.0.0.1", server.port, pipeline=False
                )
                await client.connect()
                peak = 0

                async def probe(i):
                    nonlocal peak
                    result = await client.get(f"k{i}")
                    peak = max(peak, client.inflight)
                    return result

                await asyncio.gather(*(probe(i) for i in range(10)))
                assert peak <= 1
                await client.close()
            finally:
                await server.stop()

        run(body())


class TestMidPipelineFaults:
    def test_abort_fails_every_queued_future_transiently(self):
        async def body():
            # One good reply, then the connection dies with 4 queued.
            server = ScriptedPipelineServer(
                b"VALUE k0 0 2\r\nv0\r\nEND\r\n",
                expect_lines=5,
                abort_after=True,
            )
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            outcomes = await gather_outcomes(
                client.get(f"k{i}") for i in range(5)
            )
            assert outcomes[0] == b"v0"
            for outcome in outcomes[1:]:
                assert isinstance(outcome, TransportError)
            assert client.broken
            await server.stop()

        run(body())

    def test_desync_hits_head_only_rest_fail_transiently(self):
        async def body():
            # First reply is fine, second is garbage: the head of the
            # queue gets the protocol error, everything behind it the
            # transient class — and nothing is ever paired with the
            # garbage bytes.
            server = ScriptedPipelineServer(
                b"VALUE k0 0 2\r\nv0\r\nEND\r\nWAT 42\r\n",
                expect_lines=5,
            )
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            outcomes = await gather_outcomes(
                client.get(f"k{i}") for i in range(5)
            )
            assert outcomes[0] == b"v0"
            assert isinstance(outcomes[1], ProtocolError)
            for outcome in outcomes[2:]:
                assert isinstance(outcome, TransportError)
            assert client.broken
            await server.stop()

        run(body())

    def test_timeout_fails_every_queued_future(self):
        async def body():
            # The server answers one get and then goes silent.
            server = ScriptedPipelineServer(b"END\r\n", expect_lines=5)
            port = await server.start()
            client = await MemcachedClient(
                "127.0.0.1", port, timeout=0.1
            ).connect()
            outcomes = await gather_outcomes(
                client.get(f"k{i}") for i in range(5)
            )
            assert outcomes[0] is None
            for outcome in outcomes[1:]:
                assert isinstance(outcome, TransportError)
            assert client.broken
            await server.stop()

        run(body())

    def test_chaos_reset_mid_pipeline_then_recovery(self):
        async def body():
            real = MemcachedServer(bloom_config=BLOOM)
            await real.start()
            proxy = ChaosProxy("127.0.0.1", real.port)
            await proxy.start()
            try:
                client = await MemcachedClient(
                    "127.0.0.1", proxy.port, timeout=1.0
                ).connect()
                for i in range(8):
                    await client.set(f"k{i}", f"v{i}".encode())
                # Every response chunk now resets the connection.
                proxy.set_plan(FaultPlan.flaky(reset_probability=1.0))
                outcomes = await gather_outcomes(
                    client.get(f"k{i}") for i in range(8)
                )
                for i, outcome in enumerate(outcomes):
                    # Correct value or transient failure — never a wrong
                    # value, never a ProtocolError.
                    if not isinstance(outcome, TransportError):
                        assert outcome == f"v{i}".encode()
                assert any(
                    isinstance(outcome, TransportError)
                    for outcome in outcomes
                )
                assert client.broken
                # Heal the path: the client reconnects and pairs again.
                proxy.set_plan(FaultPlan.none())
                results = await asyncio.gather(
                    *(client.get(f"k{i}") for i in range(8))
                )
                assert results == [f"v{i}".encode() for i in range(8)]
                assert client.reconnects >= 1
                await client.close()
            finally:
                await proxy.close()
                await real.stop()

        run(body())


class TestPooledParity:
    def test_pooled_pipelined_fetch_many_matches_serial(self):
        async def body():
            keys = [f"key:{i}" for i in range(64)]

            async def database(key):
                return f"db:{key}".encode()

            async def harvest(pipeline, pool_size):
                servers = [MemcachedServer(bloom_config=BLOOM)
                           for _ in range(3)]
                for server in servers:
                    await server.start()
                frontend = AsyncProteusFrontend(
                    [("127.0.0.1", s.port) for s in servers],
                    BLOOM,
                    database,
                    resilience=ResiliencePolicy.aggressive(op_timeout=2.0),
                    pipeline=pipeline,
                    pool_size=pool_size,
                )
                try:
                    async with frontend:
                        cold = await frontend.fetch_many(keys)
                        warm = await frontend.fetch_many(keys)
                        return (
                            {k: (r.value, str(r.path))
                             for k, r in cold.items()},
                            {k: (r.value, str(r.path))
                             for k, r in warm.items()},
                        )
                finally:
                    for server in servers:
                        await server.stop()

            serial = await harvest(pipeline=False, pool_size=1)
            pooled = await harvest(pipeline=True, pool_size=4)
            assert pooled == serial
            # and the values are the authoritative ones
            for k, (value, _path) in pooled[1].items():
                assert value == f"db:{k}".encode()

        run(body())
