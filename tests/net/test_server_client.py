"""Live TCP tests: the asyncio memcached server + client pair."""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ProtocolError
from repro.net.client import MemcachedClient
from repro.net.parser import LineReply
from repro.net.server import MemcachedServer

CFG = optimal_config(2000)


def run(coro):
    return asyncio.run(coro)


async def with_server(test_body, **server_kwargs):
    server_kwargs.setdefault("bloom_config", CFG)
    server = MemcachedServer(**server_kwargs)
    await server.start()
    try:
        async with MemcachedClient("127.0.0.1", server.port) as client:
            await test_body(server, client)
    finally:
        await server.stop()


class TestBasicCommands:
    def test_set_get_delete(self):
        async def body(server, client):
            assert await client.set("k", b"v") is True
            assert await client.get("k") == b"v"
            assert await client.delete("k") is True
            assert await client.get("k") is None
            assert await client.delete("k") is False

        run(with_server(body))

    def test_binary_values_roundtrip(self):
        async def body(server, client):
            payload = bytes(range(256)) * 16
            await client.set("bin", payload)
            assert await client.get("bin") == payload

        run(with_server(body))

    def test_value_with_crlf_inside(self):
        async def body(server, client):
            payload = b"line1\r\nline2\r\n"
            await client.set("tricky", payload)
            assert await client.get("tricky") == payload

        run(with_server(body))

    def test_add_and_replace_semantics(self):
        async def body(server, client):
            assert await client.add("k", b"1") is True
            assert await client.add("k", b"2") is False
            assert await client.get("k") == b"1"
            await client.delete("k")
            # replace on absent key fails
            reply = await client.execute(
                b"replace k 0 0 1\r\nx\r\n", LineReply()
            )
            assert reply == b"NOT_STORED"

        run(with_server(body))

    def test_expiry(self):
        async def body(server, client):
            fake_now = {"t": 0.0}
            server._clock = lambda: fake_now["t"]
            await client.set("k", b"v", exptime=10)
            assert await client.get("k") == b"v"
            fake_now["t"] = 11.0
            assert await client.get("k") is None

        run(with_server(body))

    def test_stats_and_version_and_flush(self):
        async def body(server, client):
            await client.set("a", b"1")
            await client.get("a")
            await client.get("missing")
            stats = await client.stats()
            assert stats["cmd_set"] == "1"
            assert stats["get_hits"] == "1"
            assert stats["get_misses"] == "1"
            assert "proteus-repro" in await client.version()
            await client.flush_all()
            assert await client.get("a") is None

        run(with_server(body))

    def test_lru_eviction_over_tcp(self):
        async def body(server, client):
            for i in range(10):
                await client.set(f"k{i}", b"x" * 100)
            stats = await client.stats()
            assert int(stats["evictions"]) > 0
            assert int(stats["bytes"]) <= 500

        run(with_server(body, capacity_bytes=500))

    def test_malformed_command_gets_client_error(self):
        async def body(server, client):
            with pytest.raises(ProtocolError, match="CLIENT_ERROR"):
                await client.execute(b"bogus nonsense\r\n", LineReply())
            # A complete error line keeps the stream framed.
            assert not client.broken

        run(with_server(body))


class TestDigestOverTcp:
    def test_snapshot_and_fetch(self):
        async def body(server, client):
            for i in range(300):
                await client.set(f"k{i}", b"v")
            await client.snapshot_digest()
            digest = await client.fetch_digest(
                server.bloom_config.num_counters, server.bloom_config.num_hashes
            )
            assert all(digest.contains(f"k{i}") for i in range(300))

        run(with_server(body))

    def test_snapshot_is_frozen_until_next_snapshot(self):
        async def body(server, client):
            await client.set("early", b"1")
            await client.snapshot_digest()
            await client.set("late", b"1")
            digest = await client.fetch_digest(CFG.num_counters, CFG.num_hashes)
            assert digest.contains("early")
            assert not digest.contains("late")
            await client.snapshot_digest()
            digest = await client.fetch_digest(CFG.num_counters, CFG.num_hashes)
            assert digest.contains("late")

        run(with_server(body))

    def test_fetch_without_snapshot_raises(self):
        async def body(server, client):
            with pytest.raises(ProtocolError):
                await client.fetch_digest(CFG.num_counters)

        run(with_server(body))

    def test_digest_tracks_deletes_over_tcp(self):
        async def body(server, client):
            await client.set("gone", b"1")
            await client.delete("gone")
            await client.snapshot_digest()
            digest = await client.fetch_digest(CFG.num_counters, CFG.num_hashes)
            assert not digest.contains("gone")

        run(with_server(body))

    def test_reserved_keys_cannot_be_stored(self):
        async def body(server, client):
            with pytest.raises(ProtocolError, match="CLIENT_ERROR"):
                await client.execute(
                    b"set SET_BLOOM_FILTER 0 0 1\r\nx\r\n", LineReply()
                )

        run(with_server(body))


class TestConcurrency:
    def test_multiple_clients(self):
        async def body():
            server = MemcachedServer(bloom_config=CFG)
            await server.start()
            try:
                async def worker(worker_id):
                    async with MemcachedClient("127.0.0.1", server.port) as c:
                        for i in range(50):
                            await c.set(f"w{worker_id}:k{i}", b"v")
                        hits = 0
                        for i in range(50):
                            if await c.get(f"w{worker_id}:k{i}") == b"v":
                                hits += 1
                        return hits

                results = await asyncio.gather(*(worker(w) for w in range(5)))
                assert results == [50] * 5
                assert server.connections == 5
            finally:
                await server.stop()

        run(body())

    def test_client_methods_require_connection(self):
        client = MemcachedClient("127.0.0.1", 1)
        with pytest.raises(ProtocolError):
            run(client.get("x"))


class TestMalformedDataBlock:
    def test_bad_block_terminator_replies_and_closes(self):
        async def body():
            from repro.bloom.config import optimal_config

            server = MemcachedServer(bloom_config=optimal_config(500))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # 3-byte block whose terminator is not CRLF.
                writer.write(b"set k 0 0 3\r\nabcXY")
                await writer.drain()
                reply = await reader.readline()
                assert reply.startswith(b"CLIENT_ERROR")
                # The server closes the desynchronized connection.
                assert await reader.read() == b""
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            finally:
                await server.stop()

        run(body())

    def test_short_block_then_eof_is_handled(self):
        async def body():
            from repro.bloom.config import optimal_config

            server = MemcachedServer(bloom_config=optimal_config(500))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(b"set k 0 0 100\r\nshort")
                await writer.drain()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                # Server must survive the half-written request...
                async with MemcachedClient("127.0.0.1", server.port) as c:
                    assert await c.set("ok", b"1")
                    assert await c.get("ok") == b"1"
            finally:
                await server.stop()

        run(body())
