"""Tests for memcached text-protocol framing."""

import pytest

from repro.errors import ProtocolError
from repro.net import protocol as proto


class TestParseGet:
    def test_single_key(self):
        req = proto.parse_command_line(b"get foo\r\n")
        assert req.command == "get" and req.keys == ["foo"]

    def test_multi_key(self):
        req = proto.parse_command_line(b"get a b c\r\n")
        assert req.keys == ["a", "b", "c"]

    def test_gets_variant(self):
        assert proto.parse_command_line(b"gets foo\r\n").command == "gets"

    def test_missing_key_rejected(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"get\r\n")


class TestParseStorage:
    def test_set(self):
        req = proto.parse_command_line(b"set key 7 60 5\r\n")
        assert req.command == "set"
        assert req.keys == ["key"]
        assert req.flags == 7 and req.exptime == 60 and req.num_bytes == 5
        assert not req.noreply

    def test_noreply(self):
        req = proto.parse_command_line(b"set key 0 0 3 noreply\r\n")
        assert req.noreply

    def test_add_replace(self):
        assert proto.parse_command_line(b"add k 0 0 1\r\n").command == "add"
        assert proto.parse_command_line(b"replace k 0 0 1\r\n").command == "replace"

    def test_wrong_arity_rejected(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"set key 0 0\r\n")

    def test_non_numeric_rejected(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"set key x 0 5\r\n")

    def test_negative_bytes_rejected(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"set key 0 0 -1\r\n")


class TestParseOther:
    def test_delete(self):
        req = proto.parse_command_line(b"delete key\r\n")
        assert req.command == "delete" and req.keys == ["key"]

    def test_delete_noreply(self):
        assert proto.parse_command_line(b"delete key noreply\r\n").noreply

    def test_admin_commands(self):
        for cmd in (b"stats", b"version", b"quit", b"flush_all"):
            assert proto.parse_command_line(cmd + b"\r\n").command == cmd.decode()

    def test_unknown_command(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"increment key\r\n")

    def test_empty_line(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"\r\n")

    def test_non_utf8(self):
        with pytest.raises(ProtocolError):
            proto.parse_command_line(b"get \xff\xfe\r\n")


class TestValidateKey:
    def test_accepts_normal_keys(self):
        proto.validate_key("page:Alan_Turing")

    def test_rejects_whitespace(self):
        with pytest.raises(ProtocolError):
            proto.validate_key("has space")

    def test_rejects_control_chars(self):
        with pytest.raises(ProtocolError):
            proto.validate_key("has\ttab")

    def test_rejects_overlong(self):
        with pytest.raises(ProtocolError):
            proto.validate_key("x" * 251)
        proto.validate_key("x" * 250)  # boundary OK

    def test_rejects_empty(self):
        with pytest.raises(ProtocolError):
            proto.validate_key("")


class TestResponses:
    def test_value_response(self):
        assert (
            proto.value_response("k", 3, b"abc")
            == b"VALUE k 3 3\r\nabc\r\n"
        )

    def test_value_response_with_cas(self):
        assert b" 42\r\n" in proto.value_response("k", 0, b"", cas=42)

    def test_fixed_responses(self):
        assert proto.end_response() == b"END\r\n"
        assert proto.stored_response() == b"STORED\r\n"
        assert proto.deleted_response() == b"DELETED\r\n"
        assert proto.not_found_response() == b"NOT_FOUND\r\n"
        assert proto.not_stored_response() == b"NOT_STORED\r\n"

    def test_errors(self):
        assert proto.error_response() == b"ERROR\r\n"
        assert proto.error_response("boom") == b"SERVER_ERROR boom\r\n"
        assert proto.client_error_response("bad") == b"CLIENT_ERROR bad\r\n"

    def test_stats_response(self):
        payload = proto.stats_response({"cmd_get": 3})
        assert payload == b"STAT cmd_get 3\r\nEND\r\n"
        assert proto.stats_response({}) == b"END\r\n"

    def test_reserved_key_names(self):
        # Section V-A3 spelling, exactly.
        assert proto.KEY_SNAPSHOT == "SET_BLOOM_FILTER"
        assert proto.KEY_FETCH_DIGEST == "BLOOM_FILTER"
