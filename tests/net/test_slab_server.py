"""Tests for the slab-allocated TCP server backend."""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ConfigurationError
from repro.net.client import MemcachedClient
from repro.net.parser import StatsReply
from repro.net.server import MemcachedServer

CFG = optimal_config(2000)
MB = 1 << 20


def run(coro):
    return asyncio.run(coro)


async def with_slab_server(test_body, capacity=4 * MB):
    server = MemcachedServer(
        capacity_bytes=capacity, bloom_config=CFG, use_slabs=True
    )
    await server.start()
    try:
        async with MemcachedClient("127.0.0.1", server.port) as client:
            await test_body(server, client)
    finally:
        await server.stop()


class TestSlabBackend:
    def test_requires_capacity(self):
        with pytest.raises(ConfigurationError):
            MemcachedServer(use_slabs=True, bloom_config=CFG)

    def test_roundtrip(self):
        async def body(server, client):
            await client.set("k", b"v" * 300)
            assert await client.get("k") == b"v" * 300
            assert await client.delete("k")

        run(with_slab_server(body))

    async def _read_stats_slabs(self, client):
        stats = await client.execute(b"stats slabs\r\n", StatsReply())
        return {name: int(value) for name, value in stats.items()}

    def test_stats_slabs_reports_classes(self):
        async def body(server, client):
            await client.set("small", b"x" * 100)
            await client.set("big", b"y" * 10_000)
            rows = await self._read_stats_slabs(client)
            chunk_sizes = {
                int(name.split(":")[0]): value
                for name, value in rows.items() if name.endswith("chunk_size")
            }
            assert len(chunk_sizes) == 2  # two distinct classes in use
            assert any(value >= 10_000 for value in chunk_sizes.values())

        run(with_slab_server(body))

    def test_stats_slabs_empty_on_plain_backend(self):
        async def body():
            server = MemcachedServer(bloom_config=CFG)
            await server.start()
            try:
                async with MemcachedClient("127.0.0.1", server.port) as client:
                    stats = await client.execute(
                        b"stats slabs\r\n", StatsReply()
                    )
                    assert stats == {}
            finally:
                await server.stop()

        run(body())

    def test_digest_still_consistent_with_slab_store(self):
        async def body(server, client):
            for i in range(50):
                await client.set(f"k{i}", b"v" * 200)
            await client.delete("k0")
            await client.snapshot_digest()
            digest = await client.fetch_digest(CFG.num_counters, CFG.num_hashes)
            assert not digest.contains("k0")
            assert digest.contains("k1")

        run(with_slab_server(body))

    def test_per_class_eviction_over_tcp(self):
        async def body(server, client):
            # One-page budget per class: fill the small class, overflow it.
            for i in range(10):
                await client.set(f"big{i}", b"z" * 500_000)  # large class
            stats = await client.stats()
            assert int(stats["evictions"]) > 0
            # Data remains servable.
            hits = 0
            for i in range(10):
                if await client.get(f"big{i}") is not None:
                    hits += 1
            assert hits > 0

        run(with_slab_server(body, capacity=2 * MB))

    def test_incr_works_on_slab_backend(self):
        async def body(server, client):
            await client.set("n", b"41")
            assert await client.incr("n", 1) == 42

        run(with_slab_server(body))
