"""Unit tests for the sans-IO incremental protocol parsers.

Both directions are pure byte machines, so these tests drive them
byte-by-byte — the chunk boundaries a real TCP stream produces are
adversarial by construction here.
"""

import pytest

from repro.net.parser import (
    BadCommand,
    CommandParser,
    Desync,
    ErrorLine,
    LineReply,
    ReplyParser,
    STORE_TOKENS,
    StatsReply,
    ValuesReply,
    arith_token,
)


def feed_bytewise(parser, data):
    """Feed one byte at a time; collect every completed reply."""
    out = []
    for i in range(len(data)):
        out.extend(parser.feed(data[i:i + 1]))
    return out


class TestReplyParser:
    def test_line_reply_single_chunk(self):
        parser = ReplyParser()
        parser.expect(LineReply(STORE_TOKENS))
        assert parser.feed(b"STORED\r\n") == [b"STORED"]
        assert parser.pending == 0
        assert parser.buffered == 0

    def test_line_reply_byte_at_a_time(self):
        parser = ReplyParser()
        parser.expect(LineReply(STORE_TOKENS))
        assert feed_bytewise(parser, b"NOT_STORED\r\n") == [b"NOT_STORED"]

    def test_values_reply_with_crlf_inside_value(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        payload = b"a\r\nb\r\nc"
        wire = b"VALUE k 7 %d\r\n%s\r\nEND\r\n" % (len(payload), payload)
        [items] = feed_bytewise(parser, wire)
        assert len(items) == 1
        assert items[0].key == "k"
        assert items[0].flags == 7
        assert items[0].value == payload
        assert items[0].cas is None

    def test_gets_reply_carries_cas(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        [items] = parser.feed(b"VALUE k 0 1 42\r\nx\r\nEND\r\n")
        assert items[0].cas == 42

    def test_empty_values_reply(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        assert parser.feed(b"END\r\n") == [[]]

    def test_many_pipelined_replies_in_one_chunk(self):
        parser = ReplyParser()
        for _ in range(3):
            parser.expect(LineReply(STORE_TOKENS))
        parser.expect(ValuesReply())
        wire = b"STORED\r\nSTORED\r\nNOT_STORED\r\nVALUE k 0 1\r\nv\r\nEND\r\n"
        out = parser.feed(wire)
        assert out[:3] == [b"STORED", b"STORED", b"NOT_STORED"]
        assert out[3][0].value == b"v"

    def test_reply_split_at_every_boundary(self):
        wire = b"VALUE key 5 4\r\nwxyz\r\nEND\r\n"
        for split in range(1, len(wire)):
            parser = ReplyParser()
            parser.expect(ValuesReply())
            out = parser.feed(wire[:split])
            out += parser.feed(wire[split:])
            assert len(out) == 1, f"split at {split}"
            assert out[0][0].value == b"wxyz"

    def test_stats_reply(self):
        parser = ReplyParser()
        parser.expect(StatsReply())
        [stats] = feed_bytewise(
            parser, b"STAT cmd_get 4\r\nSTAT version a b c\r\nEND\r\n"
        )
        assert stats == {"cmd_get": "4", "version": "a b c"}

    def test_error_line_completes_without_desync(self):
        parser = ReplyParser()
        parser.expect(LineReply(STORE_TOKENS))
        parser.expect(LineReply(STORE_TOKENS))
        out = parser.feed(b"SERVER_ERROR oom\r\nSTORED\r\n")
        assert isinstance(out[0], ErrorLine)
        assert out[1] == b"STORED"

    def test_error_line_aborts_values_reply(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        [result] = parser.feed(b"VALUE k 0 1\r\nx\r\nSERVER_ERROR oom\r\n")
        assert isinstance(result, ErrorLine)

    def test_validator_mismatch_desyncs(self):
        parser = ReplyParser()
        parser.expect(LineReply(STORE_TOKENS))
        with pytest.raises(Desync):
            parser.feed(b"BANANA\r\n")

    def test_garbage_in_values_reply_desyncs(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        with pytest.raises(Desync):
            parser.feed(b"WAT 42\r\n")

    def test_bad_block_terminator_desyncs(self):
        parser = ReplyParser()
        parser.expect(ValuesReply())
        with pytest.raises(Desync):
            parser.feed(b"VALUE k 0 3\r\nabcXYEND\r\n")

    def test_desync_carries_replies_completed_before_the_fault(self):
        # One chunk holds a good reply *and* garbage: the good frame is
        # unambiguous and must survive on the exception.
        parser = ReplyParser()
        parser.expect(ValuesReply())
        parser.expect(ValuesReply())
        with pytest.raises(Desync) as info:
            parser.feed(b"VALUE k 0 2\r\nv0\r\nEND\r\nWAT 42\r\n")
        [items] = info.value.results
        assert items[0].value == b"v0"
        # and the parser stays dead afterwards
        with pytest.raises(Desync):
            parser.feed(b"END\r\n")

    def test_unsolicited_bytes_desync(self):
        parser = ReplyParser()
        with pytest.raises(Desync):
            parser.feed(b"STORED\r\n")

    def test_no_rescan_of_partial_line(self):
        # The scan cursor must advance even while the line is incomplete.
        parser = ReplyParser()
        parser.expect(LineReply())
        parser.feed(b"A" * 1000)
        assert parser._scan == 1000
        [line] = parser.feed(b"\r\n")
        assert line == b"A" * 1000

    def test_arith_token(self):
        assert arith_token(b"42")
        assert arith_token(b"NOT_FOUND")
        assert not arith_token(b"-1")
        assert not arith_token(b"STORED")


class TestCommandParser:
    def test_simple_get(self):
        parser = CommandParser()
        [request] = parser.feed(b"get k\r\n")
        assert request.command == "get"
        assert request.keys == ["k"]

    def test_storage_command_block_across_chunks(self):
        parser = CommandParser()
        assert parser.feed(b"set k 0 0 5\r\nab") == []
        [request] = parser.feed(b"cde\r\n")
        assert request.command == "set"
        assert request.value == b"abcde"

    def test_pipelined_burst_in_one_chunk(self):
        parser = CommandParser()
        out = parser.feed(
            b"set a 0 0 1\r\nx\r\nget a\r\ndelete a\r\n"
        )
        assert [r.command for r in out] == ["set", "get", "delete"]

    def test_malformed_line_is_nonfatal(self):
        parser = CommandParser()
        bad, request = parser.feed(b"bogus nonsense\r\nget k\r\n")
        assert isinstance(bad, BadCommand)
        assert not bad.fatal
        assert request.command == "get"

    def test_bad_block_terminator_is_fatal(self):
        parser = CommandParser()
        [bad] = parser.feed(b"set k 0 0 3\r\nabcXYget k\r\n")
        assert isinstance(bad, BadCommand)
        assert bad.fatal
        # The parser is dead: framing is unknowable from here on.
        assert parser.feed(b"get k\r\n") == []

    def test_noreply_flag_round_trips(self):
        parser = CommandParser()
        [request] = parser.feed(b"set k 0 0 1 noreply\r\nx\r\n")
        assert request.noreply
