"""Hardened MemcachedClient: poisoning, reconnects, timeouts, desync.

The memcached text protocol has no framing, so after any mid-reply
failure the stream position is unknown: the client must poison (abort)
the connection rather than risk pairing the next request with a stale
reply.  These tests script misbehaving servers byte-by-byte and pin the
poison/reconnect contract.
"""

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.errors import ProtocolError, TransportError
from repro.net.client import MemcachedClient
from repro.net.server import MemcachedServer


def run(coro):
    return asyncio.run(coro)


class ScriptedServer:
    """Replies from a fixed script, one entry per request line group.

    An entry is raw reply bytes, or ``(bytes, "close")`` to send a
    partial reply and abort mid-stream, or ``None`` to abort without
    replying at all."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.server = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._handle, "127.0.0.1", 0
        )
        return self.server.sockets[0].getsockname()[1]

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                if line.strip().startswith(b"set"):
                    await reader.readline()  # consume the data block
                if not self.replies:
                    break
                reply = self.replies.pop(0)
                if reply is None:
                    writer.transport.abort()
                    return
                if isinstance(reply, tuple):
                    writer.write(reply[0])
                    await writer.drain()
                    writer.transport.abort()
                    return
                writer.write(reply)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()


class TestPoisoning:
    def test_mid_reply_eof_poisons_and_raises_transport_error(self):
        async def body():
            # VALUE header promises 10 bytes, connection dies after 3.
            server = ScriptedServer([(b"VALUE k 0 10\r\nabc", "close")])
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            with pytest.raises(TransportError):
                await client.get("k")
            assert client.broken
            assert not client.connected
            await server.stop()

        run(body())

    def test_garbage_reply_desyncs_and_poisons(self):
        async def body():
            server = ScriptedServer([b"WAT 42\r\n"])
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            with pytest.raises(ProtocolError):
                await client.get("k")
            assert client.broken
            await server.stop()

        run(body())

    def test_server_error_reply_does_not_poison(self):
        async def body():
            # A complete SERVER_ERROR line leaves the stream in sync: the
            # client must keep the connection and serve the next call.
            server = ScriptedServer([b"SERVER_ERROR oom\r\n", b"END\r\n"])
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            with pytest.raises(ProtocolError):
                await client.get("k")
            assert not client.broken
            assert client.connected
            assert await client.get("k") is None  # same connection
            assert client.reconnects == 0
            await server.stop()

        run(body())

    def test_unexpected_set_reply_poisons(self):
        async def body():
            server = ScriptedServer([b"BANANA\r\n"])
            port = await server.start()
            client = await MemcachedClient("127.0.0.1", port).connect()
            with pytest.raises(ProtocolError):
                await client.set("k", b"v")
            assert client.broken
            await server.stop()

        run(body())


class TestReconnect:
    def test_auto_reconnect_after_poison(self):
        async def body():
            bloom = optimal_config(500)
            real = MemcachedServer(bloom_config=bloom)
            await real.start()
            client = await MemcachedClient("127.0.0.1", real.port).connect()
            assert await client.set("k", b"v")
            client._poison()  # simulate a mid-stream fault
            assert client.broken
            # next call dials a fresh connection transparently
            assert await client.get("k") == b"v"
            assert client.reconnects == 1
            assert not client.broken
            await client.close()
            await real.stop()

        run(body())

    def test_no_auto_reconnect_raises_transport_error(self):
        async def body():
            bloom = optimal_config(500)
            real = MemcachedServer(bloom_config=bloom)
            await real.start()
            client = MemcachedClient(
                "127.0.0.1", real.port, auto_reconnect=False
            )
            await client.connect()
            client._poison()
            with pytest.raises(TransportError):
                await client.get("k")
            await client.close()
            await real.stop()

        run(body())

    def test_never_dialed_client_raises_protocol_error(self):
        async def body():
            client = MemcachedClient("127.0.0.1", 1)
            with pytest.raises(ProtocolError):
                await client.get("k")

        run(body())

    def test_failed_first_dial_then_recovery(self):
        async def body():
            bloom = optimal_config(500)
            client = MemcachedClient("127.0.0.1", 1)
            with pytest.raises(OSError):
                await client.connect()
            # a later call keeps trying to dial (and keeps failing)
            with pytest.raises(OSError):
                await client.get("k")
            # point it at a live server: same object recovers
            real = MemcachedServer(bloom_config=bloom)
            await real.start()
            client.port = real.port
            assert await client.get("k") is None
            await client.close()
            await real.stop()

        run(body())


class TestTimeouts:
    def test_per_op_timeout_poisons_and_raises(self):
        async def body():
            # A server that accepts and then never answers.
            server = await asyncio.start_server(
                lambda r, w: asyncio.sleep(3600), "127.0.0.1", 0
            )
            port = server.sockets[0].getsockname()[1]
            client = await MemcachedClient(
                "127.0.0.1", port, timeout=0.05
            ).connect()
            with pytest.raises(TransportError):
                await client.get("k")
            assert client.broken
            server.close()
            await server.wait_closed()

        run(body())

    def test_connect_timeout_raises_transport_error(self, monkeypatch):
        async def body():
            async def never_connects(*args, **kwargs):
                await asyncio.sleep(3600)

            loop = asyncio.get_running_loop()
            monkeypatch.setattr(
                type(loop),
                "create_connection",
                lambda self, *args, **kwargs: never_connects(),
            )
            client = MemcachedClient("127.0.0.1", 9, timeout=0.05)
            with pytest.raises(TransportError):
                await client.connect()

        run(body())
