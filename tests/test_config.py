"""Tests for the shared cluster configuration document."""

import asyncio

import pytest

from repro.config import CONFIG_VERSION, ClusterConfig, DigestGeometry
from repro.core.replication import ReplicatedProteusRouter
from repro.core.router import ProteusRouter
from repro.errors import ConfigurationError

ENDPOINTS = [("cache-0", 11211), ("cache-1", 11211), ("cache-2", 11212)]
GEOMETRY = DigestGeometry(num_counters=4096, counter_bits=4, num_hashes=4)


def make(**overrides):
    kwargs = dict(endpoints=list(ENDPOINTS), digest=GEOMETRY)
    kwargs.update(overrides)
    return ClusterConfig(**kwargs)


class TestValidation:
    def test_happy_path(self):
        cfg = make()
        assert cfg.num_servers == 3
        assert cfg.version == CONFIG_VERSION

    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            make(endpoints=[])

    def test_rejects_bad_ports_and_hosts(self):
        with pytest.raises(ConfigurationError):
            make(endpoints=[("h", 0)])
        with pytest.raises(ConfigurationError):
            make(endpoints=[("h", 70000)])
        with pytest.raises(ConfigurationError):
            make(endpoints=[("", 11211)])

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            make(ttl_seconds=0.0)
        with pytest.raises(ConfigurationError):
            make(replicas=0)
        with pytest.raises(ConfigurationError):
            make(ring_size=1)
        with pytest.raises(ConfigurationError):
            make(version=99)

    def test_digest_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            DigestGeometry(0, 4, 4)


class TestSerialization:
    def test_json_roundtrip(self):
        cfg = make(ttl_seconds=45.0, replicas=2, name="prod-eu")
        clone = ClusterConfig.from_json(cfg.to_json())
        assert clone == cfg

    def test_file_roundtrip(self, tmp_path):
        cfg = make()
        path = tmp_path / "cluster.json"
        cfg.save(path)
        assert ClusterConfig.load(path) == cfg

    def test_json_is_stable(self):
        cfg = make()
        assert cfg.to_json() == cfg.to_json()
        assert cfg.to_json().endswith("\n")

    def test_malformed_json_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_json("{not json")
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_json("{}")

    def test_version_check_on_load(self):
        text = make().to_json().replace('"version": 1', '"version": 2')
        with pytest.raises(ConfigurationError):
            ClusterConfig.from_json(text)


class TestBuilders:
    def test_for_fleet_sizes_digest(self):
        cfg = ClusterConfig.for_fleet(ENDPOINTS, expected_keys_per_server=10_000)
        assert cfg.digest.counter_bits == 3  # the Eq. 10 optimum at 1e4 keys

    def test_build_router_unreplicated(self):
        router = make(replicas=1).build_router()
        assert isinstance(router, ProteusRouter)
        assert router.num_servers == 3

    def test_build_router_replicated(self):
        router = make(replicas=2).build_router()
        assert isinstance(router, ReplicatedProteusRouter)
        assert router.replicas == 2

    def test_two_loads_route_identically(self, tmp_path):
        # The consistency objective, through the config round trip.
        cfg = make()
        path = tmp_path / "c.json"
        cfg.save(path)
        a = ClusterConfig.load(path).build_router()
        b = ClusterConfig.load(path).build_router()
        for i in range(50):
            assert a.route(f"k{i}", 2) == b.route(f"k{i}", 2)

    def test_build_frontend_end_to_end(self, tmp_path):
        # Full circle: config file -> frontend -> live servers.
        from repro.net.server import MemcachedServer

        async def body():
            servers = [
                MemcachedServer(bloom_config=GEOMETRY.to_bloom_config())
                for _ in range(2)
            ]
            endpoints = []
            for server in servers:
                port = await server.start()
                endpoints.append(("127.0.0.1", port))
            cfg = ClusterConfig(endpoints=endpoints, digest=GEOMETRY)
            path = tmp_path / "live.json"
            cfg.save(path)

            async def db(key):
                return b"from-db"

            frontend = ClusterConfig.load(path).build_frontend(db)
            async with frontend as web:
                result = await web.fetch("k")
                assert result.value == b"from-db" and result.path == "miss_db"
                result = await web.fetch("k")
                assert result.path == "hit_new"
            for server in servers:
                await server.stop()

        asyncio.run(body())


class TestTTLPolicyKnobs:
    def test_defaults_to_the_paper_fixed_window(self):
        from repro.provisioning.ttl import FixedTTLPolicy

        cfg = make()
        assert cfg.ttl_policy == "fixed"
        policy = cfg.build_ttl_policy()
        assert isinstance(policy, FixedTTLPolicy)
        assert policy.ttl_for() == cfg.ttl_seconds

    def test_adaptive_policy_carries_the_knobs(self):
        from repro.provisioning.ttl import AdaptiveTTLPolicy

        cfg = make(ttl_policy="adaptive", min_ttl_seconds=10.0,
                   max_ttl_seconds=90.0, ttl_target_residual=0.1)
        policy = cfg.build_ttl_policy()
        assert isinstance(policy, AdaptiveTTLPolicy)
        assert policy.min_ttl == 10.0
        assert policy.max_ttl == 90.0
        assert policy.target_residual == 0.1
        assert policy.ttl_for() == cfg.ttl_seconds  # inert until evidence

    def test_roundtrips_through_json(self):
        cfg = make(ttl_policy="adaptive", min_ttl_seconds=10.0)
        again = ClusterConfig.from_json(cfg.to_json())
        assert again.ttl_policy == "adaptive"
        assert again.min_ttl_seconds == 10.0

    def test_rejects_bad_ttl_knobs(self):
        with pytest.raises(ConfigurationError):
            make(ttl_policy="random")
        with pytest.raises(ConfigurationError):
            make(min_ttl_seconds=0.0)
        with pytest.raises(ConfigurationError):
            make(min_ttl_seconds=50.0, max_ttl_seconds=10.0)
        with pytest.raises(ConfigurationError):
            make(ttl_target_residual=1.5)


class TestOverloadArmorKnobs:
    def test_defaults_disable_everything(self):
        cfg = make()
        assert cfg.retry_budget_ratio == 0.0
        assert cfg.limiter_window == 0
        assert cfg.admission_window == 0
        assert cfg.max_inflight_per_conn == 0
        assert cfg.build_resilience() is None
        assert cfg.build_admission() is None

    def test_rejects_negative_knobs(self):
        with pytest.raises(ConfigurationError):
            make(retry_budget_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            make(limiter_window=-1)
        with pytest.raises(ConfigurationError):
            make(admission_window=-1)
        with pytest.raises(ConfigurationError):
            make(max_inflight_per_conn=-1)

    def test_roundtrips_through_json(self):
        cfg = make(
            retry_budget_ratio=0.2,
            limiter_window=32,
            admission_window=16,
            max_inflight_per_conn=64,
        )
        again = ClusterConfig.from_json(cfg.to_json())
        assert again == cfg
        assert again.retry_budget_ratio == 0.2
        assert again.limiter_window == 32
        assert again.admission_window == 16
        assert again.max_inflight_per_conn == 64

    def test_build_resilience_arms_the_policy(self):
        cfg = make(retry_budget_ratio=0.2, limiter_window=32)
        policy = cfg.build_resilience()
        assert policy.retry_budget_ratio == 0.2
        assert policy.limiter_window == 32
        assert policy.new_retry_budget() is not None
        assert policy.new_limiter() is not None

    def test_build_admission_sizes_the_window(self):
        from repro.resilience import ConcurrencyAdmission

        admission = make(admission_window=16).build_admission()
        assert isinstance(admission, ConcurrencyAdmission)
        assert admission.limiter.limit == 16.0

    def test_build_frontend_wires_the_armor(self):
        cfg = make(
            retry_budget_ratio=0.2,
            limiter_window=32,
            admission_window=16,
            max_inflight_per_conn=64,
        )

        async def db(key):
            return b"v"

        web = cfg.build_frontend(db)
        assert web.retry_budget is not None
        assert all(lim is not None for lim in web.limiters)
        assert web.admission is not None
        assert web.max_inflight_per_conn == 64

    def test_build_frontend_default_has_no_armor(self):
        async def db(key):
            return b"v"

        web = make().build_frontend(db)
        assert web.retry_budget is None
        assert web.limiters == [None] * 3
        assert web.admission is None
        assert web.max_inflight_per_conn is None
