"""Shared fixtures for the proteus-repro test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.router import ProteusRouter
from repro.provisioning.policies import ProvisioningSchedule
from repro.workload.trace import TraceRecord


@pytest.fixture
def rng() -> random.Random:
    """A deterministic RNG for sampling in tests."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def proteus6() -> ProteusRouter:
    """A small Proteus router (shared because placement is deterministic)."""
    return ProteusRouter(6, ring_size=2 ** 20)


@pytest.fixture
def tiny_schedule() -> ProvisioningSchedule:
    """A 4-slot schedule with one scale-down and one scale-up."""
    return ProvisioningSchedule(10.0, [3, 2, 2, 3])


@pytest.fixture
def small_trace() -> list:
    """A deterministic 400-record trace over 40 seconds and 60 keys."""
    rng = random.Random(7)
    records = []
    for i in range(400):
        when = i * 0.1
        key = f"page:{rng.randrange(60)}"
        records.append(TraceRecord(when, key))
    return records


def make_keys(count: int, prefix: str = "key", seed: int = 0) -> list:
    """Deterministic distinct keys for digest/routing tests."""
    rng = random.Random(seed)
    return [f"{prefix}:{rng.getrandbits(48):012x}:{i}" for i in range(count)]
