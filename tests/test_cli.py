"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlace:
    def test_prints_placement_and_bound(self, capsys):
        assert main(["place", "5", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "vnodes=11" in out
        assert "Theorem 1 bound 11" in out
        assert "verified exactly" in out

    def test_shares_sum_to_one(self, capsys):
        main(["place", "4"])
        out = capsys.readouterr().out
        shares = [
            float(line.split("share=")[1])
            for line in out.splitlines() if "share=" in line
        ]
        assert sum(shares) == pytest.approx(1.0, abs=1e-4)

    def test_bad_input_exits_nonzero(self, capsys):
        assert main(["place", "0"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRoute:
    def test_routes_keys(self, capsys):
        assert main(["route", "a", "b", "--servers", "6", "--active", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            key, server = line.split("\t")
            assert int(server) < 3

    def test_scenarios_differ(self, capsys):
        main(["route", "k", "--servers", "8", "--active", "8",
              "--scenario", "naive"])
        naive = capsys.readouterr().out
        main(["route", "k", "--servers", "8", "--active", "8",
              "--scenario", "proteus"])
        proteus = capsys.readouterr().out
        assert naive.startswith("k\t") and proteus.startswith("k\t")

    def test_replicas(self, capsys):
        assert main(["route", "k", "--servers", "6", "--active", "4",
                     "--replicas", "3"]) == 0
        owners = capsys.readouterr().out.strip().split("\t")[1].split(",")
        assert 1 <= len(owners) <= 3
        assert all(int(o) < 4 for o in owners)

    def test_replicas_require_proteus(self, capsys):
        assert main(["route", "k", "--servers", "4", "--active", "2",
                     "--replicas", "2", "--scenario", "naive"]) == 2

    def test_out_of_range_active_fails(self, capsys):
        assert main(["route", "k", "--servers", "4", "--active", "9"]) == 1


class TestBloomConfig:
    def test_paper_example(self, capsys):
        assert main(["bloom-config", "--kappa", "10000"]) == 0
        out = capsys.readouterr().out
        assert "counters (l)    = 379649" in out
        assert "counter bits(b) = 3" in out

    def test_invalid_bounds(self, capsys):
        assert main(["bloom-config", "--kappa", "100", "--pp", "2.0"]) == 1


class TestTraceTools:
    def test_gen_then_loadbalance(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        assert main(["trace-gen", "--out", str(out), "--duration", "40",
                     "--rate", "50", "--pages", "500", "--seed", "3"]) == 0
        assert out.exists()
        capsys.readouterr()
        assert main(["loadbalance", "--trace", str(out), "--servers", "4",
                     "--schedule", "4,3", "--slot-seconds", "20"]) == 0
        text = capsys.readouterr().out
        assert "slot   0" in text and "mean=" in text

    def test_convert(self, tmp_path, capsys):
        src = tmp_path / "wb.txt"
        src.write_text(
            "1 100.0 http://en.wikipedia.org/wiki/A -\n"
            "2 101.0 http://de.wikipedia.org/wiki/B -\n"
            "3 102.0 http://en.wikipedia.org/wiki/C -\n"
        )
        out = tmp_path / "out.csv"
        assert main(["trace-convert", str(src), "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "kept 2/3" in text
        from repro.workload.trace import load_trace

        assert [r.key for r in load_trace(out)] == ["page:A", "page:C"]

    def test_missing_file(self, capsys):
        assert main(["trace-convert", "/nonexistent", "--out", "/tmp/x"]) == 1

    def test_bad_schedule_string_rejected(self, tmp_path, capsys):
        out = tmp_path / "t.csv"
        main(["trace-gen", "--out", str(out), "--duration", "10",
              "--rate", "10", "--pages", "10"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["loadbalance", "--trace", str(out), "--servers", "4",
                  "--schedule", "4,x", "--slot-seconds", "5"])


class TestConfigInit:
    def test_writes_loadable_config(self, tmp_path, capsys):
        out = tmp_path / "cluster.json"
        assert main(["config-init", "--out", str(out),
                     "--endpoints", "a:1,b:2,c:3",
                     "--keys-per-server", "10000", "--replicas", "2"]) == 0
        assert "3 servers" in capsys.readouterr().out
        from repro.config import ClusterConfig

        cfg = ClusterConfig.load(out)
        assert cfg.num_servers == 3
        assert cfg.replicas == 2
        assert cfg.digest.counter_bits == 3

    def test_bad_endpoint_rejected(self, tmp_path, capsys):
        assert main(["config-init", "--out", str(tmp_path / "x.json"),
                     "--endpoints", "no-port"]) == 2


class TestSimulate:
    def test_tiny_simulation(self, capsys):
        assert main([
            "simulate", "--scenarios", "static,proteus",
            "--servers", "3", "--schedule", "3,2,3",
            "--slot-seconds", "20", "--users-per-server", "5",
            "--ttl", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Static" in out and "Proteus" in out
        assert "kWh" in out

    def test_unknown_scenario(self, capsys):
        assert main(["simulate", "--scenarios", "warp"]) == 2


class TestAutopilot:
    def test_open_loop_run(self, capsys):
        assert main(["autopilot", "--users", "30,24,18,24",
                     "--slot-seconds", "20", "--servers", "6",
                     "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "open_loop: 4 slots" in out
        assert "availability=1.0000" in out

    def test_closed_loop_with_a_kill(self, capsys):
        assert main(["autopilot", "--users", "30,24,18,18,24,30",
                     "--slot-seconds", "20", "--servers", "6",
                     "--health-feedback", "--adaptive-ttl",
                     "--kill", "45:1:110", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "closed_loop: 6 slots" in out
        assert "1 scripted fault(s)" in out
        assert "emergency scale-ups=" in out

    def test_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["autopilot", "--kill", "oops"])

    def test_fault_on_unknown_server_errors(self, capsys):
        assert main(["autopilot", "--users", "10,10",
                     "--kill", "5:99"]) == 1
        assert "error:" in capsys.readouterr().err


class TestConfigInitTTLPolicy:
    def test_adaptive_policy_round_trips(self, tmp_path, capsys):
        out = tmp_path / "cluster.json"
        assert main(["config-init", "--out", str(out),
                     "--endpoints", "a:1,b:2",
                     "--ttl-policy", "adaptive"]) == 0
        assert "(adaptive)" in capsys.readouterr().out
        from repro.config import ClusterConfig

        assert ClusterConfig.load(out).ttl_policy == "adaptive"
