"""Hypothesis stateful test: KeyValueStore vs a reference model.

Drives the bounded store with random interleavings of set/get/delete/
expiry/time advances and checks it against a plain-dict model with the same
TTL semantics.  Eviction makes exact value-equality impossible (the store
may drop keys the model keeps), so the invariants are one-sided plus
accounting identities:

* a store hit always returns the model's value (no stale/corrupt reads);
* the store never exceeds its capacity;
* stats.items == len(store) and bytes match the item sizes;
* the digest (driven by hooks) matches the store's key set exactly.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.bloom.counting import CountingBloomFilter
from repro.cache.store import KeyValueStore

KEYS = [f"key:{i}" for i in range(12)]
CAPACITY = 4096 * 6
ITEM = 4096


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = KeyValueStore(capacity_bytes=CAPACITY)
        self.digest = CountingBloomFilter(8192, counter_bits=8, num_hashes=4)
        self.store.link_hooks.append(lambda item: self.digest.add(item.key))
        self.store.unlink_hooks.append(
            lambda item, reason: self.digest.remove(item.key)
        )
        self.model = {}   # key -> (value, expires_at or None)
        self.now = 0.0

    def _model_alive(self, key):
        entry = self.model.get(key)
        if entry is None:
            return None
        value, expires = entry
        if expires is not None and self.now >= expires:
            return None
        return value

    @rule(key=st.sampled_from(KEYS), value=st.integers(), ttl=st.one_of(
        st.none(), st.floats(min_value=1.0, max_value=20.0)))
    def do_set(self, key, value, ttl):
        self.store.set(key, value, now=self.now, size=ITEM, ttl=ttl)
        self.model[key] = (
            value, None if ttl is None else self.now + ttl
        )

    @rule(key=st.sampled_from(KEYS))
    def do_get(self, key):
        got = self.store.get(key, now=self.now)
        expected = self._model_alive(key)
        if got is not None:
            # No stale reads: a hit must match the model exactly.
            assert expected is not None
            assert got == expected
        # A store miss is legal (eviction) — but then drop the model entry
        # too, because the store just lazily expired or never had it.
        elif key in self.model:
            del self.model[key]

    @rule(key=st.sampled_from(KEYS))
    def do_delete(self, key):
        self.store.delete(key, now=self.now)
        self.model.pop(key, None)

    @rule(delta=st.floats(min_value=0.1, max_value=30.0))
    def advance_time(self, delta):
        self.now += delta

    @invariant()
    def capacity_respected(self):
        assert self.store.used_bytes <= CAPACITY

    @invariant()
    def stats_match_contents(self):
        assert self.store.stats.items == len(self.store)
        assert self.store.stats.bytes_stored == self.store.used_bytes

    @invariant()
    def digest_matches_store(self):
        live = set(self.store.keys())
        assert self.digest.count == len(live)
        for key in live:
            assert key in self.digest

    @invariant()
    def store_is_subset_of_model(self):
        for key in self.store.keys():
            item = self.store.peek(key)
            if item.expired(self.now):
                continue  # lazily expired on next touch
            assert self._model_alive(key) is not None


StoreMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestStoreMachine = StoreMachine.TestCase
