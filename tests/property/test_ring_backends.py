"""Backend-contract property suite — every RingBackend honors one contract.

Parametrized over ``proteus`` / ``multiprobe`` / ``power`` (plus the
fast-construction proteus variant), these properties pin what *any*
placement strategy must guarantee before the routing stack will accept it:

* every owner is in the active set ``[0, num_active)``, for every prefix;
* decisions are deterministic across processes — no ``PYTHONHASHSEED``
  or other per-process state leaks into routing (independent web servers
  must agree, paper Section I objective 3);
* the batched ``owners_many`` equals the scalar ``owner`` loop exactly;
* a ±1-server resize remaps a bounded fraction of positions — near the
  Section II lower bound ``1/max(n, n')``, never a Naive-style reshuffle;
* ceding metadata is sound: every position whose owner changes was owned
  by a *ceding* server under the old epoch (the digest-broadcast set
  really covers all movers);
* the ``proteus`` backend is bit-identical to the raw
  ``HashRing.compiled_for`` fast path the rest of the repo pins.
"""

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import remap_fraction
from repro.core.ring import (
    BACKEND_NAMES,
    MultiProbeBackend,
    PowerBackend,
    ProteusBackend,
    RingBackend,
    make_backend,
)

RING_SIZE = 2 ** 20  # small ring keeps exact proteus placement instant

BACKEND_PARAMS = ["proteus", "proteus-fast", "multiprobe", "power"]


def build_backend(name: str, num_servers: int) -> RingBackend:
    if name == "proteus-fast":
        return ProteusBackend(num_servers, RING_SIZE, fast=True)
    return make_backend(name, num_servers, ring_size=RING_SIZE)


def positions_for(seed: int, count: int = 512) -> np.ndarray:
    rng = np.random.RandomState(seed)
    return rng.randint(0, RING_SIZE, size=count).astype(np.int64)


@pytest.mark.parametrize("name", BACKEND_PARAMS)
class TestBackendContract:
    @settings(max_examples=20, deadline=None)
    @given(num_servers=st.integers(2, 24), seed=st.integers(0, 2 ** 16))
    def test_full_coverage_of_active_set(self, name, num_servers, seed):
        backend = build_backend(name, num_servers)
        positions = positions_for(seed)
        for num_active in {1, 2, num_servers // 2 or 1, num_servers}:
            owners = backend.owners_many(positions, num_active)
            assert owners.min() >= 0
            assert owners.max() < num_active

    @settings(max_examples=20, deadline=None)
    @given(num_servers=st.integers(2, 16), seed=st.integers(0, 2 ** 16))
    def test_batch_matches_scalar(self, name, num_servers, seed):
        backend = build_backend(name, num_servers)
        positions = positions_for(seed, count=128)
        for num_active in {1, num_servers - 1, num_servers}:
            batch = backend.owners_many(positions, num_active)
            scalar = [backend.owner(int(p), num_active) for p in positions]
            assert batch.tolist() == scalar

    @settings(max_examples=10, deadline=None)
    @given(num_servers=st.integers(3, 24), seed=st.integers(0, 2 ** 16))
    def test_bounded_remap_on_single_step_resize(self, name, num_servers, seed):
        backend = build_backend(name, num_servers)
        positions = positions_for(seed, count=4000)
        n_new = num_servers - 1
        old = backend.owners_many(positions, num_servers)
        new = backend.owners_many(positions, n_new)
        # remap_fraction(old, new) is symmetric, so this simultaneously
        # measures the n-1 -> n scale-up.
        measured = remap_fraction(old, new)
        expected = backend.expected_remap_fraction(num_servers, n_new)
        if expected is None:
            # The backend declares this step unbounded (power CH crossing
            # a power-of-two band reshuffles); still never a full remap.
            assert measured <= 0.75
        else:
            # proteus is exact; the O(1) schemes are near-minimal.  3x the
            # bound plus sampling slack rejects any Naive-style reshuffle
            # (which remaps ~1 - 1/n) while tolerating statistical
            # placement.
            assert measured <= 3.0 * expected + 0.05

    @settings(max_examples=10, deadline=None)
    @given(num_servers=st.integers(3, 20), seed=st.integers(0, 2 ** 16))
    def test_ceding_servers_cover_all_movers(self, name, num_servers, seed):
        backend = build_backend(name, num_servers)
        positions = positions_for(seed, count=2000)
        for n_new in (num_servers - 1, num_servers - 2 or 1):
            old = backend.owners_many(positions, num_servers)
            new = backend.owners_many(positions, n_new)
            ceding = set(backend.ceding_servers(num_servers, n_new))
            movers = old[old != new]
            assert set(movers.tolist()) <= ceding

    def test_deterministic_across_processes(self, name):
        """Re-derive owners in a fresh interpreter: equality means no
        per-process state (hash randomization, id()s) leaks into routing."""
        backend = build_backend(name, 12)
        positions = positions_for(99, count=64)
        here = backend.owners_many(positions, 7).tolist()
        script = (
            "import numpy as np\n"
            "from tests.property.test_ring_backends import build_backend\n"
            f"backend = build_backend({name!r}, 12)\n"
            "rng = np.random.RandomState(99)\n"
            f"positions = rng.randint(0, {RING_SIZE}, size=64).astype(np.int64)\n"
            "print(backend.owners_many(positions, 7).tolist())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert eval(out.stdout.strip()) == here


class TestExpectedRemapMetadata:
    @pytest.mark.parametrize("name", BACKEND_PARAMS)
    def test_in_band_expected_remap_is_the_lower_bound(self, name):
        backend = build_backend(name, 12)
        # 12 -> 9 stays inside the [8, 16) power-of-two band, so every
        # backend (power included) predicts |delta| / max.
        assert backend.expected_remap_fraction(12, 9) == pytest.approx(3 / 12)
        assert backend.expected_remap_fraction(9, 12) == pytest.approx(3 / 12)

    def test_power_band_crossing_is_unbounded(self):
        backend = PowerBackend(12, RING_SIZE)
        # 9 -> 7 crosses the 8 boundary: power CH reshuffles, so it must
        # report None and cede every old owner.
        assert backend.expected_remap_fraction(9, 7) is None
        assert backend.ceding_servers(9, 7) == list(range(9))

    def test_proteus_empirical_remap_is_minimal(self):
        backend = ProteusBackend(16, RING_SIZE)
        positions = positions_for(5, count=20000)
        old = backend.owners_many(positions, 16)
        new = backend.owners_many(positions, 12)
        measured = remap_fraction(old, new)
        assert measured == pytest.approx(4 / 16, abs=0.02)


class TestProteusBitIdentity:
    """The proteus backend IS the existing fast path, not a reimplementation."""

    @settings(max_examples=10, deadline=None)
    @given(num_servers=st.integers(2, 20), seed=st.integers(0, 2 ** 16))
    def test_backend_equals_ring_compiled_for(self, num_servers, seed):
        backend = ProteusBackend(num_servers, RING_SIZE)
        positions = positions_for(seed, count=256)
        for num_active in range(1, num_servers + 1):
            table = backend.ring.compiled_for(num_active)
            expected = [table.lookup(int(p)) for p in positions]
            assert backend.owners_many(positions, num_active).tolist() == expected

    @settings(max_examples=10, deadline=None)
    @given(num_servers=st.integers(2, 24), seed=st.integers(0, 2 ** 16))
    def test_fast_construction_matches_exact(self, num_servers, seed):
        exact = ProteusBackend(num_servers, RING_SIZE)
        fast = ProteusBackend(num_servers, RING_SIZE, fast=True)
        positions = positions_for(seed, count=512)
        for num_active in {1, num_servers // 2 or 1, num_servers}:
            assert (
                exact.owners_many(positions, num_active).tolist()
                == fast.owners_many(positions, num_active).tolist()
            )


def test_backend_names_registry():
    assert BACKEND_NAMES == ("proteus", "multiprobe", "power")
    for name in BACKEND_NAMES:
        backend = make_backend(name, 8, ring_size=RING_SIZE)
        assert backend.num_servers == 8
        assert backend.ring_size == RING_SIZE


def test_table_memory_ordering():
    """The headline memory tradeoff: proteus O(N^2) >> multiprobe O(N) >
    power O(1)."""
    proteus = ProteusBackend(64, RING_SIZE)
    multiprobe = MultiProbeBackend(64, RING_SIZE)
    power = PowerBackend(64, RING_SIZE)
    assert proteus.table_bytes(64) > multiprobe.table_bytes(64)
    assert multiprobe.table_bytes(64) > power.table_bytes(64)
    assert power.table_bytes(64) == 0
