"""Property-based tests for the adaptive drain-window policy.

Two guarantees matter operationally whatever the observed decay looks
like: every window the policy emits is inside the configured clamps, and
the sizing is monotone in the observed half-life (slower decay never gets
a shorter window).  The estimator carries its own invariant: a half-life
it returns always lies inside the observed sample span.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.provisioning.ttl import AdaptiveTTLPolicy, estimate_half_life

half_lives = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
bounds = st.tuples(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=0.0, max_value=500.0),
).map(lambda pair: (pair[0], pair[0] + pair[1]))
residuals = st.floats(min_value=1e-6, max_value=0.999)


@given(
    observed=st.lists(half_lives, min_size=0, max_size=12),
    clamp=bounds,
    residual=residuals,
)
@settings(max_examples=120, deadline=None)
def test_window_always_inside_the_clamps(observed, clamp, residual):
    min_ttl, max_ttl = clamp
    policy = AdaptiveTTLPolicy(
        default_ttl=60.0, min_ttl=min_ttl, max_ttl=max_ttl,
        target_residual=residual,
    )
    for half_life in observed:
        policy.record_half_life(half_life)
    ttl = policy.ttl_for()
    assert min_ttl <= ttl <= max_ttl
    if not observed:
        # inert until evidence arrives: the (clamped) configured default.
        assert ttl == min(max_ttl, max(min_ttl, 60.0))


@given(
    low=half_lives,
    high=half_lives,
    clamp=bounds,
    residual=residuals,
)
@settings(max_examples=120, deadline=None)
def test_window_is_monotone_in_the_half_life(low, high, clamp, residual):
    if low > high:
        low, high = high, low
    min_ttl, max_ttl = clamp
    slow = AdaptiveTTLPolicy(min_ttl=min_ttl, max_ttl=max_ttl,
                             target_residual=residual)
    fast = AdaptiveTTLPolicy(min_ttl=min_ttl, max_ttl=max_ttl,
                             target_residual=residual)
    fast.record_half_life(low)
    slow.record_half_life(high)
    assert fast.ttl_for() <= slow.ttl_for()


@given(
    counts=st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=2, max_size=30,
    ),
    interval=st.floats(min_value=0.1, max_value=60.0),
)
@settings(max_examples=120, deadline=None)
def test_estimate_stays_inside_the_sample_span(counts, interval):
    samples = [((i + 1) * interval, c) for i, c in enumerate(counts)]
    estimate = estimate_half_life(samples)
    if estimate is not None:
        assert 0.0 < estimate <= samples[-1][0]
