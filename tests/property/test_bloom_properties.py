"""Property-based tests for the Bloom filter family."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import (
    counter_bits_enumerated,
    false_negative_bound,
    false_positive_rate,
    minimal_counters,
)
from repro.bloom.counting import CountingBloomFilter

keys = st.text(min_size=1, max_size=40)
key_sets = st.sets(keys, min_size=0, max_size=60)


@given(inserted=key_sets)
@settings(max_examples=60, deadline=None)
def test_plain_bloom_never_false_negative(inserted):
    bf = BloomFilter(4096, num_hashes=4)
    bf.update(inserted)
    assert all(k in bf for k in inserted)


@given(inserted=key_sets, removed_count=st.integers(min_value=0, max_value=60))
@settings(max_examples=60, deadline=None)
def test_counting_bloom_no_false_negative_without_overflow(
    inserted, removed_count
):
    # With 8-bit counters and <= 60 keys over 8192 counters, counters cannot
    # saturate, so the survivors must all still be present.
    cbf = CountingBloomFilter(8192, counter_bits=8, num_hashes=4)
    ordered = sorted(inserted)
    cbf.update(ordered)
    removed = ordered[:removed_count]
    for key in removed:
        cbf.remove(key)
    assert cbf.overflow_events == 0
    for key in ordered[removed_count:]:
        assert key in cbf


@given(inserted=key_sets)
@settings(max_examples=40, deadline=None)
def test_snapshot_agrees_with_counting_filter(inserted):
    cbf = CountingBloomFilter(4096, counter_bits=4, num_hashes=4)
    cbf.update(sorted(inserted))
    snapshot = cbf.snapshot()
    # Identical probe family: membership answers must match exactly.
    probes = sorted(inserted) + [f"probe-{i}" for i in range(30)]
    for key in probes:
        assert (key in cbf) == (key in snapshot)


@given(inserted=key_sets)
@settings(max_examples=40, deadline=None)
def test_insert_remove_all_returns_to_empty(inserted):
    cbf = CountingBloomFilter(8192, counter_bits=8, num_hashes=4)
    ordered = sorted(inserted)
    cbf.update(ordered)
    for key in ordered:
        cbf.remove(key)
    assert cbf.count == 0
    assert cbf.max_counter() == 0


@given(
    kappa=st.integers(min_value=10, max_value=100_000),
    h=st.integers(min_value=1, max_value=8),
    pp_exp=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_minimal_counters_always_meets_the_fp_bound(kappa, h, pp_exp):
    pp = 10.0 ** -pp_exp
    l = minimal_counters(kappa, h, pp)
    assert false_positive_rate(l, kappa, h) <= pp * (1 + 1e-9)


@given(
    kappa=st.integers(min_value=10, max_value=100_000),
    h=st.integers(min_value=1, max_value=8),
    pn_exp=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_enumerated_counter_bits_meet_the_fn_bound(kappa, h, pn_exp):
    pn = 10.0 ** -pn_exp
    l = minimal_counters(kappa, h, 1e-3)
    b = counter_bits_enumerated(l, kappa, h, pn)
    assert false_negative_bound(l, b, kappa, h) <= pn
