"""Property: batched retrieval is outcome-equivalent to sequential.

For any key set, any per-key cache placement, and any transition state,
:meth:`RetrievalEngine.retrieve_many` must return the same values, the same
:class:`FetchPath` per key, the same :class:`FetchStats` counts, and leave
the same cluster state behind as running :meth:`RetrievalEngine.retrieve`
once per distinct key — the contract every driver's ``fetch_many`` rests on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.retrieval import (
    CheckDigest,
    CheckDigestMulti,
    ProbeCache,
    ProbeCacheMulti,
    ReadDatabase,
    RetrievalConfig,
    RetrievalEngine,
    WaitForLeader,
    WriteBack,
    WriteBackMulti,
)
from repro.core.router import ProteusRouter
from repro.core.transition import RoutingEpochs, Transition

ROUTER = ProteusRouter(5, ring_size=2 ** 20)
STEADY = RoutingEpochs(new=4, old=None, transition=None)
DRAINING = RoutingEpochs(
    new=3, old=5,
    transition=Transition(n_old=5, n_new=3, started_at=0.0, ttl=60.0),
)


class StoreDriver:
    """Dict-backed executor for both the single-key and batched protocols."""

    def __init__(self, stores, db, digests):
        self.stores = {sid: dict(store) for sid, store in stores.items()}
        self.db = db
        self.digests = digests

    def run_single(self, generator, key):
        result = None
        try:
            while True:
                command = generator.send(result)
                if isinstance(command, ProbeCache):
                    result = self.stores.get(command.server_id, {}).get(key)
                elif isinstance(command, CheckDigest):
                    result = key in self.digests.get(command.server_id, ())
                elif isinstance(command, WaitForLeader):
                    result = False
                elif isinstance(command, ReadDatabase):
                    result = self.db[key]
                elif isinstance(command, WriteBack):
                    self.stores.setdefault(command.server_id, {})[key] = (
                        command.value
                    )
                    result = None
        except StopIteration as stop:
            return stop.value

    def run_batch(self, generator):
        answers = None
        try:
            while True:
                round_ = generator.send(answers)
                results = []
                for command in round_:
                    if isinstance(command, ProbeCacheMulti):
                        store = self.stores.get(command.server_id, {})
                        results.append(
                            {k: store[k] for k in command.keys if k in store}
                        )
                    elif isinstance(command, CheckDigestMulti):
                        digest = self.digests.get(command.server_id, ())
                        results.append([k in digest for k in command.keys])
                    elif isinstance(command, WaitForLeader):
                        results.append(False)
                    elif isinstance(command, ReadDatabase):
                        results.append(self.db[command.key])
                    elif isinstance(command, WriteBackMulti):
                        store = self.stores.setdefault(command.server_id, {})
                        for key, value in command.items:
                            store[key] = value
                        results.append(None)
                answers = tuple(results)
        except StopIteration as stop:
            return stop.value


#: per-key placement: nowhere, at the new owner, or at the old owner with
#: the old owner's digest advertising it (the "hot data" state).
PLACEMENTS = st.sampled_from(["absent", "cached_new", "hot_old", "lying_digest"])


@st.composite
def cluster_states(draw):
    indexes = draw(
        st.lists(
            st.integers(min_value=0, max_value=400),
            min_size=1, max_size=25, unique=True,
        )
    )
    epochs = draw(st.sampled_from([STEADY, DRAINING]))
    stores, digests, db = {}, {}, {}
    keys = []
    for i in indexes:
        key = f"page:{i}"
        keys.append(key)
        placement = draw(PLACEMENTS)
        db[key] = f"db-{key}"
        new_id = ROUTER.route(key, epochs.new)
        if placement == "cached_new":
            stores.setdefault(new_id, {})[key] = f"cached-{key}"
        elif epochs.in_transition and placement in ("hot_old", "lying_digest"):
            old_id = ROUTER.route(key, epochs.old)
            digests.setdefault(old_id, set()).add(key)
            if placement == "hot_old":
                stores.setdefault(old_id, {})[key] = f"hot-{key}"
    return keys, epochs, stores, digests, db


@given(state=cluster_states(), data=st.data())
@settings(max_examples=120, deadline=None)
def test_batch_outcomes_equal_sequential_outcomes(state, data):
    keys, epochs, stores, digests, db = state
    chunk = data.draw(st.sampled_from([0, 1, 2, 64]))
    config = RetrievalConfig(max_multiget_keys=chunk)

    batch_engine = RetrievalEngine(ROUTER, config=config)
    batch_driver = StoreDriver(stores, db, digests)
    batched = batch_driver.run_batch(batch_engine.retrieve_many(keys, epochs))

    seq_engine = RetrievalEngine(ROUTER)
    seq_driver = StoreDriver(stores, db, digests)
    sequential = {
        key: seq_driver.run_single(seq_engine.retrieve(key, epochs), key)
        for key in keys
    }

    assert set(batched) == set(sequential)
    for key in keys:
        assert batched[key].value == sequential[key].value, key
        assert batched[key].path is sequential[key].path, key
        assert batched[key].new_server == sequential[key].new_server, key
        assert batched[key].old_server == sequential[key].old_server, key
    assert batch_engine.stats.counts == seq_engine.stats.counts
    # Same final cluster state: every write-back landed identically.
    assert batch_driver.stores == seq_driver.stores


@given(state=cluster_states())
@settings(max_examples=60, deadline=None)
def test_batch_probes_each_server_at_most_once_per_epoch(state):
    keys, epochs, stores, digests, db = state
    engine = RetrievalEngine(ROUTER)  # default chunking (64) never splits here

    probed = []

    class CountingDriver(StoreDriver):
        def run_batch(self, generator):
            answers = None
            try:
                while True:
                    round_ = generator.send(answers)
                    results = []
                    for command in round_:
                        if isinstance(command, ProbeCacheMulti):
                            probed.append(command.server_id)
                            store = self.stores.get(command.server_id, {})
                            results.append(
                                {
                                    k: store[k]
                                    for k in command.keys if k in store
                                }
                            )
                        elif isinstance(command, CheckDigestMulti):
                            digest = self.digests.get(command.server_id, ())
                            results.append(
                                [k in digest for k in command.keys]
                            )
                        elif isinstance(command, ReadDatabase):
                            results.append(self.db[command.key])
                        elif isinstance(command, WriteBackMulti):
                            store = self.stores.setdefault(
                                command.server_id, {}
                            )
                            for key, value in command.items:
                                store[key] = value
                            results.append(None)
                    answers = tuple(results)
            except StopIteration as stop:
                return stop.value

    CountingDriver(stores, db, digests).run_batch(
        engine.retrieve_many(keys, epochs)
    )
    # New-epoch probes + old-epoch probes: each server at most once each.
    epoch_count = 2 if epochs.in_transition else 1
    from collections import Counter

    for server_id, count in Counter(probed).items():
        assert count <= epoch_count, (server_id, probed)
