"""Hypothesis stateful test: the cache-cluster scaling state machine.

Random interleavings of smooth scale requests, abrupt scale requests, time
advances, crashes, and repairs must preserve the lifecycle invariants:

* servers in the active prefix are ON (unless crashed); servers beyond the
  prefix are OFF or DRAINING (draining only inside an open window);
* at most one drain window is open, and it closes by its deadline;
* a closed scale-down window leaves the drained servers OFF and empty;
* the committed active count always matches the last accepted request.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.bloom.config import BloomConfig
from repro.cache.cluster import CacheCluster
from repro.cache.server import PowerState
from repro.core.router import ProteusRouter
from repro.errors import TransitionError

N = 5
TTL = 10.0
CFG = BloomConfig(
    num_counters=2048, counter_bits=8, num_hashes=4, kappa=100,
    fp_bound=0.0, fn_bound=0.0,
)


class ClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = CacheCluster(
            ProteusRouter(N, ring_size=2 ** 20),
            capacity_bytes=4096 * 50,
            initial_active=N,
            ttl=TTL,
            bloom_config=CFG,
        )
        self.now = 0.0

    @rule(target_n=st.integers(min_value=1, max_value=N))
    def smooth_scale(self, target_n):
        try:
            self.cluster.scale_to(target_n, self.now)
        except TransitionError:
            # a window is still open — legal rejection, state unchanged
            assert self.cluster.transitions.in_transition(self.now)

    @rule(target_n=st.integers(min_value=1, max_value=N))
    def abrupt_scale(self, target_n):
        try:
            self.cluster.abrupt_scale_to(target_n, self.now)
        except TransitionError:
            assert self.cluster.transitions.in_transition(self.now)

    @rule(server=st.integers(min_value=0, max_value=N - 1))
    def crash(self, server):
        self.cluster.fail_server(server, self.now)

    @rule(server=st.integers(min_value=0, max_value=N - 1))
    def repair(self, server):
        self.cluster.repair_server(server, self.now)

    @rule(delta=st.floats(min_value=0.5, max_value=25.0))
    def advance(self, delta):
        self.now += delta
        self.cluster.finalize_expired(self.now)

    @rule(key=st.integers(min_value=0, max_value=30), value=st.integers())
    def write_to_owner(self, key, value):
        epochs = self.cluster.routing_epochs(self.now)
        owner = self.cluster.router.route(f"k:{key}", epochs.new)
        server = self.cluster.server(owner)
        if server.state.serves_requests:
            server.set(f"k:{key}", value, now=self.now)

    # ------------------------------------------------------------ invariants

    @invariant()
    def active_prefix_is_on_unless_crashed(self):
        n = self.cluster.active_count
        failed = self.cluster.failed_servers()
        for sid in range(n):
            state = self.cluster.server(sid).state
            if sid in failed:
                assert state is PowerState.OFF
            else:
                assert state is PowerState.ON

    @invariant()
    def beyond_prefix_is_off_or_draining(self):
        n = self.cluster.active_count
        in_window = self.cluster.transitions.in_transition(self.now)
        for sid in range(n, N):
            state = self.cluster.server(sid).state
            if state is PowerState.DRAINING:
                assert in_window  # draining only inside an open window
            else:
                assert state is PowerState.OFF

    @invariant()
    def window_closes_by_deadline(self):
        transition = self.cluster.transitions.current(self.now)
        if transition is not None:
            assert self.now < transition.deadline

    @invariant()
    def drained_servers_are_empty(self):
        for transition in self.cluster.transitions.history:
            for sid in transition.draining_servers():
                server = self.cluster.server(sid)
                if server.state is PowerState.OFF:
                    assert len(server.store) == 0


ClusterMachine.TestCase.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
TestClusterMachine = ClusterMachine.TestCase
