"""Properties of the top-k election sketch (repro.core.hotkey).

Pins the election guarantee documented on :class:`TopKSketch`: because the
count-min sketch never underestimates, a sketch with capacity ``2k`` ends
every stream with an elected set that is a **superset of the true top-k**
whenever the top-k counts are strictly separated from the rest (at most
``k - 1`` other keys can ever out-estimate a true top-k key, so a full
tracker of ``2k`` entries can never select one as the eviction minimum).
Also pins the eviction discipline itself: a tracked key is only ever
displaced by a newcomer whose estimate has reached the tracked minimum.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hotkey import CountMinSketch, HotKeyCache, TopKSketch

#: Wide sketch relative to the key pool: estimates are exact in practice,
#: so the properties test the election logic, not collision noise.
WIDTH, DEPTH = 4096, 4


@st.composite
def skewed_streams(draw):
    """A shuffled stream with unique per-key counts and its parameters."""
    k = draw(st.integers(min_value=1, max_value=6))
    num_keys = draw(st.integers(min_value=2 * k, max_value=30))
    # Unique counts => strict separation between every pair of ranks.
    counts = draw(
        st.lists(
            st.integers(min_value=1, max_value=60),
            min_size=num_keys, max_size=num_keys, unique=True,
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2 ** 16))
    stream = []
    for i, count in enumerate(counts):
        stream.extend([f"hk:{i}"] * count)
    random.Random(seed).shuffle(stream)
    by_count = sorted(
        range(num_keys), key=lambda i: counts[i], reverse=True
    )
    true_top_k = {f"hk:{i}" for i in by_count[:k]}
    return k, stream, true_top_k


@given(data=skewed_streams())
@settings(max_examples=120, deadline=None)
def test_elected_superset_of_true_top_k_at_double_capacity(data):
    k, stream, true_top_k = data
    topk = TopKSketch(capacity=2 * k, width=WIDTH, depth=DEPTH)
    for key in stream:
        topk.record(key)
    elected = set(topk.elected())
    assert true_top_k <= elected, (true_top_k - elected, stream)


@given(data=skewed_streams())
@settings(max_examples=60, deadline=None)
def test_no_eviction_below_threshold(data):
    _, stream, _ = data
    topk = TopKSketch(capacity=3, width=WIDTH, depth=DEPTH)
    before = topk.elected()
    for key in stream:
        topk.record(key)
        after = topk.elected()
        evicted = set(before) - set(after)
        # At most one key leaves per record, and only for a newcomer whose
        # estimate reached the evicted key's (the tracked minimum).
        assert len(evicted) <= 1
        for victim in evicted:
            assert key in after
            assert after[key] >= before[victim], (key, victim)
        before = after


@given(data=skewed_streams())
@settings(max_examples=60, deadline=None)
def test_estimates_never_underestimate(data):
    _, stream, _ = data
    sketch = CountMinSketch(width=64, depth=2)  # deliberately collision-prone
    truth = {}
    for key in stream:
        sketch.add(key)
        truth[key] = truth.get(key, 0) + 1
    for key, count in truth.items():
        assert sketch.estimate(key) >= count
    assert sketch.observations == len(stream)


@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["store", "get", "invalidate"]),
            st.integers(min_value=0, max_value=5),   # key index
            st.floats(min_value=0.0, max_value=10.0),  # time offset
        ),
        max_size=60,
    )
)
@settings(max_examples=80, deadline=None)
def test_cache_never_serves_entries_older_than_ttl(ops):
    cache = HotKeyCache(capacity=4, ttl=1.0)
    stored_at = {}
    clock = 0.0
    for op, idx, dt in ops:
        clock += dt  # monotone clock, as every driver guarantees
        key = f"k:{idx}"
        if op == "store":
            cache.store(key, idx, now=clock)
            stored_at[key] = clock
        elif op == "invalidate":
            cache.invalidate(key)
            stored_at.pop(key, None)
        else:
            value = cache.get(key, now=clock)
            if value is not None:
                assert clock - stored_at[key] < cache.ttl
                assert value == idx
