"""Properties of the compiled/vectorized hot path.

The compiled ring table, the batched router entry points, the memoized
:class:`~repro.bloom.hashing.KeyHashes`, and the vectorized Bloom-filter
batch operations are all *representations* of existing decision procedures,
not new policies — so each property here pins an exact equivalence against
the scalar reference implementation:

* compiled-table lookups == ``HashRing.lookup`` for random rings (integer
  and Fraction positions), every ``num_active`` prefix, and arbitrary
  activity sets;
* ``route_many`` / ``route_hashed`` == per-key ``route`` for all routers;
* vectorized ``add_many`` / ``remove_many`` / ``contains_many`` == scalar
  loops, including saturation/overflow accounting and the strict-removal
  error/atomicity contract.
"""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.bloom import BloomFilter
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import KeyHashes, digest_bases_many, ring_position
from repro.core.replication import ReplicatedProteusRouter
from repro.core.ring import HashRing, VirtualNode, prefix_active
from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
)
from repro.errors import DigestError

keys = st.text(min_size=1, max_size=24)
key_lists = st.lists(keys, max_size=30)


# ----------------------------------------------------------- compiled tables


@st.composite
def rings(draw):
    """A random ring: int or Fraction positions, arbitrary server ids."""
    size = draw(st.integers(min_value=4, max_value=2 ** 16))
    count = draw(st.integers(min_value=1, max_value=min(24, size)))
    positions = draw(
        st.lists(
            st.integers(min_value=0, max_value=size - 1),
            min_size=count, max_size=count, unique=True,
        )
    )
    use_fractions = draw(st.booleans())
    if use_fractions:
        denominators = draw(
            st.lists(
                st.integers(min_value=1, max_value=7),
                min_size=count, max_size=count,
            )
        )
        numerators = draw(
            st.lists(
                st.integers(min_value=0, max_value=6),
                min_size=count, max_size=count,
            )
        )
        positions = sorted(
            {
                (pos + Fraction(num % den, den)) % size
                for pos, num, den in zip(positions, numerators, denominators)
            }
        )
    servers = draw(
        st.lists(
            st.integers(min_value=0, max_value=9),
            min_size=len(positions), max_size=len(positions),
        )
    )
    ring = HashRing(size)
    ring.add_many(
        [VirtualNode(pos, srv) for pos, srv in zip(positions, servers)]
    )
    return ring


@given(
    ring=rings(),
    active_set=st.sets(st.integers(min_value=0, max_value=9)),
    probes=st.lists(st.integers(min_value=0, max_value=2 ** 17), max_size=30),
)
@settings(max_examples=120, deadline=None)
def test_compiled_table_matches_lookup_for_arbitrary_activity(
    ring, active_set, probes
):
    on_ring = {node.server for node in ring.nodes}
    if not (active_set & on_ring):
        active_set = on_ring  # guarantee at least one active server
    is_active = lambda server: server in active_set
    table = ring.compile(is_active)
    batch = (
        table.lookup_many(np.asarray(probes, dtype=np.int64)).tolist()
        if probes
        else []
    )
    for position, from_batch in zip(probes, batch):
        expected = ring.lookup(position, is_active)
        assert table.lookup(position) == expected
        assert from_batch == expected


@given(num_servers=st.integers(min_value=1, max_value=16), batch=key_lists)
@settings(max_examples=60, deadline=None)
def test_compiled_table_matches_lookup_for_every_prefix(num_servers, batch):
    router = ProteusRouter(num_servers, ring_size=2 ** 20)
    ring = router.ring
    for num_active in range(1, num_servers + 1):
        table = ring.compiled_for(num_active)
        predicate = prefix_active(num_active)
        for key in batch:
            position = ring_position(key, ring.size)
            assert table.lookup(position) == ring.lookup(position, predicate)


# ------------------------------------------------------------- batch routing


@given(
    num_servers=st.integers(min_value=1, max_value=12),
    batch=key_lists,
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_route_many_and_route_hashed_match_route(num_servers, batch, data):
    num_active = data.draw(
        st.integers(min_value=1, max_value=num_servers)
    )
    routers = [
        StaticRouter(num_servers),
        NaiveRouter(num_servers),
        ConsistentRouter.log_variant(num_servers),
        ProteusRouter(num_servers, ring_size=2 ** 20),
        ReplicatedProteusRouter(num_servers, replicas=2, ring_size=2 ** 20),
    ]
    for router in routers:
        expected = [router.route(key, num_active) for key in batch]
        assert router.route_many(batch, num_active) == expected
        for key, want in zip(batch, expected):
            assert router.route_hashed(KeyHashes(key), num_active) == want


@given(
    num_servers=st.integers(min_value=1, max_value=10),
    replicas=st.integers(min_value=1, max_value=3),
    batch=st.lists(keys, min_size=1, max_size=15),
    data=st.data(),
)
@settings(max_examples=60, deadline=None)
def test_read_plan_matches_replica_servers(num_servers, replicas, batch, data):
    num_active = data.draw(st.integers(min_value=1, max_value=num_servers))
    exclude = data.draw(
        st.sets(st.integers(min_value=0, max_value=num_servers - 1))
    )
    router = ReplicatedProteusRouter(
        num_servers, replicas=replicas, ring_size=2 ** 20
    )
    for key in batch:
        owners = router.replica_servers(key, num_active)
        plan = router.read_plan(key, num_active, exclude=exclude)
        assert plan.primary == owners[0] == router.route(key, num_active)
        want = []
        for server in owners:
            if server not in want and server not in exclude:
                want.append(server)
        assert list(plan.targets) == want
        assert plan.chosen == (want[0] if want else None)
        hashed = router.replica_servers(key, num_active, hashes=KeyHashes(key))
        assert hashed == owners


# ------------------------------------------------------------ bloom batches


def _state(cbf):
    return (bytes(cbf._counters), cbf.count, cbf.overflow_events)


@given(
    num_bits=st.integers(min_value=1, max_value=256),
    num_hashes=st.integers(min_value=1, max_value=5),
    inserts=key_lists,
    probes=key_lists,
)
@settings(max_examples=80, deadline=None)
def test_bloom_batch_matches_scalar(num_bits, num_hashes, inserts, probes):
    scalar = BloomFilter(num_bits, num_hashes)
    batch = BloomFilter(num_bits, num_hashes)
    for key in inserts:
        scalar.add(key)
    batch.add_many(inserts)
    assert bytes(scalar._bits) == bytes(batch._bits)
    assert scalar.count == batch.count
    expected = [key in scalar for key in probes]
    assert batch.contains_many(probes) == expected
    assert (
        batch.contains_many(probes, bases=digest_bases_many(probes))
        == expected
    ) if probes else True
    for key, want in zip(probes, expected):
        assert batch.contains(key, KeyHashes(key)) == want
    assert scalar.fill_ratio() == batch.fill_ratio()


@given(
    num_counters=st.integers(min_value=1, max_value=64),
    counter_bits=st.integers(min_value=1, max_value=8),
    num_hashes=st.integers(min_value=1, max_value=5),
    inserts=st.lists(keys, max_size=60),
    probes=key_lists,
)
@settings(max_examples=100, deadline=None)
def test_counting_add_many_matches_scalar_with_overflow(
    num_counters, counter_bits, num_hashes, inserts, probes
):
    # Tiny geometries force probe collisions, saturation, and overflow.
    scalar = CountingBloomFilter(num_counters, counter_bits, num_hashes)
    batch = CountingBloomFilter(num_counters, counter_bits, num_hashes)
    for key in inserts:
        scalar.add(key)
    batch.add_many(inserts)
    assert _state(scalar) == _state(batch)
    assert batch.contains_many(probes) == [key in scalar for key in probes]
    assert scalar.max_counter() == batch.max_counter()
    assert scalar.saturated_fraction() == batch.saturated_fraction()
    assert bytes(scalar.snapshot().to_bytes()) == bytes(
        batch.snapshot().to_bytes()
    )


@given(
    num_counters=st.integers(min_value=1, max_value=48),
    counter_bits=st.integers(min_value=1, max_value=6),
    num_hashes=st.integers(min_value=1, max_value=5),
    strict=st.booleans(),
    inserts=st.lists(keys, max_size=40),
    extra_removes=st.lists(keys, max_size=4),
    data=st.data(),
)
@settings(max_examples=100, deadline=None)
def test_counting_remove_many_matches_scalar(
    num_counters, counter_bits, num_hashes, strict, inserts, extra_removes, data
):
    reference = CountingBloomFilter(
        num_counters, counter_bits, num_hashes, strict=strict
    )
    batch = CountingBloomFilter(
        num_counters, counter_bits, num_hashes, strict=strict
    )
    reference.update(inserts)
    batch.add_many(inserts)
    removes = data.draw(st.permutations(inserts)) if inserts else []
    removes = removes[: data.draw(st.integers(0, len(removes)))]
    removes = removes + extra_removes
    scalar_error = None
    try:
        for key in removes:
            reference.remove(key)
    except DigestError as err:
        scalar_error = err
    before = _state(batch)
    try:
        batch.remove_many(removes)
    except DigestError as err:
        # Atomic: the failed batch must not have mutated anything, and the
        # scalar loop (same order) must also have failed on that key.
        assert _state(batch) == before
        assert scalar_error is not None
        assert str(err) == str(scalar_error)
    else:
        assert scalar_error is None
        assert _state(reference) == _state(batch)


@given(
    inserts=st.lists(keys, max_size=30),
    removes_count=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=40, deadline=None)
def test_counting_wide_counters_fallback(inserts, removes_count):
    # b > 8 uses python-int storage; batch ops must still match scalars.
    scalar = CountingBloomFilter(16, 12, 4)
    batch = CountingBloomFilter(16, 12, 4)
    for key in inserts:
        scalar.add(key)
    batch.add_many(inserts)
    assert list(scalar._counters) == list(batch._counters)
    removes = inserts[:removes_count]
    for key in removes:
        scalar.remove(key)
    batch.remove_many(removes)
    assert list(scalar._counters) == list(batch._counters)
    assert batch.contains_many(inserts) == [key in scalar for key in inserts]


def test_remove_many_strict_failure_is_atomic_even_after_partial_progress():
    cbf = CountingBloomFilter(64, 4, 4, strict=True)
    cbf.add_many(["a", "b"])
    snapshot = _state(cbf)
    with pytest.raises(DigestError):
        cbf.remove_many(["a", "never-inserted", "b"])
    assert _state(cbf) == snapshot
    # The same sequence through the scalar API mutates before raising —
    # that is exactly the divergence the batch contract closes.
    scalar = CountingBloomFilter(64, 4, 4, strict=True)
    scalar.update(["a", "b"])
    with pytest.raises(DigestError):
        for key in ["a", "never-inserted", "b"]:
            scalar.remove(key)
    assert _state(scalar) != snapshot
