"""Property-based tests for Algorithm 1 (the paper's formal guarantees)."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import place_virtual_nodes, theoretical_min_vnodes
from repro.core.ring import prefix_active

servers = st.integers(min_value=1, max_value=14)
ring_sizes = st.integers(min_value=100, max_value=2 ** 40)


@given(num_servers=servers, ring_size=ring_sizes)
@settings(max_examples=40, deadline=None)
def test_vnode_count_is_exactly_the_theorem1_bound(num_servers, ring_size):
    placement = place_virtual_nodes(num_servers, ring_size)
    assert placement.num_vnodes == theoretical_min_vnodes(num_servers)


@given(num_servers=servers, ring_size=ring_sizes)
@settings(max_examples=25, deadline=None)
def test_balance_condition_holds_for_every_prefix(num_servers, ring_size):
    # The executable form of the Section III-D induction proof, on arbitrary
    # ring sizes (exact rational arithmetic, no tolerance).
    place_virtual_nodes(num_servers, ring_size).verify_balance()


@given(num_servers=servers, ring_size=ring_sizes)
@settings(max_examples=25, deadline=None)
def test_ranges_tile_the_key_space(num_servers, ring_size):
    placement = place_virtual_nodes(num_servers, ring_size)
    ranges = sorted(placement.ranges, key=lambda r: r.start)
    assert ranges[0].start == 0
    for prev, cur in zip(ranges, ranges[1:]):
        assert prev.end == cur.start
        assert prev.length > 0
    assert ranges[-1].end == ring_size


@given(
    num_servers=st.integers(min_value=2, max_value=10),
    ring_size=st.integers(min_value=1000, max_value=2 ** 32),
    data=st.data(),
)
@settings(max_examples=25, deadline=None)
def test_scale_down_only_moves_the_drained_servers_keys(
    num_servers, ring_size, data
):
    # Minimal-migration property: under n -> n-1, a key changes owner only
    # if its owner was the drained server.
    placement = place_virtual_nodes(num_servers, ring_size)
    ring = placement.build_ring()
    n = data.draw(st.integers(min_value=2, max_value=num_servers), label="n")
    positions = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=ring_size - 1),
            min_size=1, max_size=50,
        ),
        label="positions",
    )
    for position in positions:
        before = ring.lookup(position, prefix_active(n))
        after = ring.lookup(position, prefix_active(n - 1))
        if before != after:
            assert before == n - 1  # only the powered-off server loses keys


@given(num_servers=servers)
@settings(max_examples=20, deadline=None)
def test_owned_fraction_is_exact_rational(num_servers):
    placement = place_virtual_nodes(num_servers, 2 ** 16)
    for n in range(1, num_servers + 1):
        total = sum(
            (placement.owned_fraction(s, n) for s in range(n)),
            start=Fraction(0),
        )
        assert total == 1
