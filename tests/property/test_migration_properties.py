"""Property-based tests for migration plans and provisioning schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.migration import migration_lower_bound, plan_migration
from repro.core.router import ProteusRouter
from repro.provisioning.policies import ProvisioningSchedule, limit_step_size

ROUTER = ProteusRouter(8, ring_size=2 ** 24)  # shared: placement is pure


@given(
    n_old=st.integers(min_value=1, max_value=8),
    n_new=st.integers(min_value=1, max_value=8),
    num_keys=st.integers(min_value=0, max_value=120),
)
@settings(max_examples=60, deadline=None)
def test_migration_plan_invariants(n_old, n_new, num_keys):
    keys = [f"prop:{i}" for i in range(num_keys)]
    plan = plan_migration(ROUTER, keys, n_old, n_new)
    # Conservation: every key is either stationary or in exactly one move
    # bucket.
    assert plan.moved + plan.stationary == num_keys
    for (src, dst), bucket in plan.moves.items():
        assert src != dst
        assert bucket  # no empty buckets
        # Every recorded move matches the router's own answers.
        for key in bucket:
            assert ROUTER.route(key, n_old) == src
            assert ROUTER.route(key, n_new) == dst
    if n_old == n_new:
        assert plan.moved == 0
    # Scale-down: sources only among powered-off servers; scale-up:
    # destinations only among powered-on ones.
    if n_new < n_old:
        assert all(src >= n_new for src in plan.sources())
    elif n_new > n_old:
        assert all(dst >= n_old for dst in plan.destinations())


@given(
    n_old=st.integers(min_value=1, max_value=8),
    n_new=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=40, deadline=None)
def test_plan_fraction_respects_lower_bound_asymptotically(n_old, n_new):
    keys = [f"frac:{i}" for i in range(1500)]
    plan = plan_migration(ROUTER, keys, n_old, n_new)
    bound = float(migration_lower_bound(n_old, n_new))
    # Proteus moves the bound's fraction, within sampling noise.
    assert abs(plan.remap_fraction - bound) < 0.05


@given(
    counts=st.lists(st.integers(min_value=1, max_value=20), min_size=1,
                    max_size=30),
    max_step=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_limit_step_size_properties(counts, max_step):
    schedule = ProvisioningSchedule(10.0, counts)
    smoothed = limit_step_size(schedule, max_step=max_step)
    # Same length, same start, every step bounded, all counts >= 1.
    assert smoothed.num_slots == schedule.num_slots
    assert smoothed.counts[0] == counts[0]
    for a, b in zip(smoothed.counts, smoothed.counts[1:]):
        assert abs(b - a) <= max_step
    assert all(c >= 1 for c in smoothed.counts)
    # Smoothing moves toward the target each slot (never overshoots).
    for target, previous, value in zip(
        counts[1:], smoothed.counts, smoothed.counts[1:]
    ):
        low, high = sorted((previous, target))
        assert low <= value <= high


@given(
    counts=st.lists(st.integers(min_value=1, max_value=10), min_size=2,
                    max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_schedule_transitions_reconstruct_counts(counts):
    schedule = ProvisioningSchedule(5.0, counts)
    # Replaying the transitions over the initial count reproduces n_at.
    current = counts[0]
    series = {0.0: current}
    for when, n_old, n_new in schedule.transitions():
        assert n_old == current
        current = n_new
        series[when] = current
    # n_at agrees at every slot start.
    for slot, expected in enumerate(counts):
        assert schedule.n_at(slot * 5.0) == expected
