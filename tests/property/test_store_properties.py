"""Property-based tests: the store/digest pair stays consistent under churn.

This is the invariant the whole smooth-transition design rests on
(Section IV-A): the digest answers membership for exactly the store's
current keys (modulo hash false positives, never false negatives).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.config import BloomConfig
from repro.cache.server import CacheServer

# Small keys; ops reference keys by index so deletes often hit live items.
op = st.tuples(
    st.sampled_from(["set", "get", "delete"]),
    st.integers(min_value=0, max_value=30),
)

CFG = BloomConfig(
    num_counters=8192, counter_bits=8, num_hashes=4, kappa=500,
    fp_bound=0.0, fn_bound=0.0,
)


@given(ops=st.lists(op, max_size=200))
@settings(max_examples=50, deadline=None)
def test_digest_matches_store_contents_under_arbitrary_churn(ops):
    server = CacheServer(0, capacity_bytes=4096 * 12, bloom_config=CFG)
    now = 0.0
    for action, idx in ops:
        key = f"key:{idx}"
        now += 1.0
        if action == "set":
            server.set(key, idx, now=now)
        elif action == "get":
            server.get(key, now=now)
        else:
            server.delete(key, now=now)
    live = set(server.store.keys())
    # No false negatives: every live key is in the digest.
    assert all(key in server.digest for key in live)
    # Exact count: digest tracked link/unlink one-for-one.
    assert server.digest.count == len(live)
    # Capacity respected throughout.
    assert server.store.used_bytes <= 4096 * 12


@given(ops=st.lists(op, max_size=150), ttl=st.floats(min_value=1.0, max_value=50.0))
@settings(max_examples=30, deadline=None)
def test_digest_consistent_with_ttl_expiry(ops, ttl):
    server = CacheServer(0, bloom_config=CFG)
    now = 0.0
    for action, idx in ops:
        key = f"key:{idx}"
        now += 2.0
        if action == "set":
            server.set(key, idx, now=now, ttl=ttl)
        else:
            server.get(key, now=now)  # may lazily expire
    server.store.purge_expired(now)
    live = set(server.store.keys())
    assert server.digest.count == len(live)
    assert all(key in server.digest for key in live)


@given(ops=st.lists(op, max_size=120))
@settings(max_examples=30, deadline=None)
def test_stats_item_count_matches_store(ops):
    server = CacheServer(0, capacity_bytes=4096 * 10, bloom_config=CFG)
    now = 0.0
    for action, idx in ops:
        now += 1.0
        key = f"key:{idx}"
        if action == "set":
            server.set(key, idx, now=now)
        elif action == "get":
            server.get(key, now=now)
        else:
            server.delete(key, now=now)
    assert server.stats.items == len(server.store)
    assert server.stats.bytes_stored == server.store.used_bytes
