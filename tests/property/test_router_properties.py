"""Property-based tests for routing invariants shared by all scenarios."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.migration import migration_lower_bound
from repro.core.router import NaiveRouter, ProteusRouter

keys = st.text(min_size=1, max_size=30)


@given(key=keys, data=st.data())
@settings(max_examples=80, deadline=None)
def test_routes_always_land_on_an_active_server(key, data):
    num_servers = data.draw(st.integers(min_value=1, max_value=12))
    n = data.draw(st.integers(min_value=1, max_value=num_servers))
    router = ProteusRouter(num_servers, ring_size=2 ** 24)
    assert 0 <= router.route(key, n) < n


@given(key=keys, data=st.data())
@settings(max_examples=80, deadline=None)
def test_routing_is_deterministic(key, data):
    num_servers = data.draw(st.integers(min_value=1, max_value=10))
    n = data.draw(st.integers(min_value=1, max_value=num_servers))
    a = ProteusRouter(num_servers, ring_size=2 ** 24)
    b = ProteusRouter(num_servers, ring_size=2 ** 24)
    # Two independently built routers (different web servers) must agree.
    assert a.route(key, n) == b.route(key, n)


@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_proteus_monotone_routing_under_scale_down(data):
    # Scale-down n -> m (m < n) may only move keys whose owner powered off
    # (owner id >= m).  Keys owned by a surviving server never move.
    num_servers = data.draw(st.integers(min_value=2, max_value=10))
    n = data.draw(st.integers(min_value=2, max_value=num_servers))
    m = data.draw(st.integers(min_value=1, max_value=n - 1))
    router = ProteusRouter(num_servers, ring_size=2 ** 24)
    for i in range(40):
        key = f"key-{i}"
        before = router.route(key, n)
        after = router.route(key, m)
        if before < m:
            assert after == before
        else:
            assert after < m


@given(
    n_old=st.integers(min_value=1, max_value=20),
    n_new=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=60, deadline=None)
def test_lower_bound_is_symmetric_and_bounded(n_old, n_new):
    bound = migration_lower_bound(n_old, n_new)
    assert bound == migration_lower_bound(n_new, n_old)
    assert 0 <= bound < 1


@given(key=keys, data=st.data())
@settings(max_examples=60, deadline=None)
def test_naive_router_in_range(key, data):
    num_servers = data.draw(st.integers(min_value=1, max_value=12))
    n = data.draw(st.integers(min_value=1, max_value=num_servers))
    assert 0 <= NaiveRouter(num_servers).route(key, n) < n
