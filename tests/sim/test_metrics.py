"""Tests for metrics: percentiles, time series, slotted recorders."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import SlottedRecorder, TimeSeries, min_max_ratio, percentile


class TestPercentile:
    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_matches_numpy(self):
        import numpy as np

        values = [float(i) for i in range(101)]
        for pct in (25, 50, 90, 99, 99.9):
            assert percentile(values, pct) == pytest.approx(
                float(np.percentile(values, pct))
            )

    def test_single_value(self):
        assert percentile([7.0], 99.9) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50)

    def test_out_of_range_pct_raises(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101)


class TestTimeSeries:
    def test_append_and_window(self):
        ts = TimeSeries()
        for t in range(10):
            ts.append(float(t), t * 10.0)
        assert ts.window(2.0, 5.0) == [20.0, 30.0, 40.0]
        assert len(ts) == 10

    def test_out_of_order_append_rejected(self):
        ts = TimeSeries()
        ts.append(5.0, 1.0)
        with pytest.raises(ConfigurationError):
            ts.append(4.0, 1.0)

    def test_last(self):
        ts = TimeSeries()
        assert ts.last() is None
        ts.append(1.0, 2.0)
        assert ts.last() == (1.0, 2.0)

    def test_integrate_trapezoid(self):
        ts = TimeSeries()
        ts.append(0.0, 100.0)
        ts.append(10.0, 100.0)
        assert ts.integrate() == pytest.approx(1000.0)  # constant power
        ts.append(20.0, 0.0)
        assert ts.integrate() == pytest.approx(1000.0 + 500.0)  # ramp down

    def test_integrate_empty_and_single(self):
        assert TimeSeries().integrate() == 0.0
        ts = TimeSeries()
        ts.append(0.0, 5.0)
        assert ts.integrate() == 0.0


class TestSlottedRecorder:
    def test_slotting(self):
        rec = SlottedRecorder(10.0)
        rec.record(5.0, 1.0)
        rec.record(15.0, 2.0)
        rec.record(16.0, 3.0)
        assert rec.slots() == [0, 1]
        assert rec.count(0) == 1 and rec.count(1) == 2

    def test_start_offset(self):
        rec = SlottedRecorder(10.0, start=100.0)
        rec.record(105.0, 1.0)
        assert rec.slots() == [0]

    def test_reducers(self):
        rec = SlottedRecorder(10.0)
        for value in (1.0, 2.0, 3.0, 10.0):
            rec.record(1.0, value)
        assert rec.mean(0) == 4.0
        assert rec.pct(0, 50) == 2.5
        series_max = rec.series("max")
        assert series_max.values == [10.0]
        assert rec.series("min").values == [1.0]
        assert rec.series("count").values == [4.0]
        assert rec.series("sum").values == [16.0]

    def test_series_midpoint_times(self):
        rec = SlottedRecorder(10.0)
        rec.record(5.0, 1.0)
        rec.record(25.0, 1.0)
        series = rec.series("mean")
        assert series.times == [5.0, 25.0]

    def test_empty_slot_raises(self):
        rec = SlottedRecorder(10.0)
        with pytest.raises(ConfigurationError):
            rec.mean(0)
        with pytest.raises(ConfigurationError):
            rec.pct(0, 99)

    def test_unknown_reducer_raises(self):
        rec = SlottedRecorder(10.0)
        rec.record(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            rec.series("mode")

    def test_rejects_bad_width(self):
        with pytest.raises(ConfigurationError):
            SlottedRecorder(0.0)


class TestMinMaxRatio:
    def test_balanced(self):
        assert min_max_ratio([10, 10, 10]) == 1.0

    def test_imbalanced(self):
        assert min_max_ratio([5, 10]) == 0.5

    def test_zero_load_server(self):
        assert min_max_ratio([0, 10]) == 0.0

    def test_all_zero_is_trivially_balanced(self):
        assert min_max_ratio([0, 0]) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            min_max_ratio([])
