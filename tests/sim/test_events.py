"""Tests for the discrete-event engine and the clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import SimClock
from repro.sim.events import EventLoop


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_cannot_go_backwards(self):
        clock = SimClock(10.0)
        with pytest.raises(SimulationError):
            clock.advance_to(9.0)

    def test_advance_by(self):
        clock = SimClock(1.0)
        clock.advance_by(2.5)
        assert clock.now == 3.5
        with pytest.raises(SimulationError):
            clock.advance_by(-1.0)


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(3.0, fired.append, "c")
        loop.schedule_at(1.0, fired.append, "a")
        loop.schedule_at(2.0, fired.append, "b")
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        for tag in ("first", "second", "third"):
            loop.schedule_at(1.0, fired.append, tag)
        loop.run()
        assert fired == ["first", "second", "third"]

    def test_clock_advances_with_dispatch(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(4.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [4.0]
        assert loop.now == 4.0

    def test_schedule_in_past_raises(self):
        loop = EventLoop()
        loop.schedule_at(5.0, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(4.0, lambda: None)

    def test_relative_schedule(self):
        loop = EventLoop(start=10.0)
        seen = []
        loop.schedule(2.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [12.0]
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)

    def test_events_can_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain(depth):
            fired.append(loop.now)
            if depth > 0:
                loop.schedule(1.0, chain, depth - 1)

        loop.schedule_at(0.0, chain, 3)
        loop.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_stops_at_deadline(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(1.0, fired.append, "early")
        loop.schedule_at(5.0, fired.append, "late")
        loop.run_until(3.0)
        assert fired == ["early"]
        assert loop.now == 3.0
        loop.run()
        assert fired == ["early", "late"]

    def test_cancellation(self):
        loop = EventLoop()
        fired = []
        handle = loop.schedule_at(1.0, fired.append, "cancelled")
        loop.schedule_at(2.0, fired.append, "kept")
        handle.cancel()
        assert handle.cancelled
        loop.run()
        assert fired == ["kept"]

    def test_peek_time_skips_cancelled(self):
        loop = EventLoop()
        handle = loop.schedule_at(1.0, lambda: None)
        loop.schedule_at(2.0, lambda: None)
        handle.cancel()
        assert loop.peek_time() == 2.0

    def test_run_max_events(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule_at(float(i), lambda: None)
        assert loop.run(max_events=4) == 4
        assert len(loop) == 6

    def test_dispatched_counter(self):
        loop = EventLoop()
        loop.schedule_at(0.0, lambda: None)
        loop.run()
        assert loop.dispatched == 1
