"""Tests for latency models and service queues."""

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.latency import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    MultiServerQueue,
    ServiceQueue,
    Uniform,
    mm1_response_time,
)


@pytest.fixture
def rng():
    return random.Random(1234)


class TestModels:
    def test_constant(self, rng):
        model = Constant(0.05)
        assert model.sample(rng) == 0.05
        assert model.mean == 0.05

    def test_uniform_bounds_and_mean(self, rng):
        model = Uniform(0.01, 0.03)
        samples = [model.sample(rng) for _ in range(2000)]
        assert all(0.01 <= s <= 0.03 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(model.mean, rel=0.05)

    def test_exponential_mean(self, rng):
        model = Exponential(0.05)
        samples = [model.sample(rng) for _ in range(20_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.05, rel=0.05)

    def test_lognormal_mean(self, rng):
        model = LogNormal(0.1, sigma=0.6)
        samples = [model.sample(rng) for _ in range(50_000)]
        assert sum(samples) / len(samples) == pytest.approx(0.1, rel=0.05)

    def test_empirical_resamples_observed(self, rng):
        model = Empirical([0.1, 0.2, 0.3])
        assert model.mean == pytest.approx(0.2)
        assert all(model.sample(rng) in (0.1, 0.2, 0.3) for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Constant(-1.0)
        with pytest.raises(ConfigurationError):
            Uniform(0.5, 0.1)
        with pytest.raises(ConfigurationError):
            Exponential(0.0)
        with pytest.raises(ConfigurationError):
            LogNormal(0.0)
        with pytest.raises(ConfigurationError):
            Empirical([])
        with pytest.raises(ConfigurationError):
            Empirical([-0.1])


class TestServiceQueue:
    def test_fifo_backlog(self):
        queue = ServiceQueue()
        assert queue.enqueue(0.0, 1.0) == 1.0
        assert queue.enqueue(0.0, 1.0) == 2.0
        assert queue.delay(0.0) == 2.0

    def test_idle_gap(self):
        queue = ServiceQueue()
        queue.enqueue(0.0, 1.0)
        assert queue.enqueue(5.0, 1.0) == 6.0
        assert queue.delay(10.0) == 0.0

    def test_utilization(self):
        queue = ServiceQueue()
        queue.enqueue(0.0, 2.0)
        assert queue.utilization(4.0) == 0.5
        assert queue.utilization(0.0) == 0.0

    def test_reset(self):
        queue = ServiceQueue()
        queue.enqueue(0.0, 5.0)
        queue.reset()
        assert queue.delay(0.0) == 0.0
        assert queue.served == 0

    def test_negative_service_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceQueue().enqueue(0.0, -1.0)

    def test_matches_mm1_theory(self):
        # Drive an M/M/1 at rho=0.7 and compare the mean response time with
        # 1/(mu - lambda).
        rng = random.Random(9)
        service = Exponential(1.0)
        queue = ServiceQueue()
        arrival_rate = 0.7
        t = 0.0
        responses = []
        for _ in range(60_000):
            t += rng.expovariate(arrival_rate)
            done = queue.enqueue(t, service.sample(rng))
            responses.append(done - t)
        measured = sum(responses) / len(responses)
        predicted = mm1_response_time(arrival_rate, 1.0)
        assert measured == pytest.approx(predicted, rel=0.08)


class TestMultiServerQueue:
    def test_parallel_service(self):
        queue = MultiServerQueue(2)
        assert queue.enqueue(0.0, 1.0) == 1.0
        assert queue.enqueue(0.0, 1.0) == 1.0  # second worker
        assert queue.enqueue(0.0, 1.0) == 2.0  # queues behind earliest

    def test_delay(self):
        queue = MultiServerQueue(2)
        queue.enqueue(0.0, 1.0)
        assert queue.delay(0.0) == 0.0  # a worker is still free
        queue.enqueue(0.0, 2.0)
        assert queue.delay(0.0) == 1.0

    def test_utilization_per_worker(self):
        queue = MultiServerQueue(2)
        queue.enqueue(0.0, 2.0)
        assert queue.utilization(2.0) == 0.5

    def test_reset(self):
        queue = MultiServerQueue(3)
        queue.enqueue(0.0, 9.0)
        queue.reset()
        assert queue.delay(0.0) == 0.0

    def test_rejects_zero_workers(self):
        with pytest.raises(ConfigurationError):
            MultiServerQueue(0)


class TestMM1Formula:
    def test_stable(self):
        assert mm1_response_time(0.5, 1.0) == pytest.approx(2.0)

    def test_unstable_is_inf(self):
        assert mm1_response_time(1.0, 1.0) == math.inf
        assert mm1_response_time(2.0, 1.0) == math.inf

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mm1_response_time(-0.1, 1.0)
        with pytest.raises(ConfigurationError):
            mm1_response_time(0.5, 0.0)
