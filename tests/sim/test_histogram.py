"""Tests for the constant-memory histogram digest."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.sim.metrics import HistogramDigest, percentile


class TestBasics:
    def test_count_mean_max(self):
        digest = HistogramDigest()
        for value in (0.01, 0.02, 0.03):
            digest.record(value)
        assert digest.count == 3
        assert digest.mean == pytest.approx(0.02)
        assert digest.max_value == 0.03

    def test_empty_raises(self):
        digest = HistogramDigest()
        with pytest.raises(ConfigurationError):
            digest.pct(50)
        with pytest.raises(ConfigurationError):
            _ = digest.mean

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            HistogramDigest().record(-1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HistogramDigest(low=1.0, high=0.5)
        with pytest.raises(ConfigurationError):
            HistogramDigest(buckets_per_decade=0)
        digest = HistogramDigest()
        digest.record(1.0)
        with pytest.raises(ConfigurationError):
            digest.pct(101)


class TestAccuracy:
    def test_percentiles_within_relative_error(self):
        rng = random.Random(5)
        digest = HistogramDigest(low=1e-4, high=10.0, buckets_per_decade=100)
        samples = [rng.lognormvariate(-3.0, 1.0) for _ in range(50_000)]
        for value in samples:
            digest.record(value)
        for pct_rank in (50, 90, 99, 99.9):
            exact = percentile(samples, pct_rank)
            approx = digest.pct(pct_rank)
            assert approx == pytest.approx(exact, rel=0.05)

    def test_out_of_range_values_clamped(self):
        digest = HistogramDigest(low=0.01, high=1.0)
        digest.record(0.0001)
        digest.record(100.0)
        assert digest.pct(0) == pytest.approx(0.01)
        assert digest.pct(100) == pytest.approx(1.0)
        assert digest.max_value == 100.0  # exact max tracked outside buckets

    def test_memory_is_bounded(self):
        digest = HistogramDigest(low=1e-4, high=1e3, buckets_per_decade=100)
        assert digest.memory_buckets() < 1000
        for i in range(10_000):
            digest.record((i % 100 + 1) / 1000.0)
        assert digest.memory_buckets() < 1000  # unchanged by volume


class TestMerge:
    def test_merge_equals_union(self):
        a = HistogramDigest()
        b = HistogramDigest()
        union = HistogramDigest()
        rng = random.Random(6)
        for _ in range(2000):
            value = rng.uniform(0.001, 0.5)
            (a if rng.random() < 0.5 else b).record(value)
            union.record(value)
        a.merge(b)
        assert a.count == union.count
        assert a.pct(99) == pytest.approx(union.pct(99))
        assert a.mean == pytest.approx(union.mean)

    def test_merge_geometry_mismatch_rejected(self):
        a = HistogramDigest(low=1e-4)
        b = HistogramDigest(low=1e-3)
        with pytest.raises(ConfigurationError):
            a.merge(b)
