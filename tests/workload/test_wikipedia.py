"""Tests for the Wikipedia-like workload generator (Fig. 4 shape)."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.trace import peak_to_valley, slot_counts
from repro.workload.wikipedia import diurnal_rate, generate_arrivals, generate_trace


class TestDiurnalRate:
    def test_mean_preserved(self):
        rate = diurnal_rate(100.0, peak_to_valley=2.0, period=100.0)
        samples = [rate(t) for t in range(100)]
        assert sum(samples) / len(samples) == pytest.approx(100.0, rel=0.02)

    def test_peak_to_valley_ratio(self):
        rate = diurnal_rate(100.0, peak_to_valley=2.0, period=100.0)
        samples = [rate(t / 10) for t in range(1000)]
        assert max(samples) / min(samples) == pytest.approx(2.0, rel=0.02)

    def test_peak_phase(self):
        rate = diurnal_rate(100.0, peak_to_valley=3.0, period=100.0, peak_at=0.58)
        samples = {t: rate(t) for t in range(100)}
        peak_time = max(samples, key=samples.get)
        assert peak_time == pytest.approx(58, abs=1)

    def test_never_negative_with_noise(self):
        import random

        rate = diurnal_rate(
            10.0, peak_to_valley=10.0, period=50.0, noise=0.5,
            rng=random.Random(1),
        )
        assert all(rate(t) >= 0 for t in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            diurnal_rate(0.0)
        with pytest.raises(ConfigurationError):
            diurnal_rate(10.0, peak_to_valley=0.5)
        with pytest.raises(ConfigurationError):
            diurnal_rate(10.0, period=0.0)


class TestArrivals:
    def test_rate_matches_envelope(self):
        arrivals = generate_arrivals(lambda t: 50.0, duration=100.0, seed=1)
        assert len(arrivals) == pytest.approx(5000, rel=0.05)

    def test_sorted_and_in_range(self):
        arrivals = generate_arrivals(lambda t: 20.0, duration=50.0, seed=2)
        assert arrivals == sorted(arrivals)
        assert all(0 <= t < 50.0 for t in arrivals)

    def test_deterministic_per_seed(self):
        a = generate_arrivals(lambda t: 30.0, 20.0, seed=3)
        b = generate_arrivals(lambda t: 30.0, 20.0, seed=3)
        assert a == b

    def test_zero_rate_yields_nothing(self):
        assert generate_arrivals(lambda t: 0.0, 10.0, rate_ceiling=1.0) == []

    def test_underestimated_ceiling_raises(self):
        with pytest.raises(ConfigurationError):
            generate_arrivals(lambda t: 100.0, 10.0, rate_ceiling=10.0, seed=1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_arrivals(lambda t: 1.0, 0.0)


class TestGenerateTrace:
    def test_trace_has_diurnal_shape(self):
        trace = generate_trace(
            duration=600.0, mean_rate=50.0, num_pages=500,
            peak_to_valley=2.0, seed=4,
        )
        counts = slot_counts(trace, slot_seconds=60.0, num_slots=10)
        assert peak_to_valley(counts) == pytest.approx(2.0, rel=0.35)

    def test_keys_use_prefix_and_catalogue(self):
        trace = generate_trace(60.0, 20.0, num_pages=10, seed=5, key_prefix="pg")
        for record in trace:
            prefix, page = record.key.split(":")
            assert prefix == "pg"
            assert 0 <= int(page) < 10

    def test_popularity_is_skewed(self):
        import collections

        trace = generate_trace(120.0, 100.0, num_pages=5000, alpha=1.0, seed=6)
        counts = collections.Counter(r.key for r in trace)
        top_share = sum(c for _, c in counts.most_common(50)) / len(trace)
        assert top_share > 0.3

    def test_deterministic(self):
        a = generate_trace(30.0, 10.0, num_pages=100, seed=7)
        b = generate_trace(30.0, 10.0, num_pages=100, seed=7)
        assert a == b
