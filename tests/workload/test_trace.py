"""Tests for trace I/O and slotting."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.trace import (
    TraceRecord,
    iter_trace,
    load_trace,
    peak_to_valley,
    save_trace,
    slot_counts,
)


@pytest.fixture
def records():
    return [TraceRecord(i * 0.5, f"page:{i % 3}") for i in range(10)]


class TestFileIO:
    def test_roundtrip(self, tmp_path, records):
        path = tmp_path / "trace.csv"
        assert save_trace(records, path) == 10
        loaded = load_trace(path)
        assert loaded == records

    def test_gzip_roundtrip(self, tmp_path, records):
        path = tmp_path / "trace.csv.gz"
        save_trace(records, path)
        assert load_trace(path) == records
        # really gzipped?
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_iter_trace_streams(self, tmp_path, records):
        path = tmp_path / "trace.csv"
        save_trace(records, path)
        assert list(iter_trace(path)) == records

    def test_rejects_keys_with_commas(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_trace([TraceRecord(0.0, "a,b")], tmp_path / "t.csv")

    def test_malformed_line_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,ok\nnot-a-number,key\n")
        with pytest.raises(ConfigurationError, match="bad.csv:2"):
            load_trace(path)

    def test_unsorted_trace_rejected(self, tmp_path):
        path = tmp_path / "unsorted.csv"
        path.write_text("2.0,a\n1.0,b\n")
        with pytest.raises(ConfigurationError, match="not time-sorted"):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blanks.csv"
        path.write_text("1.0,a\n\n2.0,b\n")
        assert len(load_trace(path)) == 2


class TestSlotting:
    def test_slot_counts(self, records):
        counts = slot_counts(records, slot_seconds=1.0, num_slots=5)
        assert counts == [2, 2, 2, 2, 2]

    def test_out_of_window_ignored(self):
        records = [TraceRecord(-1.0, "a"), TraceRecord(100.0, "b"), TraceRecord(0.5, "c")]
        assert slot_counts(records, 1.0, 2) == [1, 0]

    def test_validation(self, records):
        with pytest.raises(ConfigurationError):
            slot_counts(records, 0.0, 5)
        with pytest.raises(ConfigurationError):
            slot_counts(records, 1.0, 0)


class TestPeakToValley:
    def test_ratio(self):
        assert peak_to_valley([10, 20, 5]) == 4.0

    def test_zero_slots_ignored(self):
        assert peak_to_valley([0, 10, 5]) == 2.0

    def test_all_empty_raises(self):
        with pytest.raises(ConfigurationError):
            peak_to_valley([0, 0])
