"""Tests for the WikiBench trace converter."""

import gzip

import pytest

from repro.workload.wikibench import (
    ConversionStats,
    convert_file,
    convert_lines,
    parse_line,
    title_from_url,
)

LINES = [
    "100 1194892620.000 http://en.wikipedia.org/wiki/Main_Page -",
    "101 1194892620.500 http://en.wikipedia.org/wiki/Alan_Turing -",
    "102 1194892621.000 http://de.wikipedia.org/wiki/Berlin -",
    "103 1194892621.200 http://en.wikipedia.org/wiki/Image:Foo.jpg -",
    "104 1194892621.400 http://upload.wikimedia.org/thumb/x.png -",
    "105 1194892621.600 http://en.wikipedia.org/wiki/Special:Search?q=x -",
    "106 1194892622.000 http://en.wikipedia.org/wiki/Alan_Turing save",
    "garbage line",
    "107 notatime http://en.wikipedia.org/wiki/X -",
]


class TestParsing:
    def test_parse_line(self):
        assert parse_line(LINES[0]) == (
            1194892620.0, "http://en.wikipedia.org/wiki/Main_Page"
        )
        assert parse_line("too few") is None
        assert parse_line("1 notatime url") is None

    def test_title_from_url(self):
        assert title_from_url("http://en.wikipedia.org/wiki/Main_Page") == "Main_Page"
        assert title_from_url("http://de.wikipedia.org/wiki/Berlin") is None
        assert title_from_url("http://en.wikipedia.org/wiki/Image:F.jpg") is None
        assert title_from_url("http://en.wikipedia.org/wiki/A?action=edit") is None
        assert title_from_url("http://en.wikipedia.org/wiki/") is None

    def test_percent_decoding(self):
        title = title_from_url("http://en.wikipedia.org/wiki/Caf%C3%A9")
        assert title == "Café"


class TestConvertLines:
    def test_filters_and_rebases(self):
        stats = ConversionStats()
        records = list(convert_lines(LINES, stats=stats))
        assert [r.key for r in records] == [
            "page:Main_Page", "page:Alan_Turing", "page:Alan_Turing",
        ]
        assert records[0].time == 0.0
        assert records[1].time == pytest.approx(0.5)
        assert records[2].time == pytest.approx(2.0)

    def test_stats_accounting(self):
        stats = ConversionStats()
        list(convert_lines(LINES, stats=stats))
        assert stats.total_lines == len(LINES)
        assert stats.kept == 3
        assert stats.non_english == 2   # de.wikipedia + upload.wikimedia
        assert stats.non_article == 2   # Image: and Special:?q
        assert stats.malformed == 2
        assert stats.keep_ratio == pytest.approx(3 / len(LINES))

    def test_commas_and_spaces_made_csv_safe(self):
        lines = ["1 10.0 http://en.wikipedia.org/wiki/A%2C_B -"]
        records = list(convert_lines(lines))
        assert records[0].key == "page:A%2C_B"
        assert "," not in records[0].key


class TestConvertFile:
    def test_plain_file(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("\n".join(LINES))
        records, stats = convert_file(path)
        assert len(records) == 3
        assert stats.kept == 3

    def test_gzip_file(self, tmp_path):
        path = tmp_path / "trace.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("\n".join(LINES))
        records, _stats = convert_file(path)
        assert len(records) == 3

    def test_converted_trace_roundtrips_through_trace_io(self, tmp_path):
        from repro.workload.trace import load_trace, save_trace

        src = tmp_path / "trace.txt"
        src.write_text("\n".join(LINES))
        records, _ = convert_file(src)
        out = tmp_path / "converted.csv"
        save_trace(records, out)
        assert load_trace(out) == records

    def test_converted_trace_drives_the_harnesses(self, tmp_path):
        # The whole point: a real trace slots into the Fig. 5/6 harnesses.
        from repro.core.router import ProteusRouter
        from repro.experiments.loadbalance import evaluate_load_balance
        from repro.provisioning.policies import ProvisioningSchedule

        src = tmp_path / "trace.txt"
        lines = [
            f"{i} {1000 + i * 0.1:.1f} http://en.wikipedia.org/wiki/Page_{i % 7} -"
            for i in range(300)
        ]
        src.write_text("\n".join(lines))
        records, _ = convert_file(src)
        schedule = ProvisioningSchedule(15.0, [3, 2])
        result = evaluate_load_balance(ProteusRouter(3), records, schedule)
        assert len(result.ratios()) == 2
