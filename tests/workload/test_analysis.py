"""Tests for trace analysis (fitting generator knobs to a trace)."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.analysis import (
    fit_zipf_alpha,
    interarrival_stats,
    rate_envelope,
    summarize,
    working_set_sizes,
)
from repro.workload.trace import TraceRecord
from repro.workload.wikipedia import generate_trace


@pytest.fixture(scope="module")
def synthetic_trace():
    return generate_trace(
        duration=300.0, mean_rate=200.0, num_pages=5000, alpha=0.9,
        peak_to_valley=2.0, seed=33,
    )


class TestZipfFit:
    def test_recovers_the_generating_alpha(self, synthetic_trace):
        fitted = fit_zipf_alpha(synthetic_trace)
        assert fitted == pytest.approx(0.9, abs=0.15)

    def test_uniform_trace_fits_near_zero(self):
        trace = generate_trace(
            duration=120.0, mean_rate=200.0, num_pages=500, alpha=0.0, seed=1
        )
        assert fit_zipf_alpha(trace) < 0.25

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_zipf_alpha([])
        two_keys = [TraceRecord(0.0, "a"), TraceRecord(1.0, "b")]
        with pytest.raises(ConfigurationError):
            fit_zipf_alpha(two_keys)


class TestWorkingSet:
    def test_counts_distinct_per_window(self):
        trace = [
            TraceRecord(0.0, "a"), TraceRecord(1.0, "a"), TraceRecord(2.0, "b"),
            TraceRecord(10.0, "c"),
        ]
        assert working_set_sizes(trace, window_seconds=5.0) == [2, 0, 1]

    def test_empty(self):
        assert working_set_sizes([], 5.0) == []

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            working_set_sizes([TraceRecord(0.0, "a")], 0.0)


class TestInterarrival:
    def test_poisson_cv_near_one(self, synthetic_trace):
        stats = interarrival_stats(synthetic_trace)
        assert stats.cv == pytest.approx(1.0, abs=0.1)
        assert not stats.is_bursty

    def test_regular_arrivals_cv_zero(self):
        trace = [TraceRecord(i * 1.0, "k") for i in range(100)]
        stats = interarrival_stats(trace)
        assert stats.cv == pytest.approx(0.0, abs=1e-9)

    def test_bursty_detected(self):
        trace = []
        t = 0.0
        for burst in range(20):
            for i in range(20):
                trace.append(TraceRecord(t + i * 0.001, f"k{i}"))
            t += 10.0
        assert interarrival_stats(trace).is_bursty

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interarrival_stats([TraceRecord(0.0, "a")])
        with pytest.raises(ConfigurationError):
            interarrival_stats([TraceRecord(1.0, "a"), TraceRecord(0.0, "b")])


class TestEnvelopeAndSummary:
    def test_rate_envelope(self):
        trace = [TraceRecord(t * 0.1, "k") for t in range(100)]  # 10 req/s
        envelope = rate_envelope(trace, window_seconds=1.0)
        assert all(rate == pytest.approx(10.0) for rate in envelope)

    def test_summary_round_trip_with_generator(self, synthetic_trace):
        summary = summarize(synthetic_trace, window_seconds=30.0)
        assert summary.requests == len(synthetic_trace)
        assert summary.mean_rate == pytest.approx(200.0, rel=0.1)
        assert summary.peak_to_valley == pytest.approx(2.0, rel=0.3)
        assert summary.zipf_alpha == pytest.approx(0.9, abs=0.15)
        assert summary.distinct_keys <= 5000

    def test_summary_validation(self):
        with pytest.raises(ConfigurationError):
            summarize([TraceRecord(0.0, "a")])
