"""Tests for the Zipf sampler."""

import collections

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workload.zipf import ZipfSampler


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, alpha=1.0, seed=0)
        for _ in range(200):
            assert 0 <= sampler.sample() < 100

    def test_sample_many_matches_range(self):
        sampler = ZipfSampler(50, seed=1)
        items = sampler.sample_many(5000)
        assert items.min() >= 0 and items.max() < 50

    def test_skew_head_dominates(self):
        sampler = ZipfSampler(10_000, alpha=1.0, seed=2, shuffle=False)
        draws = sampler.sample_many(50_000)
        head_fraction = np.mean(draws < 100)  # top-100 ranks (unshuffled)
        assert head_fraction > 0.4

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, alpha=0.0, seed=3)
        counts = collections.Counter(sampler.sample_many(20_000).tolist())
        values = [counts[i] for i in range(10)]
        assert min(values) / max(values) > 0.85

    def test_popularity_sums_to_one(self):
        sampler = ZipfSampler(200, alpha=0.9)
        total = sum(sampler.popularity(r) for r in range(200))
        assert total == pytest.approx(1.0)

    def test_popularity_is_decreasing_in_rank(self):
        sampler = ZipfSampler(100, alpha=0.9)
        probs = [sampler.popularity(r) for r in range(10)]
        assert probs == sorted(probs, reverse=True)

    def test_shuffle_decorrelates_rank_and_id(self):
        sampler = ZipfSampler(1000, alpha=1.0, seed=4, shuffle=True)
        top = sampler.top_items(10)
        assert top != list(range(10))  # overwhelmingly unlikely if shuffled

    def test_deterministic_per_seed(self):
        a = ZipfSampler(100, seed=7).sample_many(100)
        b = ZipfSampler(100, seed=7).sample_many(100)
        assert (a == b).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ZipfSampler(0)
        with pytest.raises(ConfigurationError):
            ZipfSampler(10, alpha=-1)
        sampler = ZipfSampler(10)
        with pytest.raises(ConfigurationError):
            sampler.popularity(10)
        with pytest.raises(ConfigurationError):
            sampler.sample_many(-1)
