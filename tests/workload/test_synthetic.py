"""Tests for the closed-loop synthetic user model (RBE)."""

import pytest

from repro.errors import ConfigurationError
from repro.workload.synthetic import (
    DEFAULT_PAGES_PER_USER,
    DEFAULT_THINK_TIME,
    SyntheticUser,
    UserPopulation,
)


class TestPaperDefaults:
    def test_paper_parameters(self):
        # Section V-A1: think time 0.5 s; Section VI-C: 50-page sets.
        assert DEFAULT_THINK_TIME == 0.5
        assert DEFAULT_PAGES_PER_USER == 50


class TestSyntheticUser:
    def test_requests_from_personal_set(self):
        user = SyntheticUser(0, pages=["a", "b", "c"], seed=1)
        for _ in range(50):
            assert user.next_key() in ("a", "b", "c")
        assert user.requests_issued == 50

    def test_think_time(self):
        assert SyntheticUser(0, ["a"], think_time=0.25).next_think() == 0.25

    def test_deterministic_sequence(self):
        a = SyntheticUser(5, ["x", "y", "z"], seed=2)
        b = SyntheticUser(5, ["x", "y", "z"], seed=2)
        assert [a.next_key() for _ in range(20)] == [b.next_key() for _ in range(20)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticUser(0, [])
        with pytest.raises(ConfigurationError):
            SyntheticUser(0, ["a"], think_time=-1.0)


class TestUserPopulation:
    def test_spawn_draws_personal_sets(self):
        pop = UserPopulation(1000, pages_per_user=10, seed=1)
        user = pop.spawn()
        assert len(user.pages) == 10
        assert all(p.startswith("page:") for p in user.pages)
        assert len(pop) == 1

    def test_distinct_users_distinct_ids_and_sets(self):
        pop = UserPopulation(10_000, pages_per_user=50, seed=2)
        a, b = pop.spawn(), pop.spawn()
        assert a.user_id != b.user_id
        assert a.pages != b.pages  # independent random selections

    def test_personal_sets_biased_to_popular_pages(self):
        pop = UserPopulation(100_000, pages_per_user=50, alpha=1.1, seed=3)
        import collections

        counts = collections.Counter()
        for _ in range(100):
            counts.update(pop.spawn().pages)
        # Some pages appear in many personal sets (popularity skew).
        assert counts.most_common(1)[0][1] >= 5

    def test_resize_up_and_down(self):
        pop = UserPopulation(1000, seed=4)
        delta = pop.resize_to(5)
        assert len(delta.spawned) == 5 and len(pop) == 5
        delta = pop.resize_to(2)
        assert len(delta.retired) == 3 and len(pop) == 2

    def test_resize_retires_oldest_first(self):
        pop = UserPopulation(1000, seed=5)
        pop.resize_to(3)
        first = pop.active[0]
        delta = pop.resize_to(2)
        assert delta.retired == [first]

    def test_resize_noop(self):
        pop = UserPopulation(1000, seed=6)
        pop.resize_to(3)
        delta = pop.resize_to(3)
        assert not delta.spawned and not delta.retired

    def test_retire_empty_returns_none(self):
        assert UserPopulation(10).retire() is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UserPopulation(0)
        with pytest.raises(ConfigurationError):
            UserPopulation(10, pages_per_user=0)
        with pytest.raises(ConfigurationError):
            UserPopulation(10).resize_to(-1)
