"""Cluster health aggregation: snapshot semantics and delta bookkeeping."""

import pytest

from repro.core.retrieval import DEGRADED_EVENTS, FetchPath, FetchStats
from repro.errors import ConfigurationError
from repro.provisioning.health import ClusterHealthMonitor, HealthSnapshot
from repro.resilience import BreakerSnapshot, BreakerState


def snapshot(**kwargs):
    kwargs.setdefault("at", 0.0)
    return HealthSnapshot(**kwargs)


class TestHealthSnapshot:
    def test_empty_snapshot_is_healthy(self):
        snap = snapshot()
        assert snap.healthy
        assert snap.unhealthy_servers == frozenset()
        assert snap.degraded_rate == 0.0

    def test_unhealthy_is_open_union_failed(self):
        snap = snapshot(
            open_servers=frozenset({1}),
            half_open_servers=frozenset({2}),
            failed_servers=frozenset({3}),
        )
        # HALF_OPEN is probing its way back: not counted as lost capacity.
        assert snap.unhealthy_servers == frozenset({1, 3})
        assert not snap.healthy

    def test_degraded_rate_per_request(self):
        snap = snapshot(
            requests=200,
            degraded={"timeouts": 8, "transport_errors": 2},
        )
        assert snap.degraded_events == 10
        assert snap.degraded_rate == pytest.approx(0.05)
        assert not snap.healthy

    def test_reconnects_mark_unhealthy(self):
        assert not snapshot(reconnects=3).healthy


class FakeStats:
    """Duck-typed FetchStats: cumulative totals the monitor differences."""

    def __init__(self):
        self.total = 0
        self.degraded = {event: 0 for event in DEGRADED_EVENTS}
        self.counts = {path: 0 for path in FetchPath}


class TestMonitorDeltas:
    def test_rejects_empty_fleet(self):
        with pytest.raises(ConfigurationError):
            ClusterHealthMonitor(0)

    def test_windows_are_deltas_not_cumulative(self):
        monitor = ClusterHealthMonitor(4)
        stats = FakeStats()
        monitor.watch_stats(lambda: stats)

        stats.total = 100
        stats.counts[FetchPath.HIT_OLD] = 7
        first = monitor.observe(30.0)
        assert first.requests == 100
        assert first.remap_misses == 7

        stats.total = 160
        stats.counts[FetchPath.HIT_OLD] = 7  # decay finished: no new misses
        second = monitor.observe(60.0)
        assert second.requests == 60
        assert second.remap_misses == 0
        assert monitor.history == [first, second]

    def test_remap_signal_sums_both_paths(self):
        monitor = ClusterHealthMonitor(4)
        stats = FakeStats()
        monitor.watch_stats(lambda: stats)
        stats.counts[FetchPath.HIT_OLD] = 3
        stats.counts[FetchPath.FALSE_POSITIVE_DB] = 2
        assert monitor.observe(1.0).remap_misses == 5

    def test_multiple_stats_sources_add_up(self):
        monitor = ClusterHealthMonitor(4)
        a, b = FakeStats(), FakeStats()
        monitor.watch_stats(lambda: a)
        monitor.watch_stats(lambda: b)
        a.total, b.total = 10, 20
        a.degraded["timeouts"] = 1
        b.degraded["timeouts"] = 2
        snap = monitor.observe(1.0)
        assert snap.requests == 30
        assert snap.degraded["timeouts"] == 3

    def test_breaker_states_partition_servers(self):
        monitor = ClusterHealthMonitor(4)
        states = {
            0: BreakerState.CLOSED,
            1: BreakerState.OPEN,
            2: BreakerState.HALF_OPEN,
        }
        monitor.watch_breakers(lambda: {
            sid: BreakerSnapshot(
                state=state, open_since=None, consecutive_failures=0,
                trips=0, rejections=0,
            )
            for sid, state in states.items()
        })
        snap = monitor.observe(1.0)
        assert snap.open_servers == frozenset({1})
        assert snap.half_open_servers == frozenset({2})
        assert snap.unhealthy_servers == frozenset({1})

    def test_failures_and_transition_probe(self):
        monitor = ClusterHealthMonitor(4)
        monitor.watch_failures(lambda: {2, 3})
        monitor.watch_transition(lambda now: now < 10.0)
        early = monitor.observe(5.0)
        late = monitor.observe(15.0)
        assert early.failed_servers == frozenset({2, 3})
        assert early.in_transition
        assert not late.in_transition

    def test_reconnect_deltas(self):
        monitor = ClusterHealthMonitor(4)
        counter = {"n": 0}
        monitor.watch_reconnects(lambda: counter["n"])
        counter["n"] = 2
        assert monitor.observe(1.0).reconnects == 2
        assert monitor.observe(2.0).reconnects == 0


class TestSimulationFactory:
    def test_wires_cluster_and_webs(self):
        from repro.bloom.config import optimal_config
        from repro.cache.cluster import CacheCluster
        from repro.core.router import ProteusRouter
        from repro.database.cluster import DatabaseCluster
        from repro.web.frontend import WebServer

        cluster = CacheCluster(
            ProteusRouter(3), bloom_config=optimal_config(256),
        )
        database = DatabaseCluster(2)
        webs = [WebServer(i, cluster, database) for i in range(2)]
        monitor = ClusterHealthMonitor.for_simulation(cluster, webs)
        assert monitor.num_servers == 3
        baseline = monitor.observe(0.0)
        assert baseline.requests == 0

        webs[0].fetch("a", now=0.1)
        cluster.fail_server(1, now=0.2)
        snap = monitor.observe(30.0)
        assert snap.requests == 1
        assert snap.failed_servers == frozenset({1})


class TestShedSignal:
    def test_shed_marks_unhealthy_and_sets_rate(self):
        snap = snapshot(requests=200, shed=10)
        assert snap.shed_rate == pytest.approx(0.05)
        assert not snap.healthy
        assert snapshot(requests=0, shed=0).shed_rate == 0.0

    def test_monitor_differences_the_shed_counter(self):
        stats = FetchStats()
        monitor = ClusterHealthMonitor(1)
        monitor.watch_stats(lambda: stats)
        for _ in range(3):
            stats.record(FetchPath.SHED)
        for _ in range(7):
            stats.record(FetchPath.MISS_DB)
        first = monitor.observe(now=1.0)
        assert first.shed == 3
        assert first.requests == 10
        assert first.shed_rate == pytest.approx(0.3)
        # no new sheds: the next window reports zero, not the total
        second = monitor.observe(now=2.0)
        assert second.shed == 0
        assert second.healthy

    def test_queue_depth_is_a_gauge_not_a_delta(self):
        monitor = ClusterHealthMonitor(1)
        depth = {"value": 2.5}
        monitor.watch_queue_depth(lambda now: depth["value"])
        monitor.watch_queue_depth(lambda now: 1.5)  # gauges sum
        assert monitor.observe(now=1.0).queue_depth == pytest.approx(4.0)
        depth["value"] = 0.0
        # same reading twice: a gauge reports the level, not the change
        assert monitor.observe(now=2.0).queue_depth == pytest.approx(1.5)
        assert monitor.observe(now=3.0).queue_depth == pytest.approx(1.5)
