"""Tests for the provisioning actuator."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.cache.server import PowerState
from repro.core.router import ProteusRouter
from repro.errors import ProvisioningError
from repro.provisioning.actuator import ProvisioningActuator
from repro.provisioning.policies import ProvisioningSchedule
from repro.sim.events import EventLoop

CFG = optimal_config(1000)


def cluster(n=4, active=4, ttl=20.0):
    return CacheCluster(
        ProteusRouter(n, ring_size=2 ** 20),
        capacity_bytes=4096 * 100,
        initial_active=active,
        ttl=ttl,
        bloom_config=CFG,
    )


class TestApply:
    def test_smooth_apply_starts_transition(self):
        c = cluster()
        actuator = ProvisioningActuator(c, smooth=True)
        record = actuator.apply(3, now=0.0)
        assert record.n_old == 4 and record.n_new == 3 and record.smooth
        assert c.transitions.in_transition(0.0)

    def test_abrupt_apply_has_no_window(self):
        c = cluster()
        actuator = ProvisioningActuator(c, smooth=False)
        actuator.apply(3, now=0.0)
        assert not c.transitions.in_transition(0.0)
        assert c.server(3).state is PowerState.OFF

    def test_noop_returns_none(self):
        actuator = ProvisioningActuator(cluster(), smooth=True)
        assert actuator.apply(4, now=0.0) is None
        assert actuator.applied == []


class TestInstall:
    def test_schedule_executes_on_loop(self):
        c = cluster(4, active=3, ttl=5.0)
        actuator = ProvisioningActuator(c, smooth=True)
        loop = EventLoop()
        schedule = ProvisioningSchedule(10.0, [3, 2, 2, 4])
        armed = actuator.install(schedule, loop)
        assert armed == [(10.0, 2), (30.0, 4)]
        loop.run_until(schedule.duration)
        assert [r.n_new for r in actuator.applied] == [2, 4]
        assert c.active_count == 4

    def test_ttl_finalization_powers_off(self):
        c = cluster(4, active=4, ttl=5.0)
        actuator = ProvisioningActuator(c, smooth=True)
        loop = EventLoop()
        schedule = ProvisioningSchedule(10.0, [4, 3])
        actuator.install(schedule, loop)
        loop.run_until(14.0)
        assert c.server(3).state is PowerState.DRAINING
        loop.run_until(16.0)  # past 10 + ttl(5)
        assert c.server(3).state is PowerState.OFF

    def test_abrupt_install(self):
        c = cluster(4, active=4)
        actuator = ProvisioningActuator(c, smooth=False)
        loop = EventLoop()
        actuator.install(ProvisioningSchedule(10.0, [4, 2]), loop)
        loop.run_until(10.0)
        assert c.server(2).state is PowerState.OFF
        assert c.server(3).state is PowerState.OFF

    def test_install_into_past_raises(self):
        actuator = ProvisioningActuator(cluster(), smooth=True)
        loop = EventLoop()
        loop.schedule_at(50.0, lambda: None)
        loop.run()
        with pytest.raises(ProvisioningError):
            actuator.install(ProvisioningSchedule(10.0, [4, 3]), loop)
