"""Tests for the delay-feedback controller (paper Section VI knobs)."""

import pytest

from repro.errors import ConfigurationError
from repro.provisioning.controller import (
    DEFAULT_DELAY_BOUND,
    DEFAULT_DELAY_REFERENCE,
    DelayFeedbackController,
    run_feedback_loop,
)


def controller(**kwargs):
    kwargs.setdefault("num_servers", 10)
    return DelayFeedbackController(**kwargs)


class TestPaperKnobs:
    def test_defaults_match_paper(self):
        assert DEFAULT_DELAY_BOUND == 0.5
        assert DEFAULT_DELAY_REFERENCE == 0.4


class TestControllerSteps:
    def test_starts_at_full_fleet(self):
        assert controller().current == 10

    def test_scale_up_above_reference(self):
        ctl = controller()
        ctl._n = 5
        assert ctl.update(0.45, arrival_rate=500) == 6

    def test_aggressive_scale_up_above_bound(self):
        ctl = controller()
        ctl._n = 5
        new = ctl.update(1.5, arrival_rate=500)  # 3x the bound
        assert new >= 7

    def test_scale_down_with_headroom(self):
        ctl = controller(per_server_rate=200.0)
        # Low delay, light load: dropping a server keeps projected delay OK.
        new = ctl.update(0.05, arrival_rate=100.0)
        assert new == 9

    def test_no_scale_down_without_headroom(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 2
        # low measured delay but load too high for 1 server
        assert ctl.update(0.05, arrival_rate=500.0) == 2

    def test_dead_band_holds_steady(self):
        ctl = controller()
        ctl._n = 5
        # between reference*margin and reference: no change
        assert ctl.update(0.35, arrival_rate=100.0) == 5

    def test_never_exceeds_fleet_or_floor(self):
        ctl = controller(min_servers=2)
        ctl._n = 10
        assert ctl.update(5.0, arrival_rate=100.0) == 10
        ctl._n = 2
        assert ctl.update(0.0, arrival_rate=0.0) == 2

    def test_history_recorded(self):
        ctl = controller()
        ctl.update(0.45, 100.0)
        ctl.update(0.45, 100.0)
        assert len(ctl.history) == 3  # initial + 2 updates

    def test_as_schedule(self):
        ctl = controller()
        ctl.update(0.45, 100.0)
        schedule = ctl.as_schedule(slot_seconds=10.0)
        assert schedule.counts == ctl.history

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            controller(num_servers=0)
        with pytest.raises(ConfigurationError):
            controller(delay_reference=0.6, delay_bound=0.5)
        with pytest.raises(ConfigurationError):
            controller(min_servers=11)
        ctl = controller()
        with pytest.raises(ConfigurationError):
            ctl.update(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            ctl.update(0.1, -5.0)


class TestRunFeedbackLoop:
    def test_tracks_diurnal_workload(self):
        # Rates that rise and fall; the schedule should do the same.
        rates = [200, 400, 800, 1200, 1400, 1200, 800, 400, 200, 200]
        schedule = run_feedback_loop(
            rates, num_servers=10, per_server_rate=200.0, slot_seconds=10.0
        )
        assert schedule.num_slots == len(rates)
        peak_slot = rates.index(max(rates))
        assert schedule.counts[peak_slot] >= schedule.counts[0]
        assert max(schedule.counts) > min(schedule.counts)

    def test_initial_override(self):
        schedule = run_feedback_loop(
            [100, 100], num_servers=10, per_server_rate=200.0, initial=3,
            slot_seconds=10.0,
        )
        assert schedule.counts[0] <= 4  # started near 3, not at 10

    def test_all_counts_valid(self):
        schedule = run_feedback_loop(
            [50, 5000, 50], num_servers=6, per_server_rate=100.0,
            slot_seconds=10.0,
        )
        assert all(1 <= c <= 6 for c in schedule.counts)


# --------------------------------------------------------- health feedback


def health(**kwargs):
    from repro.provisioning.health import HealthSnapshot

    kwargs.setdefault("at", 0.0)
    return HealthSnapshot(**kwargs)


class TestHealthFeedback:
    def test_none_health_is_bit_identical(self):
        plain = controller(per_server_rate=200.0)
        closed = controller(per_server_rate=200.0)
        idle = health()
        for delay, rate in [(0.05, 100), (0.45, 900), (0.9, 1500),
                            (0.2, 800), (0.05, 200), (0.05, 100)]:
            plain.update(delay, rate)
            closed.update(delay, rate, health=idle)
        assert plain.history == closed.history
        assert closed.emergency_scale_ups == 0
        assert closed.vetoed_scale_downs == 0

    def test_open_breaker_triggers_emergency_scale_up(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 3
        # 3 active, one tripped: 2 healthy left for a 3-server load, but
        # the measured delay still looks fine (degraded path is fast).
        new = ctl.update(
            0.1, arrival_rate=500.0,
            health=health(open_servers=frozenset({1})),
        )
        assert new == 4  # required ceil(500/180)=3 healthy + 1 lost
        assert ctl.emergency_scale_ups == 1

    def test_crashed_server_counts_like_open_breaker(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 3
        new = ctl.update(
            0.1, arrival_rate=500.0,
            health=health(failed_servers=frozenset({0})),
        )
        assert new == 4
        assert ctl.emergency_scale_ups == 1

    def test_emergency_cannot_run_away(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 6
        # 5 healthy already cover the load: no forced growth, slot after slot.
        snap = health(open_servers=frozenset({1}))
        for _ in range(5):
            new = ctl.update(0.1, arrival_rate=500.0, health=snap)
        assert new == 6
        assert ctl.emergency_scale_ups == 0

    def test_unhealthy_outside_active_set_ignored_for_loss(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 3
        # server 7 is powered off anyway: no capacity was lost.
        new = ctl.update(
            0.1, arrival_rate=500.0,
            health=health(open_servers=frozenset({7})),
        )
        assert new == 3

    def test_degraded_rate_without_culprit_adds_one(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 4
        snap = health(requests=1000, degraded={"timeouts": 100})
        assert ctl.update(0.1, arrival_rate=600.0, health=snap) == 5
        assert ctl.emergency_scale_ups == 1

    def test_scale_down_vetoed_while_unhealthy(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 5
        snap = health(open_servers=frozenset({9}))
        # delay-only would drop a server (light load, low delay).
        assert ctl.update(0.05, arrival_rate=100.0, health=snap) == 5
        assert ctl.vetoed_scale_downs == 1

    def test_scale_down_vetoed_while_in_transition(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 5
        snap = health(in_transition=True)
        assert ctl.update(0.05, arrival_rate=100.0, health=snap) == 5
        assert ctl.vetoed_scale_downs == 1

    def test_scale_down_vetoed_while_remap_decay_active(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 5
        snap = health(requests=100, remap_misses=20)
        assert ctl.update(0.05, arrival_rate=100.0, health=snap) == 5
        assert ctl.vetoed_scale_downs == 1

    def test_straggler_remap_misses_do_not_veto(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 5
        # 2 misses over 1000 requests: below the 5% veto threshold.
        snap = health(requests=1000, remap_misses=2)
        assert ctl.update(0.05, arrival_rate=100.0, health=snap) == 4
        assert ctl.vetoed_scale_downs == 0

    def test_healthy_snapshot_permits_scale_down(self):
        ctl = controller(per_server_rate=200.0)
        ctl._n = 5
        assert ctl.update(0.05, arrival_rate=100.0, health=health()) == 4

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            controller(degraded_rate_threshold=-0.1)
        with pytest.raises(ConfigurationError):
            controller(remap_veto_threshold=-0.1)


class TestShedFeedback:
    """Sustained admission shedding closes the loop: the delay signal
    under-reports a flash crowd (shed requests never post a latency
    sample), so the shed rate must drive scale-up and veto descent."""

    def health(self, requests=100, shed=0):
        from repro.provisioning.health import HealthSnapshot

        return HealthSnapshot(at=0.0, requests=requests, shed=shed)

    def test_shedding_forces_an_emergency_scale_up(self):
        ctl = controller(num_servers=4)
        ctl._n = 2
        # Delay looks calm (hits keep the median low), but 10% of offered
        # load was refused: add a server anyway.
        new = ctl.update(0.1, arrival_rate=100, health=self.health(shed=10))
        assert new == 3
        assert ctl.emergency_scale_ups == 1

    def test_shedding_vetoes_scale_down(self):
        ctl = controller(num_servers=4)  # starts at the full fleet
        new = ctl.update(0.1, arrival_rate=100, health=self.health(shed=10))
        assert new == 4  # wanted 3, vetoed
        assert ctl.vetoed_scale_downs == 1

    def test_shed_below_threshold_changes_nothing(self):
        ctl = controller(num_servers=4)
        quiet = self.health(requests=1000, shed=10)  # 1% < 2% threshold
        new = ctl.update(0.1, arrival_rate=100, health=quiet)
        assert new == 3  # the ordinary scale-down proceeds
        assert ctl.emergency_scale_ups == 0
        assert ctl.vetoed_scale_downs == 0

    def test_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            controller(shed_rate_threshold=-0.1)
