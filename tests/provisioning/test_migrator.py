"""Tests for push-based background migration."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.provisioning.migrator import BackgroundMigrator
from repro.sim.events import EventLoop
from repro.sim.latency import Constant
from repro.web.frontend import FetchPath, WebServer

CFG = optimal_config(2000)


def build(n=4, ttl=30.0):
    cache = CacheCluster(
        ProteusRouter(n, ring_size=2 ** 20), capacity_bytes=4096 * 2000,
        ttl=ttl, bloom_config=CFG,
    )
    db = DatabaseCluster(2, service_model=Constant(0.002))
    web = WebServer(0, cache, db)
    return cache, db, web


def warm(web, keys, start=0.0, step=0.01):
    t = start
    for key in keys:
        web.fetch(key, t)
        t += step
    return t


class TestTick:
    def test_pushes_only_moving_keys(self):
        cache, db, web = build()
        keys = [f"page:{i}" for i in range(100)]
        t = warm(web, keys)
        transition = cache.scale_to(3, now=t)
        migrator = BackgroundMigrator(cache, transition, batch_size=1000)
        migrator.tick(t + 1.0)
        # Every key that moved is now at its new owner.
        for key in keys:
            new_owner = cache.router.route(key, 3)
            assert cache.server(new_owner).store.peek(key) is not None
        # Keys that did not move were not pushed anywhere new.
        movers = [k for k in keys if cache.router.route(k, 4) == 3]
        assert migrator.progress.pushed == len(movers)

    def test_rate_limit(self):
        cache, db, web = build()
        t = warm(web, [f"page:{i}" for i in range(200)])
        transition = cache.scale_to(3, now=t)
        migrator = BackgroundMigrator(cache, transition, batch_size=5)
        assert migrator.tick(t + 1.0) <= 5
        assert migrator.progress.pushed <= 5

    def test_skips_already_migrated(self):
        cache, db, web = build()
        keys = [f"page:{i}" for i in range(100)]
        t = warm(web, keys)
        transition = cache.scale_to(3, now=t)
        # On-demand migration first: touch all keys via Algorithm 2.
        for key in keys:
            web.fetch(key, t + 0.5)
        migrator = BackgroundMigrator(cache, transition, batch_size=1000)
        migrator.tick(t + 1.0)
        assert migrator.progress.pushed == 0
        assert migrator.progress.skipped_present > 0

    def test_push_does_not_overwrite_newer_value(self):
        cache, db, web = build()
        # Deterministically pick a key that moves under 4 -> 3.
        key = next(
            f"page:mv-{i}" for i in range(10_000)
            if cache.router.route(f"page:mv-{i}", 4) == 3
        )
        t = warm(web, [key])
        transition = cache.scale_to(3, now=t)
        new_owner = cache.server(cache.router.route(key, 3))
        new_owner.set(key, "fresh-value", now=t + 0.5)
        BackgroundMigrator(cache, transition, batch_size=10).tick(t + 1.0)
        assert new_owner.get(key, t + 2.0) == "fresh-value"

    def test_only_hot_keys_pushed(self):
        cache, db, web = build(ttl=30.0)
        t = warm(web, [f"old:{i}" for i in range(50)], start=0.0)
        t = warm(web, [f"new:{i}" for i in range(50)], start=100.0)
        transition = cache.scale_to(3, now=t)
        migrator = BackgroundMigrator(
            cache, transition, batch_size=1000, hot_ttl=10.0
        )
        migrator.tick(t + 0.1)
        # Keys idle for ~100 s are beyond the hotness horizon: not pushed.
        pushed_old = [
            f"old:{i}" for i in range(50)
            if cache.router.route(f"old:{i}", 4) == 3
            and cache.server(cache.router.route(f"old:{i}", 3)).store.peek(
                f"old:{i}") is not None
        ]
        assert pushed_old == []

    def test_validation(self):
        cache, db, web = build()
        transition = cache.scale_to(3, now=0.0)
        with pytest.raises(ConfigurationError):
            BackgroundMigrator(cache, transition, batch_size=0)
        with pytest.raises(ConfigurationError):
            BackgroundMigrator(cache, transition, interval=0.0)


class TestInstall:
    def test_event_loop_drains_queue_before_deadline(self):
        cache, db, web = build(ttl=20.0)
        keys = [f"page:{i}" for i in range(150)]
        loop = EventLoop()
        t = warm(web, keys)
        loop.run_until(t)
        transition = cache.scale_to(3, now=t)
        migrator = BackgroundMigrator(
            cache, transition, batch_size=10, interval=0.5
        )
        migrator.install(loop)
        loop.run_until(transition.deadline)
        assert migrator.done
        movers = [k for k in keys if cache.router.route(k, 4) == 3]
        assert migrator.progress.pushed == len(movers)

    def test_post_ttl_requests_hit_after_push(self):
        # The point of the extension: untouched-during-window keys survive.
        cache, db, web = build(ttl=10.0)
        keys = [f"page:{i}" for i in range(120)]
        loop = EventLoop()
        t = warm(web, keys)
        loop.run_until(t)
        transition = cache.scale_to(3, now=t)
        BackgroundMigrator(cache, transition, batch_size=50,
                           interval=0.5).install(loop)
        loop.run_until(transition.deadline + 1.0)
        cache.finalize_expired(transition.deadline + 1.0)
        db_before = db.total_requests()
        paths = [web.fetch(k, transition.deadline + 2.0).path for k in keys]
        assert FetchPath.MISS_DB not in paths
        assert db.total_requests() == db_before

    def test_scale_up_push(self):
        cache, db, web = build()
        cache.abrupt_scale_to(3, now=0.0)
        keys = [f"page:{i}" for i in range(100)]
        t = warm(web, keys, start=1.0)
        transition = cache.scale_to(4, now=t)
        migrator = BackgroundMigrator(cache, transition, batch_size=1000)
        migrator.tick(t + 0.5)
        movers = [k for k in keys if cache.router.route(k, 4) == 3]
        assert migrator.progress.pushed == len(movers)
        for key in movers:
            assert cache.server(3).store.peek(key) is not None
