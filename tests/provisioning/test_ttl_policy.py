"""Drain-window sizing policies: estimator, clamps, registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.provisioning.ttl import (
    TTL_POLICIES,
    AdaptiveTTLPolicy,
    FixedTTLPolicy,
    estimate_half_life,
    make_ttl_policy,
)


def geometric_series(half_life, interval=2.0, intervals=None, initial=1024.0):
    """Per-interval counts of an exact exponential decay, covering enough
    half-lives (~10) that window truncation cannot bias the estimate."""
    if intervals is None:
        intervals = max(4, math.ceil(10 * half_life / interval))
    decay = 0.5 ** (interval / half_life)
    samples = []
    count = initial
    for i in range(1, intervals + 1):
        samples.append((i * interval, count * (1 - decay)))
        count *= decay
    return samples


class TestEstimator:
    def test_recovers_known_half_life(self):
        for half_life in (3.0, 8.0, 20.0):
            estimate = estimate_half_life(geometric_series(half_life))
            assert estimate == pytest.approx(half_life, rel=0.15)

    def test_sparse_tail_of_zeros_still_estimates(self):
        # Late empty intervals are evidence of fast decay, not missing data.
        samples = [(2.0, 30.0), (4.0, 10.0), (6.0, 3.0), (8.0, 0.0),
                   (10.0, 0.0), (12.0, 0.0)]
        estimate = estimate_half_life(samples)
        assert estimate is not None
        assert estimate < 4.0

    def test_unusable_series_returns_none(self):
        assert estimate_half_life([]) is None
        assert estimate_half_life([(2.0, 5.0)]) is None
        assert estimate_half_life([(2.0, 0.0), (4.0, 0.0)]) is None
        assert estimate_half_life([(2.0, 5.0), (4.0, -1.0)]) is None

    def test_not_decaying_returns_none(self):
        flat = [(2.0, 10.0), (4.0, 10.0), (6.0, 10.0), (8.0, 10.0)]
        growing = [(2.0, 1.0), (4.0, 4.0), (6.0, 16.0)]
        assert estimate_half_life(flat) is None
        assert estimate_half_life(growing) is None

    def test_order_independent(self):
        samples = geometric_series(6.0)
        assert estimate_half_life(list(reversed(samples))) == (
            estimate_half_life(samples)
        )


class TestFixedPolicy:
    def test_constant_whatever_the_transition(self):
        policy = FixedTTLPolicy(ttl=42.0)
        assert policy.ttl_for() == 42.0
        assert policy.ttl_for(8, 3) == 42.0

    def test_observe_is_inert(self):
        policy = FixedTTLPolicy()
        assert policy.observe_decay(geometric_series(5.0)) is None
        assert policy.ttl_for() == policy.ttl

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ConfigurationError):
            FixedTTLPolicy(ttl=0.0)


class TestAdaptivePolicy:
    def test_default_until_first_observation(self):
        policy = AdaptiveTTLPolicy(default_ttl=60.0)
        assert policy.ttl_for() == 60.0

    def test_sizes_from_observed_decay(self):
        policy = AdaptiveTTLPolicy(
            min_ttl=1.0, max_ttl=1000.0, target_residual=0.05
        )
        half_life = policy.observe_decay(geometric_series(8.0))
        assert half_life == pytest.approx(8.0, rel=0.15)
        expected = half_life * math.log2(1 / 0.05)
        assert policy.ttl_for() == pytest.approx(expected)

    def test_unusable_observation_keeps_default(self):
        policy = AdaptiveTTLPolicy(default_ttl=60.0)
        assert policy.observe_decay([(2.0, 0.0), (4.0, 0.0)]) is None
        assert policy.ttl_for() == 60.0

    def test_clamped_to_bounds(self):
        policy = AdaptiveTTLPolicy(min_ttl=20.0, max_ttl=90.0)
        policy.record_half_life(0.1)
        assert policy.ttl_for() == 20.0
        policy.record_half_life(1e6)
        policy.record_half_life(1e6)
        assert policy.ttl_for() == 90.0

    def test_median_resists_one_anomaly(self):
        policy = AdaptiveTTLPolicy(min_ttl=1.0, max_ttl=10_000.0)
        for _ in range(5):
            policy.record_half_life(10.0)
        before = policy.ttl_for()
        policy.record_half_life(5000.0)
        assert policy.ttl_for() == before

    def test_window_forgets_old_transitions(self):
        policy = AdaptiveTTLPolicy(window=2, min_ttl=1.0, max_ttl=10_000.0)
        policy.record_half_life(100.0)
        policy.record_half_life(10.0)
        policy.record_half_life(10.0)  # evicts the 100.0
        assert policy.ttl_for() == pytest.approx(
            10.0 * math.log2(1 / policy.target_residual)
        )

    def test_record_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTTLPolicy().record_half_life(0.0)

    @pytest.mark.parametrize("kwargs", [
        {"min_ttl": 0.0},
        {"min_ttl": 50.0, "max_ttl": 10.0},
        {"default_ttl": -1.0},
        {"target_residual": 0.0},
        {"target_residual": 1.0},
        {"window": 0},
    ])
    def test_rejects_bad_configuration(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveTTLPolicy(**kwargs)


class TestRegistry:
    def test_both_policies_registered(self):
        assert set(TTL_POLICIES.names) >= {"fixed", "adaptive"}

    def test_make_by_name(self):
        assert isinstance(make_ttl_policy("fixed", ttl=10.0), FixedTTLPolicy)
        assert isinstance(make_ttl_policy("adaptive"), AdaptiveTTLPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            make_ttl_policy("exponential-backoff")
