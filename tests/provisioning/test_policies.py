"""Tests for provisioning schedules and policies."""

import pytest

from repro.errors import ConfigurationError, ProvisioningError
from repro.provisioning.policies import (
    ProvisioningSchedule,
    limit_step_size,
    load_proportional_schedule,
    static_schedule,
)


class TestSchedule:
    def test_slot_lookup(self):
        schedule = ProvisioningSchedule(10.0, [3, 2, 4])
        assert schedule.n_at(0.0) == 3
        assert schedule.n_at(9.99) == 3
        assert schedule.n_at(10.0) == 2
        assert schedule.n_at(25.0) == 4

    def test_clamps_out_of_range_times(self):
        schedule = ProvisioningSchedule(10.0, [3, 2])
        assert schedule.n_at(-5.0) == 3
        assert schedule.n_at(1000.0) == 2

    def test_transitions(self):
        schedule = ProvisioningSchedule(10.0, [3, 3, 2, 4, 4])
        assert schedule.transitions() == [(20.0, 3, 2), (30.0, 2, 4)]

    def test_duration(self):
        assert ProvisioningSchedule(30.0, [1, 1]).duration == 60.0

    def test_server_slot_total(self):
        assert ProvisioningSchedule(10.0, [3, 2, 4]).server_slot_total() == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ProvisioningSchedule(0.0, [1])
        with pytest.raises(ConfigurationError):
            ProvisioningSchedule(10.0, [])
        with pytest.raises(ProvisioningError):
            ProvisioningSchedule(10.0, [1, 0])


class TestStaticSchedule:
    def test_all_on(self):
        schedule = static_schedule(8, 5, slot_seconds=10.0)
        assert schedule.counts == [8] * 5
        assert schedule.transitions() == []


class TestLoadProportional:
    def test_sizing(self):
        schedule = load_proportional_schedule(
            [100, 250, 400], per_server_capacity=100, num_servers=10,
            slot_seconds=10.0,
        )
        assert schedule.counts == [1, 3, 4]

    def test_clamping(self):
        schedule = load_proportional_schedule(
            [0, 10_000], per_server_capacity=100, num_servers=5,
            min_servers=2, slot_seconds=10.0,
        )
        assert schedule.counts == [2, 5]

    def test_tracks_workload_shape(self):
        workload = [100, 200, 400, 200, 100]
        schedule = load_proportional_schedule(
            workload, per_server_capacity=50, num_servers=10, slot_seconds=10.0
        )
        assert schedule.counts[2] == max(schedule.counts)
        assert schedule.counts[0] == min(schedule.counts)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            load_proportional_schedule([1], per_server_capacity=0, num_servers=2)
        with pytest.raises(ConfigurationError):
            load_proportional_schedule([1], 10, num_servers=2, min_servers=3)


class TestLimitStepSize:
    def test_clamps_jumps(self):
        schedule = ProvisioningSchedule(10.0, [2, 6, 6, 1])
        smoothed = limit_step_size(schedule, max_step=1)
        assert smoothed.counts == [2, 3, 4, 3]

    def test_already_smooth_unchanged(self):
        schedule = ProvisioningSchedule(10.0, [2, 3, 2])
        assert limit_step_size(schedule).counts == [2, 3, 2]

    def test_larger_steps(self):
        schedule = ProvisioningSchedule(10.0, [2, 8])
        assert limit_step_size(schedule, max_step=3).counts == [2, 5]

    def test_rejects_bad_step(self):
        with pytest.raises(ConfigurationError):
            limit_step_size(ProvisioningSchedule(10.0, [1, 2]), max_step=0)
