"""Tests for the provisioning-order tooling (Section III-A)."""

import pytest

from repro.errors import ConfigurationError
from repro.power.model import ServerPowerModel
from repro.provisioning.order import (
    OrderedFleet,
    ServerSpec,
    efficiency_order,
    random_order,
)

EFFICIENT = ServerSpec("new-gen", capacity=300, power=ServerPowerModel(5, 60, 100))
MIDDLING = ServerSpec("mid-gen", capacity=200, power=ServerPowerModel(5, 70, 110))
GUZZLER = ServerSpec("old-gen", capacity=150, power=ServerPowerModel(5, 90, 150))


class TestServerSpec:
    def test_efficiency(self):
        assert EFFICIENT.efficiency == pytest.approx(3.0)
        assert GUZZLER.efficiency == pytest.approx(1.0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            ServerSpec("bad", capacity=0)


class TestOrders:
    def test_efficiency_order_descends(self):
        order = efficiency_order([GUZZLER, EFFICIENT, MIDDLING])
        assert order == [1, 2, 0]

    def test_ties_broken_by_capacity_then_position(self):
        a = ServerSpec("a", capacity=100, power=ServerPowerModel(5, 60, 100))
        b = ServerSpec("b", capacity=200, power=ServerPowerModel(5, 60, 200))
        # same efficiency (1.0): larger capacity first
        assert efficiency_order([a, b]) == [1, 0]

    def test_random_order_is_permutation_and_seeded(self):
        order = random_order(6, seed=3)
        assert sorted(order) == list(range(6))
        assert random_order(6, seed=3) == order

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            efficiency_order([])
        with pytest.raises(ConfigurationError):
            random_order(0)


class TestOrderedFleet:
    @pytest.fixture
    def fleet(self):
        return OrderedFleet([GUZZLER, EFFICIENT, MIDDLING])

    def test_default_order_is_efficiency(self, fleet):
        assert fleet.spec_of(0) is EFFICIENT
        assert fleet.spec_of(2) is GUZZLER

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            OrderedFleet([EFFICIENT, GUZZLER], order=[0, 0])

    def test_active_capacity(self, fleet):
        assert fleet.active_capacity(1) == 300
        assert fleet.active_capacity(3) == 650

    def test_servers_for_load(self, fleet):
        assert fleet.servers_for_load(250) == 1
        assert fleet.servers_for_load(400) == 2
        assert fleet.servers_for_load(650) == 3
        with pytest.raises(ConfigurationError):
            fleet.servers_for_load(651)

    def test_power_draw_off_servers_standby(self, fleet):
        idle_all_off_but_one = fleet.power_draw(1, load=0.0)
        assert idle_all_off_but_one == pytest.approx(60 + 5 + 5)

    def test_power_draw_load_split_evenly(self, fleet):
        # 2 active, load 300 -> 150 each; EFFICIENT at 50% util, MIDDLING 75%.
        watts = fleet.power_draw(2, load=300.0)
        expected = (60 + 0.5 * 40) + (70 + 0.75 * 40) + 5
        assert watts == pytest.approx(expected)

    def test_efficiency_order_beats_reverse_order_on_energy(self):
        specs = [GUZZLER, EFFICIENT, MIDDLING]
        loads = [120.0, 260.0, 420.0, 260.0, 120.0]
        good = OrderedFleet(specs)  # efficiency order
        bad = OrderedFleet(specs, order=list(reversed(efficiency_order(specs))))
        schedule_good = good.schedule_for(loads, slot_seconds=60.0)
        schedule_bad = bad.schedule_for(loads, slot_seconds=60.0)
        energy_good = good.energy_joules(schedule_good, loads)
        energy_bad = bad.energy_joules(schedule_bad, loads)
        # Section III-A: decreasing-efficiency order saves energy.
        assert energy_good < energy_bad

    def test_schedule_for_respects_min(self, fleet):
        schedule = fleet.schedule_for([0.0, 10.0], slot_seconds=10.0, min_servers=2)
        assert schedule.counts == [2, 2]

    def test_energy_requires_matching_loads(self, fleet):
        schedule = fleet.schedule_for([100.0], slot_seconds=10.0)
        with pytest.raises(ConfigurationError):
            fleet.energy_joules(schedule, [100.0, 200.0])
