"""Tests for the cache server (digest consistency + power lifecycle)."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.server import CacheServer, PowerState
from repro.errors import CacheError, ConfigurationError
from tests.conftest import make_keys

CFG = optimal_config(2000)


def server(**kwargs):
    kwargs.setdefault("bloom_config", CFG)
    return CacheServer(0, **kwargs)


class TestDigestConsistency:
    def test_digest_tracks_sets(self):
        srv = server()
        srv.set("k", "v")
        assert "k" in srv.digest

    def test_digest_tracks_deletes(self):
        srv = server()
        srv.set("k", "v")
        srv.delete("k")
        assert "k" not in srv.digest

    def test_digest_tracks_evictions(self):
        srv = server(capacity_bytes=4096 * 2)
        srv.set("a", 1)
        srv.set("b", 2)
        srv.set("c", 3)  # evicts a
        assert "a" not in srv.digest
        assert "b" in srv.digest and "c" in srv.digest

    def test_digest_tracks_expiry(self):
        srv = server()
        srv.set("k", "v", now=0.0, ttl=5.0)
        srv.get("k", now=6.0)  # lazy expire
        assert "k" not in srv.digest

    def test_digest_consistent_after_churn(self):
        srv = server(capacity_bytes=4096 * 50)
        keys = make_keys(300)
        for i, key in enumerate(keys):
            srv.set(key, i, now=float(i))
        # exactly the store's contents are in the digest
        in_store = set(srv.store.keys())
        assert all(k in srv.digest for k in in_store)
        assert srv.digest.count == len(in_store)

    def test_snapshot_digest_roundtrip(self):
        srv = server()
        srv.set("hot", 1)
        snap = srv.snapshot_digest()
        assert "hot" in snap
        srv.set("later", 2)
        assert "later" not in snap  # snapshot frozen at broadcast time


class TestPowerLifecycle:
    def test_initially_on(self):
        assert server().state is PowerState.ON

    def test_initially_off(self):
        srv = CacheServer(1, bloom_config=CFG, initially_on=False)
        assert srv.state is PowerState.OFF

    def test_off_server_refuses_requests(self):
        srv = CacheServer(1, bloom_config=CFG, initially_on=False)
        with pytest.raises(CacheError):
            srv.get("k")
        with pytest.raises(CacheError):
            srv.set("k", 1)
        with pytest.raises(CacheError):
            srv.delete("k")

    def test_power_off_loses_data_and_digest(self):
        srv = server()
        srv.set("k", "v")
        srv.power_off(10.0)
        assert srv.state is PowerState.OFF
        srv.power_on(20.0)
        assert srv.get("k") is None  # cold start
        assert "k" not in srv.digest

    def test_draining_still_serves(self):
        srv = server()
        srv.set("k", "v")
        srv.begin_drain()
        assert srv.state is PowerState.DRAINING
        assert srv.state.serves_requests
        assert srv.get("k") == "v"

    def test_drain_requires_on(self):
        srv = CacheServer(1, bloom_config=CFG, initially_on=False)
        with pytest.raises(CacheError):
            srv.begin_drain()

    def test_power_cycles_counted(self):
        srv = server()
        srv.power_off()
        srv.power_on()
        assert srv.power_cycles == 2

    def test_power_on_when_on_is_noop(self):
        srv = server()
        srv.set("k", "v")
        srv.power_on()
        assert srv.get("k") == "v"  # no flush
        assert srv.power_cycles == 0

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigurationError):
            CacheServer(-1, bloom_config=CFG)


class TestDefaults:
    def test_default_bloom_sized_from_capacity(self):
        srv = CacheServer(0, capacity_bytes=4096 * 5000)
        assert srv.bloom_config.kappa == 5000

    def test_stats_accessible(self):
        srv = server()
        srv.set("k", 1)
        srv.get("k")
        assert srv.stats.hits == 1
