"""Tests for the slab allocator and slab-backed store."""

import pytest

from repro.bloom.counting import CountingBloomFilter
from repro.cache.slabs import (
    DEFAULT_PAGE_SIZE,
    SlabAllocator,
    SlabStore,
)
from repro.errors import CapacityError, ConfigurationError

MB = 1 << 20


class TestAllocatorLadder:
    def test_chunk_sizes_grow_geometrically(self):
        alloc = SlabAllocator(8 * MB, min_chunk=100, growth=1.5)
        sizes = [c.chunk_size for c in alloc.classes]
        assert sizes[0] == 100
        for a, b in zip(sizes, sizes[1:-1]):
            assert b == max(a + 1, int(a * 1.5))
        assert sizes[-1] == DEFAULT_PAGE_SIZE  # the max-item class

    def test_class_for_picks_smallest_fitting(self):
        alloc = SlabAllocator(8 * MB, min_chunk=100, growth=2.0)
        assert alloc.class_for(50).chunk_size == 100
        assert alloc.class_for(100).chunk_size == 100
        assert alloc.class_for(101).chunk_size == 200

    def test_oversized_item_rejected(self):
        alloc = SlabAllocator(8 * MB, max_item_size=1024)
        with pytest.raises(CapacityError):
            alloc.class_for(2048)

    def test_overhead_factor(self):
        alloc = SlabAllocator(8 * MB, min_chunk=100, growth=2.0)
        assert alloc.overhead_factor(150) == pytest.approx(200 / 150)
        assert alloc.overhead_factor(0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SlabAllocator(100)  # smaller than a page
        with pytest.raises(ConfigurationError):
            SlabAllocator(8 * MB, growth=1.0)
        with pytest.raises(ConfigurationError):
            SlabAllocator(8 * MB, min_chunk=0)


class TestAllocatorPages:
    def test_allocate_grows_class_by_pages(self):
        alloc = SlabAllocator(4 * MB, min_chunk=1024, growth=2.0)
        slab_class = alloc.allocate(1000)
        assert slab_class.pages == 1
        assert alloc.pages_free == 3
        # Fill the page: no new page needed until chunks run out.
        for _ in range(slab_class.chunks_per_page - 1):
            alloc.allocate(1000)
        assert slab_class.pages == 1
        alloc.allocate(1000)
        assert slab_class.pages == 2

    def test_release_returns_chunk(self):
        alloc = SlabAllocator(4 * MB, min_chunk=1024)
        slab_class = alloc.allocate(1000)
        used = slab_class.used_chunks
        alloc.release(1000)
        assert slab_class.used_chunks == used - 1

    def test_release_on_empty_class_raises(self):
        alloc = SlabAllocator(4 * MB)
        with pytest.raises(ConfigurationError):
            alloc.release(100)

    def test_exhaustion_raises(self):
        alloc = SlabAllocator(1 * MB, min_chunk=512 * 1024, growth=2.0)
        alloc.allocate(500 * 1024)
        alloc.allocate(500 * 1024)  # fills the single page (2 chunks)
        with pytest.raises(CapacityError):
            alloc.allocate(500 * 1024)

    def test_stats_lists_only_assigned_classes(self):
        alloc = SlabAllocator(4 * MB, min_chunk=1024, growth=2.0)
        alloc.allocate(1000)
        stats = alloc.stats()
        assert len(stats) == 1
        assert stats[0]["used_chunks"] == 1


class TestSlabStore:
    def test_set_get_roundtrip(self):
        store = SlabStore(4 * MB)
        store.set("k", b"hello", now=0.0)
        assert store.get("k", 1.0) == b"hello"
        assert len(store) == 1

    def test_eviction_is_within_class(self):
        # Two classes: small items and big items.  Exhausting the small
        # class must evict small items, never big ones (slab calcification).
        store = SlabStore(2 * MB, min_chunk=256 * 1024, growth=2.0)
        store.set("big", b"x" * 600_000, now=0.0)     # 1MB-chunk class
        small_chunk = 256 * 1024
        per_page = DEFAULT_PAGE_SIZE // small_chunk   # 4 chunks
        for i in range(per_page):
            store.set(f"small{i}", b"y" * 100_000, now=float(i + 1))
        # Small class is full (1 page) and no pages remain (big took one).
        store.set("small-extra", b"y" * 100_000, now=100.0)
        assert "big" in store                 # untouched
        assert "small0" not in store          # LRU of its own class evicted
        assert store.stats.evictions == 1

    def test_overwrite_releases_old_chunk(self):
        store = SlabStore(2 * MB, min_chunk=1024, growth=2.0)
        store.set("k", b"a" * 1000, now=0.0)
        used = store.used_bytes
        store.set("k", b"b" * 1000, now=1.0)
        assert store.used_bytes == used
        assert store.stats.items == 1

    def test_item_moving_between_classes(self):
        store = SlabStore(4 * MB, min_chunk=1024, growth=2.0)
        store.set("k", b"a" * 1000, now=0.0)   # 1KB class
        store.set("k", b"a" * 2000, now=1.0)   # 2KB class
        assert store.get("k", 2.0) == b"a" * 2000
        stats = {s["chunk_size"]: s["used_chunks"] for s in store.slab_stats()}
        assert stats[1024] == 0
        assert stats[2048] == 1

    def test_ttl_expiry(self):
        store = SlabStore(2 * MB)
        store.set("k", b"v", now=0.0, ttl=5.0)
        assert store.get("k", 6.0) is None
        assert store.stats.expirations == 1

    def test_delete_and_flush(self):
        store = SlabStore(2 * MB)
        store.set("a", b"1", now=0.0)
        store.set("b", b"2", now=0.0)
        assert store.delete("a") is True
        assert store.flush() == 1
        assert len(store) == 0
        assert store.used_bytes == 0

    def test_digest_hooks_compatible(self):
        # The whole point of matching KeyValueStore's hook interface.
        store = SlabStore(2 * MB)
        digest = CountingBloomFilter(4096, counter_bits=8, num_hashes=4)
        store.link_hooks.append(lambda item: digest.add(item.key))
        store.unlink_hooks.append(lambda item, reason: digest.remove(item.key))
        store.set("k1", b"v", now=0.0)
        store.set("k2", b"v", now=0.0)
        store.delete("k1")
        assert "k1" not in digest
        assert "k2" in digest
        assert digest.count == 1

    def test_chunk_overhead_visible_in_used_bytes(self):
        store = SlabStore(4 * MB, min_chunk=1024, growth=2.0)
        store.set("k", b"x" * 600, now=0.0)  # fits the 1KB chunk
        assert store.used_bytes == 1024      # chunk, not payload, accounted
