"""Tests for cache items."""

import pytest

from repro.cache.item import DEFAULT_ITEM_SIZE, CacheItem


class TestCacheItem:
    def test_defaults(self):
        item = CacheItem("k", "v")
        assert item.size == DEFAULT_ITEM_SIZE == 4096
        assert item.expires_at is None

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            CacheItem("k", "v", size=-1)

    def test_last_access_clamped_to_creation(self):
        item = CacheItem("k", "v", created_at=10.0)
        assert item.last_access == 10.0

    def test_expiry(self):
        item = CacheItem("k", "v", created_at=0.0, expires_at=5.0)
        assert not item.expired(4.9)
        assert item.expired(5.0)

    def test_no_expiry_never_expires(self):
        assert not CacheItem("k", "v").expired(1e12)

    def test_touch_updates_last_access(self):
        item = CacheItem("k", "v", created_at=0.0)
        item.touch(7.0)
        assert item.last_access == 7.0
        assert item.idle_time(10.0) == 3.0

    def test_hotness_is_the_section2_definition(self):
        # "hot" = touched at least once during the past TTL seconds
        item = CacheItem("k", "v", created_at=0.0)
        item.touch(100.0)
        assert item.is_hot(now=150.0, ttl=60.0)
        assert not item.is_hot(now=161.0, ttl=60.0)
