"""Tests for eviction policies."""

import pytest

from repro.cache.eviction import (
    FIFOPolicy,
    LRUPolicy,
    NoEvictionPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import CapacityError


class TestLRU:
    def test_victim_is_least_recent(self):
        policy = LRUPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        assert policy.victim() == "a"

    def test_access_refreshes(self):
        policy = LRUPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        policy.on_access("a")
        assert policy.victim() == "b"

    def test_unlink_removes(self):
        policy = LRUPolicy()
        policy.on_link("a")
        policy.on_link("b")
        policy.on_unlink("a")
        assert policy.victim() == "b"

    def test_empty_victim_raises(self):
        with pytest.raises(CapacityError):
            LRUPolicy().victim()

    def test_reset(self):
        policy = LRUPolicy()
        policy.on_link("a")
        policy.reset()
        with pytest.raises(CapacityError):
            policy.victim()


class TestFIFO:
    def test_victim_is_oldest_insert(self):
        policy = FIFOPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        policy.on_access("a")  # access must not refresh FIFO order
        assert policy.victim() == "a"

    def test_unlink_tolerates_unknown(self):
        FIFOPolicy().on_unlink("ghost")  # no exception


class TestRandom:
    def test_victim_among_tracked(self):
        policy = RandomPolicy(seed=1)
        keys = {f"k{i}" for i in range(10)}
        for key in keys:
            policy.on_link(key)
        assert policy.victim() in keys

    def test_deterministic_with_seed(self):
        def build():
            p = RandomPolicy(seed=42)
            for i in range(10):
                p.on_link(f"k{i}")
            return p.victim()

        assert build() == build()

    def test_unlink_swap_remove_preserves_others(self):
        policy = RandomPolicy(seed=3)
        for i in range(5):
            policy.on_link(f"k{i}")
        policy.on_unlink("k2")
        for _ in range(20):
            assert policy.victim() != "k2"

    def test_empty_raises(self):
        with pytest.raises(CapacityError):
            RandomPolicy().victim()


class TestNoEviction:
    def test_always_refuses(self):
        policy = NoEvictionPolicy()
        policy.on_link("a")
        with pytest.raises(CapacityError):
            policy.victim()


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [("lru", LRUPolicy), ("fifo", FIFOPolicy), ("random", RandomPolicy),
         ("none", NoEvictionPolicy), ("LRU", LRUPolicy)],
    )
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            make_policy("arc")
