"""Tests for the bounded key-value store and its link/unlink hooks."""

import pytest

from repro.cache.eviction import NoEvictionPolicy
from repro.cache.store import (
    REASON_DELETE,
    REASON_EVICT,
    REASON_EXPIRE,
    REASON_FLUSH,
    KeyValueStore,
)
from repro.errors import CapacityError, ConfigurationError


def hooked_store(**kwargs):
    store = KeyValueStore(**kwargs)
    events = []
    store.link_hooks.append(lambda item: events.append(("link", item.key)))
    store.unlink_hooks.append(
        lambda item, reason: events.append(("unlink", item.key, reason))
    )
    return store, events


class TestBasicOps:
    def test_set_get_roundtrip(self):
        store = KeyValueStore()
        store.set("k", "v", now=1.0)
        assert store.get("k", now=2.0) == "v"

    def test_get_missing_returns_none(self):
        store = KeyValueStore()
        assert store.get("nope") is None
        assert store.stats.misses == 1

    def test_contains_and_len(self):
        store = KeyValueStore()
        store.set("a", 1)
        assert "a" in store and "b" not in store
        assert len(store) == 1

    def test_delete(self):
        store = KeyValueStore()
        store.set("k", "v")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.get("k") is None

    def test_overwrite_replaces_value_and_accounting(self):
        store = KeyValueStore()
        store.set("k", "v1", size=100)
        store.set("k", "v2", size=300)
        assert store.get("k") == "v2"
        assert store.used_bytes == 300
        assert store.stats.items == 1
        assert store.stats.bytes_stored == 300

    def test_peek_does_not_touch(self):
        store = KeyValueStore()
        store.set("k", "v", now=0.0)
        before_gets = store.stats.gets
        item = store.peek("k")
        assert item.value == "v"
        assert store.stats.gets == before_gets

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            KeyValueStore(capacity_bytes=0)


class TestExpiry:
    def test_lazy_expiry_on_get(self):
        store = KeyValueStore()
        store.set("k", "v", now=0.0, ttl=10.0)
        assert store.get("k", now=5.0) == "v"
        assert store.get("k", now=10.0) is None
        assert store.stats.expirations == 1

    def test_delete_of_expired_reports_absent(self):
        store = KeyValueStore()
        store.set("k", "v", now=0.0, ttl=1.0)
        assert store.delete("k", now=2.0) is False
        assert store.stats.expirations == 1

    def test_purge_expired(self):
        store = KeyValueStore()
        for i in range(5):
            store.set(f"k{i}", i, now=0.0, ttl=10.0)
        store.set("fresh", 1, now=0.0)
        assert store.purge_expired(now=11.0) == 5
        assert len(store) == 1


class TestEviction:
    def test_lru_eviction_at_capacity(self):
        store = KeyValueStore(capacity_bytes=300)
        store.set("a", 1, size=100, now=0.0)
        store.set("b", 2, size=100, now=1.0)
        store.set("c", 3, size=100, now=2.0)
        store.get("a", now=3.0)  # refresh a; b becomes LRU
        store.set("d", 4, size=100, now=4.0)
        assert "b" not in store
        assert all(k in store for k in ("a", "c", "d"))
        assert store.stats.evictions == 1

    def test_oversized_item_rejected(self):
        store = KeyValueStore(capacity_bytes=100)
        with pytest.raises(CapacityError):
            store.set("big", b"x", size=101)

    def test_expired_purged_before_eviction(self):
        store = KeyValueStore(capacity_bytes=200)
        store.set("stale", 1, size=100, now=0.0, ttl=5.0)
        store.set("live", 2, size=100, now=1.0)
        store.set("new", 3, size=100, now=10.0)  # stale is expired now
        assert "live" in store  # survived because stale was purged instead
        assert store.stats.expirations == 1
        assert store.stats.evictions == 0

    def test_no_eviction_policy_overflows(self):
        store = KeyValueStore(capacity_bytes=100, policy=NoEvictionPolicy())
        store.set("a", 1, size=100)
        with pytest.raises(CapacityError):
            store.set("b", 2, size=100)

    def test_used_bytes_tracks(self):
        store = KeyValueStore(capacity_bytes=1000)
        store.set("a", 1, size=400)
        store.set("b", 2, size=400)
        assert store.used_bytes == 800
        store.delete("a")
        assert store.used_bytes == 400


class TestHooks:
    def test_link_unlink_fire_once_per_item(self):
        store, events = hooked_store()
        store.set("k", "v")
        store.delete("k")
        assert events == [("link", "k"), ("unlink", "k", REASON_DELETE)]

    def test_overwrite_fires_unlink_then_link(self):
        store, events = hooked_store()
        store.set("k", "v1")
        store.set("k", "v2")
        assert events == [
            ("link", "k"),
            ("unlink", "k", REASON_DELETE),
            ("link", "k"),
        ]

    def test_eviction_reason(self):
        store, events = hooked_store(capacity_bytes=100)
        store.set("a", 1, size=100)
        store.set("b", 2, size=100)
        assert ("unlink", "a", REASON_EVICT) in events

    def test_expiry_reason(self):
        store, events = hooked_store()
        store.set("k", "v", now=0.0, ttl=1.0)
        store.get("k", now=2.0)
        assert ("unlink", "k", REASON_EXPIRE) in events

    def test_flush_reason_and_reset(self):
        store, events = hooked_store()
        store.set("a", 1)
        store.set("b", 2)
        assert store.flush() == 2
        assert len(store) == 0
        assert store.used_bytes == 0
        reasons = [e[2] for e in events if e[0] == "unlink"]
        assert reasons == [REASON_FLUSH, REASON_FLUSH]


class TestHotKeys:
    def test_hot_keys_definition(self):
        store = KeyValueStore()
        store.set("old", 1, now=0.0)
        store.set("new", 2, now=120.0)
        store.get("old", now=95.0)  # touch old at 95
        hot = store.hot_keys(now=130.0, ttl=40.0)
        assert set(hot) == {"old", "new"}
        hot_late = store.hot_keys(now=150.0, ttl=40.0)
        assert set(hot_late) == {"new"}


class TestStatsIntegration:
    def test_hit_ratio(self):
        store = KeyValueStore()
        store.set("k", "v")
        store.get("k")
        store.get("absent")
        assert store.stats.hit_ratio == 0.5

    def test_requests_counts_all_ops(self):
        store = KeyValueStore()
        store.set("k", "v")
        store.get("k")
        store.delete("k")
        assert store.stats.requests == 3

    def test_snapshot_and_diff(self):
        store = KeyValueStore()
        store.set("a", 1)
        snap = store.stats.snapshot()
        store.set("b", 2)
        store.get("a")
        delta = store.stats.diff(snap)
        assert delta.sets == 1
        assert delta.gets == 1
