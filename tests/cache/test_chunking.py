"""Tests for fixed-size object chunking (the Section II pieces assumption)."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.chunking import (
    ChunkingCacheAdapter,
    is_manifest,
    join,
    parse_manifest,
    piece_key,
    routing_key,
    split,
)
from repro.cache.server import CacheServer
from repro.errors import ConfigurationError, ProtocolError

CFG = optimal_config(2000)


class TestSplitJoin:
    def test_small_value_untouched(self):
        manifest, pieces = split(b"small", piece_size=100)
        assert manifest == b"small" and pieces == []
        assert not is_manifest(manifest)

    def test_large_value_split(self):
        value = bytes(range(256)) * 40  # 10240 bytes
        manifest, pieces = split(value, piece_size=4096)
        assert is_manifest(manifest)
        assert parse_manifest(manifest) == (3, 10240)
        assert [len(p) for p in pieces] == [4096, 4096, 2048]

    def test_join_reassembles(self):
        value = b"x" * 9000
        manifest, pieces = split(value, piece_size=4096)
        assert join(manifest, list(pieces)) == value

    def test_exact_multiple(self):
        value = b"y" * 8192
        manifest, pieces = split(value, piece_size=4096)
        assert parse_manifest(manifest)[0] == 2
        assert join(manifest, list(pieces)) == value

    def test_join_missing_piece_raises(self):
        manifest, pieces = split(b"z" * 9000, piece_size=4096)
        with pytest.raises(ProtocolError):
            join(manifest, [pieces[0], None, pieces[2]])
        with pytest.raises(ProtocolError):
            join(manifest, pieces[:2])

    def test_join_size_mismatch_raises(self):
        manifest, pieces = split(b"z" * 9000, piece_size=4096)
        truncated = list(pieces)
        truncated[2] = truncated[2][:-1]
        with pytest.raises(ProtocolError):
            join(manifest, truncated)

    def test_malformed_manifest(self):
        with pytest.raises(ProtocolError):
            parse_manifest(b"not-a-manifest")
        with pytest.raises(ProtocolError):
            parse_manifest(b"chunked:x:y")
        with pytest.raises(ProtocolError):
            parse_manifest(b"chunked:0:10")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split(b"v", piece_size=0)


class TestRoutingKey:
    def test_pieces_route_with_parent(self):
        assert routing_key(piece_key("page:Main", 3)) == "page:Main"
        assert routing_key("page:Main") == "page:Main"

    def test_hash_in_title_not_confused(self):
        # Only a trailing #<digits> is piece syntax.
        assert routing_key("page:C#") == "page:C#"
        assert routing_key("page:C#notes") == "page:C#notes"

    def test_all_pieces_same_server(self):
        from repro.core.router import ProteusRouter

        router = ProteusRouter(8)
        for n in (3, 8):
            base = router.route(routing_key("page:Big"), n)
            for i in range(10):
                key = piece_key("page:Big", i)
                assert router.route(routing_key(key), n) == base


class TestAdapter:
    def adapter(self, capacity_pages=100):
        server = CacheServer(
            0, capacity_bytes=4096 * capacity_pages, bloom_config=CFG
        )
        return server, ChunkingCacheAdapter.over_server(server)

    def test_roundtrip_large_object(self):
        server, adapter = self.adapter()
        value = b"A" * 20_000
        sets = adapter.set("obj", value, now=0.0)
        assert sets == 1 + 5  # manifest + ceil(20000/4096) pieces
        assert adapter.get("obj", now=1.0) == value

    def test_small_object_direct(self):
        server, adapter = self.adapter()
        assert adapter.set("small", b"v", now=0.0) == 1
        assert adapter.get("small", now=1.0) == b"v"

    def test_missing_piece_is_a_miss_and_cleans_up(self):
        server, adapter = self.adapter()
        value = b"B" * 10_000
        adapter.set("obj", value, now=0.0)
        server.delete(piece_key("obj", 1), now=1.0)  # evict one piece
        assert adapter.get("obj", now=2.0) is None
        # Manifest and remaining pieces were purged; a re-set works cleanly.
        adapter.set("obj", value, now=3.0)
        assert adapter.get("obj", now=4.0) == value

    def test_delete_removes_everything(self):
        server, adapter = self.adapter()
        adapter.set("obj", b"C" * 10_000, now=0.0)
        assert adapter.delete("obj", now=1.0) is True
        assert adapter.get("obj", now=2.0) is None
        assert len(server.store) == 0

    def test_get_absent(self):
        _, adapter = self.adapter()
        assert adapter.get("ghost") is None


class TestBatchedPieceFetch:
    def test_over_server_reads_pieces_through_one_multiget(self):
        server = CacheServer(0, capacity_bytes=4096 * 100, bloom_config=CFG)
        calls = []
        real_get_many = server.get_many

        def counting_get_many(keys, now=0.0):
            calls.append(list(keys))
            return real_get_many(keys, now)

        server.get_many = counting_get_many
        adapter = ChunkingCacheAdapter.over_server(server)
        value = b"D" * 20_000
        adapter.set("obj", value, now=0.0)
        assert adapter.get("obj", now=1.0) == value
        # One batched call covering every piece, not one get per piece.
        assert len(calls) == 1
        assert calls[0] == [piece_key("obj", i) for i in range(5)]

    def test_small_object_never_batches(self):
        server = CacheServer(0, capacity_bytes=4096 * 100, bloom_config=CFG)
        calls = []
        server.get_many = lambda keys, now=0.0: calls.append(keys) or {}
        adapter = ChunkingCacheAdapter.over_server(server)
        adapter.set("small", b"v", now=0.0)
        assert adapter.get("small", now=1.0) == b"v"
        assert calls == []

    def test_fallback_loop_without_get_many(self):
        # A store-shaped backend with no multiget still works piece by piece.
        store = {}
        adapter = ChunkingCacheAdapter(
            get_fn=lambda key, now=0.0: store.get(key),
            set_fn=lambda key, value, now=0.0, size=None: store.__setitem__(
                key, value
            ),
            delete_fn=lambda key, now=0.0: store.pop(key, None) is not None,
        )
        value = b"E" * 9_000
        adapter.set("obj", value, now=0.0)
        assert adapter.get("obj", now=1.0) == value

    def test_server_get_many_requires_power_and_skips_misses(self):
        server = CacheServer(0, capacity_bytes=4096 * 100, bloom_config=CFG)
        server.set("a", b"1", now=0.0)
        server.set("b", b"2", now=0.0)
        assert server.get_many(["a", "b", "ghost"], now=1.0) == {
            "a": b"1", "b": b"2",
        }
        server.power_off()
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            server.get_many(["a"], now=2.0)
