"""Tests for the CLOCK and SLRU eviction policies."""

import pytest

from repro.cache.eviction import ClockPolicy, SegmentedLRUPolicy, make_policy
from repro.cache.store import KeyValueStore
from repro.errors import CapacityError


class TestClock:
    def test_victim_is_unreferenced(self):
        policy = ClockPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        # First victim() sweeps: all bits set -> cleared -> "a" chosen on
        # the second pass.
        assert policy.victim() == "a"

    def test_access_grants_second_chance(self):
        policy = ClockPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        policy.victim()          # clears all bits, returns "a"
        policy.on_access("a")    # re-reference a
        assert policy.victim() == "b"

    def test_unlink_swaps_and_keeps_hand_valid(self):
        policy = ClockPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        policy.on_unlink("b")
        policy.on_unlink("ghost")  # unknown key: no-op
        victims = {policy.victim() for _ in range(4)}
        assert "b" not in victims

    def test_empty_raises_and_reset(self):
        policy = ClockPolicy()
        with pytest.raises(CapacityError):
            policy.victim()
        policy.on_link("a")
        policy.reset()
        with pytest.raises(CapacityError):
            policy.victim()

    def test_in_store_capacity_respected(self):
        # CLOCK wired into a real store: capacity holds, one eviction per
        # overflow insert.  (When every bit is set CLOCK degenerates to
        # FIFO for that sweep — the second-chance behaviour is asserted at
        # the policy level above.)
        store = KeyValueStore(capacity_bytes=300, policy=ClockPolicy())
        for i in range(10):
            store.set(f"k{i}", i, size=100, now=float(i))
        assert store.used_bytes <= 300
        assert len(store) == 3
        assert store.stats.evictions == 7


class TestSegmentedLRU:
    def test_victims_come_from_probation_first(self):
        policy = SegmentedLRUPolicy()
        for key in ("a", "b", "c"):
            policy.on_link(key)
        policy.on_access("a")  # promote a to protected
        assert policy.victim() == "b"  # probation LRU, not the protected a

    def test_protected_only_fallback(self):
        policy = SegmentedLRUPolicy()
        policy.on_link("a")
        policy.on_access("a")
        assert policy.victim() == "a"  # probation empty -> protected LRU

    def test_protected_bound_demotes(self):
        policy = SegmentedLRUPolicy(protected_fraction=0.5)
        for i in range(4):
            policy.on_link(f"k{i}")
        for i in range(4):
            policy.on_access(f"k{i}")  # try to promote everything
        # At most half stay protected; the demoted ones are eviction
        # candidates again.
        assert policy.victim().startswith("k")

    def test_scan_resistance(self):
        # A hot key accessed twice survives a long one-shot scan under SLRU
        # but is flushed by plain LRU at the same capacity.
        def run(policy_name):
            store = KeyValueStore(
                capacity_bytes=1000, policy=make_policy(policy_name)
            )
            store.set("hot", 1, size=100, now=0.0)
            store.get("hot", now=0.5)  # second touch -> protected in SLRU
            for i in range(50):        # the scan
                store.set(f"scan{i}", i, size=100, now=1.0 + i)
            return "hot" in store

        assert run("slru") is True
        assert run("lru") is False

    def test_unlink_from_either_segment(self):
        policy = SegmentedLRUPolicy()
        policy.on_link("a")
        policy.on_link("b")
        policy.on_access("a")
        policy.on_unlink("a")
        policy.on_unlink("b")
        with pytest.raises(CapacityError):
            policy.victim()

    def test_reset(self):
        policy = SegmentedLRUPolicy()
        policy.on_link("a")
        policy.reset()
        with pytest.raises(CapacityError):
            policy.victim()

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            SegmentedLRUPolicy(protected_fraction=0.0)
        with pytest.raises(ValueError):
            SegmentedLRUPolicy(protected_fraction=1.0)


class TestFactoryExtras:
    def test_new_names_registered(self):
        assert isinstance(make_policy("clock"), ClockPolicy)
        assert isinstance(make_policy("slru"), SegmentedLRUPolicy)
