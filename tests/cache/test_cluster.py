"""Tests for the cache tier (CacheCluster) scaling choreography."""

import pytest

from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.cache.server import PowerState
from repro.core.router import ProteusRouter
from repro.errors import ConfigurationError, TransitionError

CFG = optimal_config(2000)


def cluster(n=4, active=None, ttl=30.0):
    return CacheCluster(
        ProteusRouter(n, ring_size=2 ** 20),
        capacity_bytes=4096 * 500,
        initial_active=active,
        ttl=ttl,
        bloom_config=CFG,
    )


class TestConstruction:
    def test_initial_power_states(self):
        c = cluster(4, active=2)
        states = [s.state for s in c.servers]
        assert states == [PowerState.ON, PowerState.ON, PowerState.OFF, PowerState.OFF]
        assert c.active_count == 2
        assert c.powered_servers() == [0, 1]

    def test_defaults_all_active(self):
        assert cluster(3).active_count == 3

    def test_rejects_bad_initial_active(self):
        with pytest.raises(ConfigurationError):
            cluster(4, active=0)
        with pytest.raises(ConfigurationError):
            cluster(4, active=5)


class TestSmoothScaleDown:
    def test_digest_broadcast_covers_ceding_servers(self):
        # Proteus scale-down cedes exactly the draining servers — only
        # their keys can move (deactivating a server returns its borrowed
        # ranges to the lenders), so only their digests are broadcast.
        c = cluster(4, active=4)
        c.server(3).set("victim-key", 1, now=0.0)
        transition = c.scale_to(3, now=10.0)
        assert transition is not None
        assert set(transition.digests) == {3}
        assert transition.ceding_servers() == [3]
        assert transition.digest_hit(3, "victim-key")

    def test_drained_server_state_machine(self):
        c = cluster(4, ttl=30.0)
        c.scale_to(3, now=0.0)
        assert c.server(3).state is PowerState.DRAINING
        c.finalize_expired(now=29.0)
        assert c.server(3).state is PowerState.DRAINING
        c.finalize_expired(now=30.0)
        assert c.server(3).state is PowerState.OFF

    def test_drained_server_loses_data_at_power_off(self):
        c = cluster(4, ttl=10.0)
        c.server(3).set("k", 1, now=0.0)
        c.scale_to(3, now=0.0)
        c.finalize_expired(now=10.0)
        c.server(3).power_on(11.0)
        assert c.server(3).get("k", 11.0) is None

    def test_overlapping_smooth_transitions_rejected(self):
        c = cluster(6, ttl=100.0)
        c.scale_to(5, now=0.0)
        with pytest.raises(TransitionError):
            c.scale_to(4, now=5.0)


class TestSmoothScaleUp:
    def test_new_servers_power_on_cold(self):
        c = cluster(4, active=2)
        transition = c.scale_to(4, now=0.0)
        assert transition.is_scale_up
        assert c.server(2).state is PowerState.ON
        assert c.server(3).state is PowerState.ON
        assert len(c.server(2).store) == 0

    def test_digests_cover_ceding_servers(self):
        c = cluster(4, active=2)
        c.server(0).set("moving", 1, now=0.0)
        transition = c.scale_to(4, now=1.0)
        assert set(transition.digests) == {0, 1}
        assert transition.digest_hit(0, "moving")

    def test_noop_scale_returns_none(self):
        c = cluster(4, active=2)
        assert c.scale_to(2, now=0.0) is None


class TestAbruptScaling:
    def test_scale_down_powers_off_immediately(self):
        c = cluster(4)
        c.server(3).set("k", 1, now=0.0)
        c.abrupt_scale_to(3, now=0.0)
        assert c.server(3).state is PowerState.OFF
        assert not c.transitions.in_transition(0.0)

    def test_scale_up_powers_on_immediately(self):
        c = cluster(4, active=2)
        c.abrupt_scale_to(4, now=0.0)
        assert c.powered_servers() == [0, 1, 2, 3]
        assert not c.transitions.in_transition(0.0)

    def test_routing_epochs_show_no_transition(self):
        c = cluster(4)
        c.abrupt_scale_to(2, now=0.0)
        epochs = c.routing_epochs(0.0)
        assert epochs.new == 2
        assert epochs.old is None

    def test_rejects_out_of_range(self):
        with pytest.raises(TransitionError):
            cluster(4).abrupt_scale_to(5, now=0.0)
        with pytest.raises(TransitionError):
            cluster(4).scale_to(0, now=0.0)


class TestMetrics:
    def test_per_server_requests(self):
        c = cluster(3)
        c.server(0).set("a", 1)
        c.server(0).get("a")
        c.server(1).get("missing")
        assert c.per_server_requests() == [2, 1, 0]

    def test_total_hit_ratio(self):
        c = cluster(2)
        c.server(0).set("a", 1)
        c.server(0).get("a")
        c.server(1).get("missing")
        assert c.total_hit_ratio() == 0.5

    def test_hit_ratio_empty(self):
        assert cluster(2).total_hit_ratio() == 0.0
