"""Tests for Section III-E replication (Eq. 3)."""

import pytest

from repro.core.replication import ReplicatedProteusRouter, no_conflict_probability
from repro.errors import ConfigurationError, RoutingError
from tests.conftest import make_keys


class TestEq3:
    def test_formula(self):
        # P_nc = prod (n - i)/n
        assert no_conflict_probability(1, 10) == 1.0
        assert no_conflict_probability(2, 10) == pytest.approx(0.9)
        assert no_conflict_probability(3, 10) == pytest.approx(0.9 * 0.8)

    def test_more_replicas_than_servers_gives_zero(self):
        assert no_conflict_probability(4, 3) == 0.0

    def test_large_n_approaches_one(self):
        assert no_conflict_probability(3, 1000) > 0.99

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            no_conflict_probability(0, 5)
        with pytest.raises(ConfigurationError):
            no_conflict_probability(2, 0)


class TestReplicatedRouter:
    def test_replica_count(self):
        router = ReplicatedProteusRouter(8, replicas=3)
        owners = router.replica_servers("k", 8)
        assert len(owners) == 3
        assert all(0 <= s < 8 for s in owners)

    def test_route_is_primary_ring(self):
        router = ReplicatedProteusRouter(8, replicas=3)
        assert router.route("k", 6) == router.replica_servers("k", 6)[0]

    def test_replicas_respect_active_prefix(self):
        router = ReplicatedProteusRouter(10, replicas=2)
        for key in make_keys(200):
            assert all(s < 4 for s in router.replica_servers(key, 4))

    def test_distinct_replicas_dedupes(self):
        router = ReplicatedProteusRouter(2, replicas=3)
        for key in make_keys(50):
            distinct = router.distinct_replica_servers(key, 2)
            assert len(distinct) == len(set(distinct)) <= 2

    def test_empirical_conflict_matches_eq3(self):
        router = ReplicatedProteusRouter(10, replicas=2)
        measured_nc = 1.0 - router.empirical_conflict_rate(10, num_samples=6000)
        predicted = no_conflict_probability(2, 10)
        assert measured_nc == pytest.approx(predicted, abs=0.02)

    def test_read_targets_excludes_failed(self):
        router = ReplicatedProteusRouter(6, replicas=2)
        for key in make_keys(100):
            owners = router.distinct_replica_servers(key, 6)
            if len(owners) == 2:
                targets = router.read_targets(key, 6, exclude=[owners[0]])
                assert targets == [owners[1]]

    def test_read_targets_all_failed_raises(self):
        router = ReplicatedProteusRouter(4, replicas=2)
        key = make_keys(1)[0]
        owners = router.distinct_replica_servers(key, 4)
        with pytest.raises(RoutingError):
            router.read_targets(key, 4, exclude=owners)

    def test_replicated_routing_is_balanced(self):
        import collections

        router = ReplicatedProteusRouter(5, replicas=2)
        counts = collections.Counter()
        for key in make_keys(20_000):
            for server in router.replica_servers(key, 5):
                counts[server] += 1
        values = [counts[s] for s in range(5)]
        assert min(values) / max(values) > 0.9

    def test_rejects_bad_replicas(self):
        with pytest.raises(ConfigurationError):
            ReplicatedProteusRouter(4, replicas=0)
