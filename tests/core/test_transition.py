"""Tests for the smooth-transition state machine (Section IV)."""

import pytest

from repro.bloom.bloom import BloomFilter
from repro.core.transition import Transition, TransitionManager
from repro.errors import TransitionError


def digest_with(keys):
    bf = BloomFilter(4096, num_hashes=4)
    bf.update(keys)
    return bf


class TestTransition:
    def test_deadline(self):
        t = Transition(n_old=5, n_new=4, started_at=100.0, ttl=60.0)
        assert t.deadline == 160.0
        assert not t.expired(159.9)
        assert t.expired(160.0)

    def test_direction_flags(self):
        down = Transition(5, 4, 0.0, 60.0)
        up = Transition(4, 5, 0.0, 60.0)
        assert down.is_scale_down and not down.is_scale_up
        assert up.is_scale_up and not up.is_scale_down

    def test_draining_servers_scale_down(self):
        t = Transition(6, 3, 0.0, 60.0)
        assert t.draining_servers() == [3, 4, 5]

    def test_draining_servers_scale_up_is_empty(self):
        assert Transition(3, 6, 0.0, 60.0).draining_servers() == []

    def test_digest_hit(self):
        t = Transition(3, 2, 0.0, 60.0, digests={2: digest_with(["hot"])})
        assert t.digest_hit(2, "hot")
        assert not t.digest_hit(2, "cold")
        assert not t.digest_hit(0, "hot")  # no digest for server 0


class TestTransitionManager:
    def test_initial_state(self):
        mgr = TransitionManager(4, ttl=30.0)
        assert mgr.active_count == 4
        assert mgr.current(0.0) is None
        assert not mgr.in_transition(0.0)

    def test_begin_scale_down(self):
        mgr = TransitionManager(4, ttl=30.0)
        t = mgr.begin(3, now=10.0)
        assert t is not None and t.n_old == 4 and t.n_new == 3
        assert mgr.active_count == 3  # new count committed immediately
        assert mgr.in_transition(10.0)

    def test_noop_transition_returns_none(self):
        mgr = TransitionManager(4)
        assert mgr.begin(4, now=0.0) is None

    def test_window_auto_expires(self):
        mgr = TransitionManager(4, ttl=30.0)
        mgr.begin(3, now=0.0)
        assert mgr.in_transition(29.9)
        assert not mgr.in_transition(30.0)
        assert len(mgr.history) == 1

    def test_overlapping_transition_rejected(self):
        mgr = TransitionManager(4, ttl=30.0)
        mgr.begin(3, now=0.0)
        with pytest.raises(TransitionError):
            mgr.begin(2, now=15.0)

    def test_sequential_transitions_allowed(self):
        mgr = TransitionManager(4, ttl=30.0)
        mgr.begin(3, now=0.0)
        t = mgr.begin(2, now=31.0)  # previous window closed at 30
        assert t is not None and t.n_old == 3

    def test_power_off_callback_fires_on_scale_down(self):
        mgr = TransitionManager(5, ttl=10.0)
        events = []
        mgr.on_power_off.append(lambda ids, when: events.append((ids, when)))
        mgr.begin(3, now=0.0)
        mgr.current(10.0)  # poll past the deadline
        assert events == [([3, 4], 10.0)]

    def test_no_power_off_callback_on_scale_up(self):
        mgr = TransitionManager(3, ttl=10.0)
        events = []
        mgr.on_power_off.append(lambda ids, when: events.append(ids))
        mgr.begin(5, now=0.0)
        mgr.current(20.0)
        assert events == []

    def test_force_complete(self):
        mgr = TransitionManager(4, ttl=1000.0)
        mgr.begin(3, now=0.0)
        mgr.force_complete(5.0)
        assert not mgr.in_transition(5.0)
        assert len(mgr.history) == 1

    def test_force_complete_without_transition_raises(self):
        with pytest.raises(TransitionError):
            TransitionManager(4).force_complete(0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(TransitionError):
            TransitionManager(0)
        with pytest.raises(TransitionError):
            TransitionManager(4, ttl=0.0)
        mgr = TransitionManager(4)
        with pytest.raises(TransitionError):
            mgr.begin(0, now=0.0)


class TestRoutingEpochs:
    def test_no_transition(self):
        mgr = TransitionManager(4, ttl=30.0)
        epochs = mgr.routing_counts(0.0)
        assert epochs.new == 4
        assert epochs.old is None
        assert not epochs.in_transition

    def test_during_transition(self):
        mgr = TransitionManager(4, ttl=30.0)
        mgr.begin(3, now=0.0, digests={3: digest_with(["k"])})
        epochs = mgr.routing_counts(15.0)
        assert epochs.new == 3
        assert epochs.old == 4
        assert epochs.in_transition
        assert epochs.transition.digest_hit(3, "k")

    def test_after_expiry(self):
        mgr = TransitionManager(4, ttl=30.0)
        mgr.begin(3, now=0.0)
        epochs = mgr.routing_counts(31.0)
        assert epochs.new == 3
        assert epochs.old is None
