"""Tests for the generic consistent-hashing ring."""

import pytest

from repro.core.ring import HashRing, VirtualNode, prefix_active
from repro.errors import ConfigurationError, RoutingError


class TestConstruction:
    def test_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            HashRing(0)

    def test_add_and_len(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        ring.add(50, server=1)
        assert len(ring) == 2

    def test_positions_wrap_mod_size(self):
        ring = HashRing(100)
        ring.add(150, server=0)  # stored as 50
        assert ring.nodes[0].position == 50

    def test_duplicate_position_rejected(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        with pytest.raises(ConfigurationError):
            ring.add(10, server=1)

    def test_add_many(self):
        ring = HashRing(100)
        ring.add_many([VirtualNode(10, 0), VirtualNode(20, 1)])
        assert ring.servers() == [0, 1]

    def test_nodes_sorted_by_position(self):
        ring = HashRing(100)
        for pos in (70, 10, 40):
            ring.add(pos, server=0)
        assert [n.position for n in ring.nodes] == [10, 40, 70]


class TestLookup:
    def test_empty_ring_raises(self):
        with pytest.raises(RoutingError):
            HashRing(100).lookup(5)

    def test_owner_is_next_position_clockwise(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        ring.add(50, server=1)
        # vnode at p owns [pred, p): keys 10..49 -> 50 (server 1)
        assert ring.lookup(10) == 1
        assert ring.lookup(49) == 1
        # keys 50..99 and 0..9 wrap to position 10 (server 0)
        assert ring.lookup(50) == 0
        assert ring.lookup(99) == 0
        assert ring.lookup(0) == 0
        assert ring.lookup(9) == 0

    def test_position_exactly_at_vnode_goes_clockwise(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        ring.add(50, server=1)
        # key 50 is NOT owned by the vnode at 50 ([pred, p) is half-open)
        assert ring.lookup(50) == 0

    def test_inactive_servers_are_skipped(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        ring.add(50, server=1)
        ring.add(90, server=2)
        assert ring.lookup(20, is_active=lambda s: s != 1) == 2

    def test_skip_wraps_around(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        ring.add(90, server=2)
        # key 95 -> first position > 95 wraps to 10
        assert ring.lookup(95, is_active=lambda s: s == 2) == 2
        assert ring.lookup(95) == 0

    def test_no_active_server_raises(self):
        ring = HashRing(100)
        ring.add(10, server=0)
        with pytest.raises(RoutingError):
            ring.lookup(5, is_active=lambda s: False)


class TestOwnedLengths:
    def test_full_ring_partition(self):
        ring = HashRing(100)
        ring.add(25, server=0)
        ring.add(75, server=1)
        owned = ring.owned_lengths()
        assert owned == {0: 50, 1: 50}

    def test_lengths_sum_to_ring_size(self):
        ring = HashRing(1000)
        for pos, server in ((100, 0), (350, 1), (600, 2), (980, 0)):
            ring.add(pos, server)
        assert sum(ring.owned_lengths().values()) == 1000

    def test_inactive_ranges_drain_to_successor(self):
        ring = HashRing(100)
        ring.add(25, server=0)
        ring.add(75, server=1)
        owned = ring.owned_lengths(is_active=lambda s: s == 0)
        assert owned == {0: 100}

    def test_empty_ring_owned_lengths(self):
        assert HashRing(100).owned_lengths() == {}


class TestPrefixActive:
    def test_prefix_semantics(self):
        active = prefix_active(3)
        assert active(0) and active(2)
        assert not active(3)

    def test_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            prefix_active(0)
