"""The unified component registry (repro.core.registry)."""

import pytest

from repro.core.registry import RING_BACKENDS, ROUTER_SCENARIOS, Registry
from repro.core.ring import BACKEND_NAMES, ProteusBackend, make_backend
from repro.core.router import ProteusRouter, make_router
from repro.errors import ConfigurationError


class TestRegistry:
    def test_register_and_create(self):
        reg = Registry("widget")
        reg.register("box", dict)
        assert reg.create("box", a=1) == {"a": 1}
        assert "box" in reg and "crate" not in reg

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("fn")
        def build(x):
            return x * 2

        assert reg.create("fn", 21) == 42
        assert build(1) == 2  # decorator returns the factory unchanged

    def test_names_preserve_registration_order(self):
        reg = Registry("widget")
        reg.register("z", dict)
        reg.register("a", dict)
        assert reg.names == ("z", "a")
        assert list(reg) == ["z", "a"] and len(reg) == 2

    def test_lookup_is_case_insensitive(self):
        reg = Registry("widget")
        reg.register("Box", dict)
        assert "BOX" in reg
        assert reg.check(" box ") == "box"

    def test_unknown_name_error_lists_valid_names(self):
        reg = Registry("widget")
        reg.register("box", dict)
        reg.register("crate", dict)
        with pytest.raises(ConfigurationError) as err:
            reg.create("barrel")
        assert "unknown widget 'barrel'" in str(err.value)
        assert "box, crate" in str(err.value)

    def test_duplicate_registration_raises(self):
        reg = Registry("widget")
        reg.register("box", dict)
        with pytest.raises(ConfigurationError):
            reg.register("BOX", list)

    def test_contains_rejects_non_strings(self):
        reg = Registry("widget")
        reg.register("box", dict)
        assert 3 not in reg and None not in reg

    def test_help_text_lists_names(self):
        reg = Registry("widget")
        reg.register("box", dict)
        assert reg.help_text("pick one") == "pick one (box)"


class TestSharedRegistries:
    def test_ring_backends_back_make_backend(self):
        assert RING_BACKENDS.names == BACKEND_NAMES == (
            "proteus", "multiprobe", "power",
        )
        backend = make_backend("proteus", 4)
        assert isinstance(backend, ProteusBackend)
        assert isinstance(
            RING_BACKENDS.create("proteus", 4, 2 ** 20), ProteusBackend
        )

    def test_router_scenarios_back_make_router(self):
        assert ROUTER_SCENARIOS.names == (
            "static", "naive", "consistent", "proteus", "multiprobe", "power",
        )
        assert isinstance(make_router("proteus", 4), ProteusRouter)

    def test_unified_error_message_everywhere(self):
        from repro.experiments.cluster import ScenarioSpec

        expected = "unknown ring backend 'zeta' (expected one of proteus, "
        with pytest.raises(ConfigurationError) as from_factory:
            make_backend("zeta", 4)
        with pytest.raises(ConfigurationError) as from_spec:
            ScenarioSpec.proteus("zeta")
        assert expected in str(from_factory.value)
        assert str(from_factory.value) == str(from_spec.value)

    def test_registry_module_reexports_instances(self):
        import repro.core.registry as registry

        assert registry.RING_BACKENDS is RING_BACKENDS
        assert registry.ROUTER_SCENARIOS is ROUTER_SCENARIOS
        with pytest.raises(AttributeError):
            registry.NOT_A_REGISTRY
