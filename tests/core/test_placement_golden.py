"""Golden regression pins for Algorithm 1.

Routing decisions must be identical across versions and machines: a cache
warmed by one build must stay addressable by the next (and the paper's
consistency objective spans web servers that may not upgrade atomically).
These tests pin the exact placement for a small fleet and the exact routing
of fixed keys; if they ever fail, the change is wire-breaking and needs a
deliberate migration story, not a silent merge.
"""

from fractions import Fraction

import pytest

from repro.core.placement import place_virtual_nodes
from repro.core.router import ProteusRouter

RING = 1200  # divisible by i*(i-1) for i <= 4: exact integers for N=4


class TestGoldenPlacement:
    def test_exact_ranges_n4(self):
        placement = place_virtual_nodes(4, RING)
        got = [(r.start, r.length, r.server) for r in placement.ranges]
        # s1 starts with [0,1200); s2 borrows 600 at the front; s3 borrows
        # 200 from s1's and s2's fronts; s4 borrows 100 from each front.
        expected = [
            (Fraction(0), Fraction(200), 2),     # s3's borrow from s2's front
            (Fraction(200), Fraction(100), 3),   # s4's borrow from s2's front
            (Fraction(300), Fraction(300), 1),   # s2's remainder
            (Fraction(600), Fraction(100), 3),   # s4's borrow from s3's piece
            (Fraction(700), Fraction(100), 2),   # s3's piece remainder
            (Fraction(800), Fraction(100), 3),   # s4's borrow from s1's front
            (Fraction(900), Fraction(300), 0),   # s1's remainder
        ]
        assert got == expected

    def test_pinned_key_routing_n10(self):
        # Fixed keys against the production ring size.  These values were
        # produced by this implementation and pin hash family + placement +
        # lookup convention together.
        router = ProteusRouter(10)
        routes = {
            key: [router.route(key, n) for n in (10, 7, 3, 1)]
            for key in ("page:Alan_Turing", "page:Main_Page", "user:42")
        }
        assert routes == {
            "page:Alan_Turing": [3, 3, 2, 0],
            "page:Main_Page": [7, 4, 1, 0],
            "user:42": [9, 1, 1, 0],
        }

    def test_stable_hash_pin(self):
        from repro.bloom.hashing import stable_hash64

        # Wire-format pin for the hash family (digest probes depend on it).
        assert stable_hash64("proteus") == stable_hash64("proteus")
        pinned = stable_hash64("pin:wire-format")
        assert pinned == stable_hash64("pin:wire-format", salt=0)
        assert 0 <= pinned < 2 ** 64


class TestScalePerformanceGuard:
    def test_n40_placement_and_exact_verification_is_fast(self):
        import time

        start = time.perf_counter()
        placement = place_virtual_nodes(40, 2 ** 32)
        placement.verify_balance()
        elapsed = time.perf_counter() - start
        assert placement.num_vnodes == 781
        # Exact rational verification over 40 prefixes must stay cheap —
        # web servers build this at startup.
        assert elapsed < 10.0
