"""Unit tests for the hot-key armor primitives (repro.core.hotkey)."""

import pytest

from repro.core.hotkey import (
    CountMinSketch,
    HotKeyArmor,
    HotKeyCache,
    ServerLoadEWMA,
    TopKSketch,
)
from repro.errors import ConfigurationError


class TestCountMinSketch:
    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        for i in range(200):
            key = f"k:{i % 37}"
            sketch.add(key)
            truth[key] = truth.get(key, 0) + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_uncontended(self):
        sketch = CountMinSketch(width=4096, depth=4)
        for _ in range(50):
            sketch.add("hot")
        assert sketch.estimate("hot") == 50
        assert sketch.estimate("never-seen") == 0

    def test_add_returns_updated_estimate(self):
        sketch = CountMinSketch(width=1024, depth=4)
        assert sketch.add("a") == 1
        assert sketch.add("a", count=4) == 5

    def test_observations_counts_stream_length(self):
        sketch = CountMinSketch(width=16, depth=2)
        sketch.add("a", 3)
        sketch.add("b")
        assert sketch.observations == 4

    def test_invalid_geometry_raises(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(width=0)
        with pytest.raises(ConfigurationError):
            CountMinSketch(depth=0)

    def test_memory_bound_is_geometry_only(self):
        sketch = CountMinSketch(width=128, depth=4)
        before = sketch.memory_bytes()
        for i in range(10_000):
            sketch.add(f"k:{i}")
        assert sketch.memory_bytes() == before == 128 * 4 * 8


class TestTopKSketch:
    def test_fills_to_capacity_then_gates_on_threshold(self):
        topk = TopKSketch(capacity=2, width=4096, depth=4)
        assert topk.record("a")  # capacity not reached: elected outright
        assert topk.record("b")
        topk.record("a")
        topk.record("b")  # both tracked at estimate 2
        assert not topk.record("c")  # estimate 1 < threshold 2: rejected
        assert not topk.is_hot("c")
        assert topk.record("c")  # estimate 2 >= threshold 2: displaces
        assert topk.is_hot("c")
        assert len(topk) == 2

    def test_heavy_key_always_elected(self):
        topk = TopKSketch(capacity=4, width=4096, depth=4)
        # Fill with tail keys, then hammer one head key.
        for i in range(4):
            topk.record(f"tail:{i}")
        for _ in range(50):
            topk.record("head")
        assert topk.is_hot("head")
        assert topk.elected()["head"] >= 50

    def test_tail_churn_cannot_displace_head(self):
        topk = TopKSketch(capacity=2, width=4096, depth=4)
        for _ in range(100):
            topk.record("head")
        for i in range(500):
            topk.record(f"tail:{i}")  # each seen once: estimate 1 << 100
        assert topk.is_hot("head")

    def test_threshold_tracks_minimum(self):
        topk = TopKSketch(capacity=2, width=4096, depth=4)
        assert topk.threshold() == 0
        topk.record("a")
        topk.record("b")
        topk.record("b")
        assert topk.threshold() == 1  # "a" is the minimum

    def test_len_and_contains(self):
        topk = TopKSketch(capacity=8, width=1024, depth=2)
        topk.record("x")
        assert len(topk) == 1 and "x" in topk and "y" not in topk

    def test_invalid_capacity_raises(self):
        with pytest.raises(ConfigurationError):
            TopKSketch(capacity=0)


class TestHotKeyCache:
    def test_store_get_roundtrip(self):
        cache = HotKeyCache(capacity=4, ttl=1.0)
        cache.store("k", "v", now=0.0)
        assert cache.get("k", now=0.5) == "v"
        assert cache.stats.hits == 1

    def test_ttl_expiry_is_strict(self):
        cache = HotKeyCache(capacity=4, ttl=1.0)
        cache.store("k", "v", now=0.0)
        assert cache.get("k", now=1.0) is None  # now - stored >= ttl
        assert cache.stats.expirations == 1
        assert "k" not in cache

    def test_store_refreshes_staleness_window(self):
        cache = HotKeyCache(capacity=4, ttl=1.0)
        cache.store("k", "v1", now=0.0)
        cache.store("k", "v2", now=0.9)
        assert cache.get("k", now=1.5) == "v2"

    def test_lru_eviction_prefers_cold_entries(self):
        cache = HotKeyCache(capacity=2, ttl=10.0)
        cache.store("a", 1, now=0.0)
        cache.store("b", 2, now=0.0)
        assert cache.get("a", now=0.1) == 1  # touch "a": "b" is now LRU
        cache.store("c", 3, now=0.2)
        assert "b" not in cache
        assert cache.get("a", now=0.3) == 1
        assert cache.get("c", now=0.3) == 3

    def test_invalidate(self):
        cache = HotKeyCache(capacity=2, ttl=10.0)
        cache.store("a", 1, now=0.0)
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert cache.get("a", now=0.1) is None
        assert cache.stats.invalidations == 1

    def test_hit_ratio(self):
        cache = HotKeyCache(capacity=2, ttl=10.0)
        cache.store("a", 1, now=0.0)
        cache.get("a", now=0.1)
        cache.get("missing", now=0.1)
        assert cache.stats.hit_ratio == 0.5

    def test_invalid_args_raise(self):
        with pytest.raises(ConfigurationError):
            HotKeyCache(capacity=0)
        with pytest.raises(ConfigurationError):
            HotKeyCache(ttl=0.0)


class TestServerLoadEWMA:
    def test_scores_decay_with_halflife(self):
        loads = ServerLoadEWMA(halflife=1.0)
        loads.record_request(0, now=0.0)
        assert loads.load(0, now=0.0) == pytest.approx(1.0)
        assert loads.load(0, now=1.0) == pytest.approx(0.5)
        assert loads.load(0, now=2.0) == pytest.approx(0.25)

    def test_arrivals_accumulate(self):
        loads = ServerLoadEWMA(halflife=1000.0)
        for _ in range(5):
            loads.record_request(1, now=0.0)
        assert loads.load(1, now=0.0) == pytest.approx(5.0)

    def test_unknown_server_is_idle(self):
        loads = ServerLoadEWMA()
        assert loads.load(9, now=100.0) == 0.0

    def test_latency_scales_relative_to_mean(self):
        loads = ServerLoadEWMA(halflife=1000.0)
        loads.record_request(0, now=0.0)
        loads.record_request(1, now=0.0)
        loads.observe_latency(0, 0.010)  # slow replica
        loads.observe_latency(1, 0.002)  # fast replica
        assert loads.load(0, now=0.0) > loads.load(1, now=0.0)

    def test_snapshot(self):
        loads = ServerLoadEWMA(halflife=1000.0)
        loads.record_request(0, now=0.0)
        snap = loads.snapshot([0, 1], now=0.0)
        assert snap[0] == pytest.approx(1.0) and snap[1] == 0.0

    def test_invalid_args_raise(self):
        with pytest.raises(ConfigurationError):
            ServerLoadEWMA(halflife=0.0)
        with pytest.raises(ConfigurationError):
            ServerLoadEWMA(latency_smoothing=0.0)


class TestHotKeyArmor:
    def test_cold_key_never_served_locally(self):
        armor = HotKeyArmor(cache_capacity=4, cache_ttl=1.0, track=1)
        armor.observe("occupant")  # takes the single tracked slot
        for _ in range(10):
            armor.observe("occupant")
        # A once-seen key is not hot, so admit is refused outright.
        assert not armor.admit("cold", "v", now=0.0)
        assert armor.lookup("occupant", now=0.0) is None  # hot but empty

    def test_hot_key_admit_then_lookup(self):
        armor = HotKeyArmor(cache_capacity=4, cache_ttl=1.0, track=8)
        assert armor.lookup("k", now=0.0) is None  # first sight: elected, empty
        assert armor.admit("k", "v", now=0.0)
        assert armor.lookup("k", now=0.5) == "v"
        assert armor.lookup("k", now=2.0) is None  # TTL-bounded staleness

    def test_invalidate_drops_local_copy(self):
        armor = HotKeyArmor(cache_capacity=4, cache_ttl=10.0, track=8)
        armor.observe("k")
        armor.admit("k", "v", now=0.0)
        assert armor.invalidate("k")
        assert armor.lookup("k", now=0.1) is None
