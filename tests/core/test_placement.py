"""Tests for Algorithm 1 and Theorem 1 (Section III)."""

from fractions import Fraction

import pytest

from repro.core.placement import (
    HostRange,
    place_virtual_nodes,
    theoretical_min_vnodes,
)
from repro.core.ring import prefix_active
from repro.errors import ConfigurationError

RING = 2 ** 20


class TestTheorem1:
    def test_lower_bound_formula(self):
        assert theoretical_min_vnodes(1) == 1
        assert theoretical_min_vnodes(2) == 2
        assert theoretical_min_vnodes(6) == 16
        assert theoretical_min_vnodes(10) == 46
        assert theoretical_min_vnodes(40) == 781

    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigurationError):
            theoretical_min_vnodes(0)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 8, 10, 12])
    def test_algorithm1_meets_the_bound_exactly(self, n):
        placement = place_virtual_nodes(n, RING)
        assert placement.num_vnodes == theoretical_min_vnodes(n)

    def test_per_server_vnode_counts(self):
        # s_1 has 1 vnode; s_i (i>1) has exactly i-1.
        placement = place_virtual_nodes(6, RING)
        for server in range(6):
            expected = 1 if server == 0 else server
            assert len(placement.ranges_of(server)) == expected


class TestBalanceCondition:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 7, 10, 13])
    def test_verify_balance_every_prefix(self, n):
        place_virtual_nodes(n, RING).verify_balance()

    def test_exact_fraction_at_each_prefix(self):
        placement = place_virtual_nodes(8, RING)
        for num_active in range(1, 9):
            for server in range(num_active):
                assert placement.owned_fraction(server, num_active) == Fraction(
                    1, num_active
                )

    def test_ranges_tile_the_key_space(self):
        placement = place_virtual_nodes(7, RING)
        ranges = sorted(placement.ranges, key=lambda r: r.start)
        assert ranges[0].start == 0
        for prev, cur in zip(ranges, ranges[1:]):
            assert prev.end == cur.start  # no gaps, no overlaps
        assert ranges[-1].end == RING

    def test_all_lengths_positive(self):
        placement = place_virtual_nodes(10, RING)
        assert all(r.length > 0 for r in placement.ranges)

    def test_indivisible_ring_size_still_exact(self):
        # 997 is prime: K/(i(i-1)) is never an integer, exercising the
        # Fraction arithmetic.
        placement = place_virtual_nodes(5, 997)
        placement.verify_balance()


class TestHostRange:
    def test_end(self):
        r = HostRange(Fraction(10), Fraction(5), server=2)
        assert r.end == 15


class TestBuildRing:
    def test_ring_has_one_vnode_per_range(self):
        placement = place_virtual_nodes(6, RING)
        ring = placement.build_ring()
        assert len(ring) == placement.num_vnodes

    def test_full_activation_reproduces_host_ranges(self):
        placement = place_virtual_nodes(5, RING)
        ring = placement.build_ring()
        owned = ring.owned_lengths()
        for server in range(5):
            expected = sum(r.length for r in placement.ranges_of(server))
            assert owned[server] == expected

    def test_final_successor_property(self):
        # When s_i powers off (active prefix i-1), each of its borrowed
        # ranges must drain back to its lender: the range lookup under
        # prefix i-1 equals the server the range was borrowed from.  We
        # verify the observable consequence — exact balance at i-1 — plus
        # lookup consistency on a sample of positions.
        placement = place_virtual_nodes(6, RING)
        ring = placement.build_ring()
        for num_active in range(1, 7):
            active = prefix_active(num_active)
            for rng_ in placement.ranges:
                midpoint = (rng_.start + rng_.end) / 2
                owner = ring.lookup(midpoint, active)
                assert owner < num_active

    def test_single_server_owns_everything(self):
        placement = place_virtual_nodes(1, RING)
        ring = placement.build_ring()
        assert ring.lookup(12345) == 0
        assert ring.owned_lengths() == {0: RING}


class TestValidation:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            place_virtual_nodes(0, RING)
        with pytest.raises(ConfigurationError):
            place_virtual_nodes(3, 0)

    def test_placement_is_deterministic(self):
        a = place_virtual_nodes(6, RING)
        b = place_virtual_nodes(6, RING)
        assert [(r.start, r.length, r.server) for r in a.ranges] == [
            (r.start, r.length, r.server) for r in b.ranges
        ]
