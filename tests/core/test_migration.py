"""Tests for migration analysis (the Section II minimality objective)."""

from fractions import Fraction

import pytest

from repro.core.migration import (
    empirical_remap_fraction,
    migration_lower_bound,
    naive_remap_fraction,
    plan_migration,
    remap_matrix,
)
from repro.core.router import NaiveRouter, ProteusRouter
from repro.errors import ConfigurationError
from tests.conftest import make_keys


class TestLowerBound:
    def test_formula(self):
        assert migration_lower_bound(10, 9) == Fraction(1, 10)
        assert migration_lower_bound(9, 10) == Fraction(1, 10)
        assert migration_lower_bound(4, 4) == 0
        assert migration_lower_bound(2, 6) == Fraction(4, 6)

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            migration_lower_bound(0, 1)


class TestNaiveRemapFraction:
    def test_adjacent_sizes(self):
        # n -> n+1 keeps ~1/(n+1): remap = n/(n+1) for coprime neighbours.
        assert naive_remap_fraction(9, 10) == Fraction(9, 10)
        assert naive_remap_fraction(10, 9) == Fraction(9, 10)

    def test_no_change_no_remap(self):
        assert naive_remap_fraction(5, 5) == 0

    def test_multiples_share_residues(self):
        # 2 -> 4: keys with hash % 4 < 2 keep their server: half survive.
        assert naive_remap_fraction(2, 4) == Fraction(1, 2)

    def test_matches_measurement(self):
        router = NaiveRouter(12)
        predicted = float(naive_remap_fraction(7, 8))
        measured = empirical_remap_fraction(router, 7, 8, num_samples=8000)
        assert measured == pytest.approx(predicted, abs=0.02)


class TestProteusMeetsBound:
    @pytest.mark.parametrize("n_old,n_new", [(10, 9), (9, 10), (5, 4), (2, 3)])
    def test_single_step_transitions(self, n_old, n_new):
        router = ProteusRouter(10)
        bound = float(migration_lower_bound(n_old, n_new))
        measured = empirical_remap_fraction(router, n_old, n_new, num_samples=8000)
        assert measured == pytest.approx(bound, abs=0.02)

    def test_multi_step_transition(self):
        router = ProteusRouter(10)
        bound = float(migration_lower_bound(10, 6))  # 0.4
        measured = empirical_remap_fraction(router, 10, 6, num_samples=8000)
        assert measured == pytest.approx(bound, abs=0.02)

    def test_naive_is_far_above_bound(self):
        router = NaiveRouter(10)
        bound = float(migration_lower_bound(10, 9))
        measured = empirical_remap_fraction(router, 10, 9, num_samples=4000)
        assert measured > 5 * bound


class TestMigrationPlan:
    def test_plan_partitions_keys(self):
        router = ProteusRouter(6)
        keys = make_keys(1000)
        plan = plan_migration(router, keys, 6, 5)
        assert plan.moved + plan.stationary == len(keys)

    def test_scale_down_sources_are_the_drained_server(self):
        router = ProteusRouter(6)
        plan = plan_migration(router, make_keys(2000), 6, 5)
        assert plan.sources() == [5]
        assert set(plan.destinations()) == set(range(5))

    def test_scale_up_destinations_are_the_new_server(self):
        router = ProteusRouter(6)
        plan = plan_migration(router, make_keys(2000), 5, 6)
        assert plan.destinations() == [5]
        assert set(plan.sources()) <= set(range(5))

    def test_remap_fraction_property(self):
        router = ProteusRouter(4)
        plan = plan_migration(router, make_keys(4000), 4, 3)
        assert plan.remap_fraction == pytest.approx(0.25, abs=0.03)

    def test_empty_keys(self):
        plan = plan_migration(ProteusRouter(3), [], 3, 2)
        assert plan.moved == 0
        assert plan.remap_fraction == 0.0


class TestRemapMatrix:
    def test_shape_and_edges(self):
        matrix = remap_matrix(ProteusRouter(5), 5, num_samples=500)
        assert len(matrix) == 5
        assert matrix[4][0] == 0.0  # no n=5 -> 6
        assert matrix[0][1] == 0.0  # no n=1 -> 0

    def test_values_near_bound(self):
        matrix = remap_matrix(ProteusRouter(5), 5, num_samples=3000)
        for n in range(1, 5):
            up = matrix[n - 1][0]
            assert up == pytest.approx(1 / (n + 1), abs=0.03)
