"""Hot-key armor wired through the retrieval engines.

Covers the tentpole contracts: sketch-elected keys served from the
frontend-local cache (``FetchPath.HIT_LOCAL``) with TTL-bounded staleness,
grouped digest probes (at most one :class:`CheckDigestMulti` per ceding
old owner per batch, bit-identical to per-key consults), and
power-of-two-choices read routing for hot keys on the replicated path.
"""

import pytest

from repro.bloom import BloomFilter, KeyHashes
from repro.core.replication import ReplicatedProteusRouter
from repro.core.retrieval import (
    CheckDigest,
    CheckDigestMulti,
    FetchPath,
    ProbeCache,
    ProbeCacheMulti,
    ReadDatabase,
    ReplicatedRetrievalEngine,
    RetrievalConfig,
    RetrievalEngine,
    WaitForLeader,
    WriteBack,
    WriteBackMulti,
)
from repro.core.router import ProteusRouter
from repro.core.transition import RoutingEpochs, Transition

ROUTER = ProteusRouter(4, ring_size=2 ** 20)
STEADY = RoutingEpochs(new=3, old=None, transition=None)
DRAINING = RoutingEpochs(
    new=3, old=4, transition=Transition(n_old=4, n_new=3, started_at=0.0, ttl=60.0)
)

ARMORED = dict(hot_key_cache=True, hot_key_ttl=1.0)


class DictDriver:
    """Answers scalar and batched commands from plain dict state."""

    def __init__(self, stores=None, db=None, digests=None):
        self.stores = stores or {}
        self.db = db or {}
        self.digests = digests or {}
        self.trace = []

    def scalar(self, generator, key):
        result = None
        try:
            while True:
                command = generator.send(result)
                self.trace.append(command)
                result = self._answer(command, key)
        except StopIteration as stop:
            return stop.value

    def batch(self, generator):
        answers = None
        try:
            while True:
                round_ = generator.send(answers)
                self.trace.extend(round_)
                answers = tuple(self._answer(c) for c in round_)
        except StopIteration as stop:
            return stop.value

    def _answer(self, command, key=None):
        # Scalar commands carry no key (the retrieval is single-key);
        # batched commands name their own.
        if isinstance(command, ProbeCache):
            return self.stores.get(command.server_id, {}).get(key)
        if isinstance(command, ProbeCacheMulti):
            store = self.stores.get(command.server_id, {})
            return {k: store[k] for k in command.keys if k in store}
        if isinstance(command, CheckDigest):
            return key in self.digests.get(command.server_id, ())
        if isinstance(command, CheckDigestMulti):
            digest = self.digests.get(command.server_id, ())
            return [k in digest for k in command.keys]
        if isinstance(command, WaitForLeader):
            return False
        if isinstance(command, ReadDatabase):
            return self.db[key if key is not None else command.key]
        if isinstance(command, WriteBack):
            self.stores.setdefault(command.server_id, {})[key] = command.value
            return None
        if isinstance(command, WriteBackMulti):
            store = self.stores.setdefault(command.server_id, {})
            for k, value in command.items:
                store[k] = value
            return None
        raise AssertionError(f"unexpected command {command!r}")


def moved_keys(count):
    """Keys whose owner differs between the 4- and 3-server epochs."""
    found = []
    for i in range(50_000):
        key = f"page:{i}"
        if ROUTER.route(key, 4) != ROUTER.route(key, 3):
            found.append(key)
            if len(found) == count:
                return found
    raise AssertionError("not enough remapped keys")


class TestScalarArmor:
    def test_second_read_is_served_locally(self):
        engine = RetrievalEngine(ROUTER, config=RetrievalConfig(**ARMORED))
        driver = DictDriver(db={"k": "db-value"})
        first = driver.scalar(engine.retrieve("k", STEADY, now=0.0), "k")
        assert first.path is FetchPath.MISS_DB
        trace_len = len(driver.trace)

        second = driver.scalar(engine.retrieve("k", STEADY, now=0.5), "k")
        assert second.path is FetchPath.HIT_LOCAL
        assert second.value == "db-value"
        assert len(driver.trace) == trace_len  # zero commands issued
        assert engine.stats.counts["hit_local"] == 1

    def test_ttl_bounds_local_staleness(self):
        engine = RetrievalEngine(ROUTER, config=RetrievalConfig(**ARMORED))
        driver = DictDriver(db={"k": "v"})
        driver.scalar(engine.retrieve("k", STEADY, now=0.0), "k")
        # At now=1.0 the entry is exactly ttl old: never served.
        stale = driver.scalar(engine.retrieve("k", STEADY, now=1.0), "k")
        assert stale.path is not FetchPath.HIT_LOCAL

    def test_armor_inert_without_clock(self):
        engine = RetrievalEngine(ROUTER, config=RetrievalConfig(**ARMORED))
        driver = DictDriver(db={"k": "v"})
        driver.scalar(engine.retrieve("k", STEADY), "k")
        repeat = driver.scalar(engine.retrieve("k", STEADY), "k")
        assert repeat.path is not FetchPath.HIT_LOCAL

    def test_armor_off_by_default(self):
        engine = RetrievalEngine(ROUTER)
        driver = DictDriver(db={"k": "v"})
        driver.scalar(engine.retrieve("k", STEADY, now=0.0), "k")
        repeat = driver.scalar(engine.retrieve("k", STEADY, now=0.1), "k")
        assert repeat.path is not FetchPath.HIT_LOCAL

    def test_invalidation_forces_authoritative_path(self):
        engine = RetrievalEngine(ROUTER, config=RetrievalConfig(**ARMORED))
        driver = DictDriver(db={"k": "v1"})
        driver.scalar(engine.retrieve("k", STEADY, now=0.0), "k")
        engine.armor.invalidate("k")
        driver.db["k"] = "v2"
        fresh = driver.scalar(engine.retrieve("k", STEADY, now=0.1), "k")
        assert fresh.path is not FetchPath.HIT_LOCAL


class TestBatchArmor:
    def test_warm_batch_issues_no_commands(self):
        engine = RetrievalEngine(ROUTER, config=RetrievalConfig(**ARMORED))
        keys = ["a", "b", "c"]
        driver = DictDriver(db={k: f"db-{k}" for k in keys})
        driver.batch(engine.retrieve_many(keys, STEADY, now=0.0))
        trace_len = len(driver.trace)

        outcomes = driver.batch(engine.retrieve_many(keys, STEADY, now=0.5))
        assert len(driver.trace) == trace_len
        for key in keys:
            assert outcomes[key].path is FetchPath.HIT_LOCAL
            assert outcomes[key].value == f"db-{key}"

    def test_batch_and_scalar_agree_on_local_hits(self):
        batch_engine = RetrievalEngine(
            ROUTER, config=RetrievalConfig(**ARMORED)
        )
        scalar_engine = RetrievalEngine(
            ROUTER, config=RetrievalConfig(**ARMORED)
        )
        keys = ["a", "b"]
        db = {k: f"db-{k}" for k in keys}
        batch_driver = DictDriver(db=dict(db))
        scalar_driver = DictDriver(db=dict(db))
        batch_driver.batch(batch_engine.retrieve_many(keys, STEADY, now=0.0))
        for key in keys:
            scalar_driver.scalar(scalar_engine.retrieve(key, STEADY, now=0.0), key)
        batched = batch_driver.batch(
            batch_engine.retrieve_many(keys, STEADY, now=0.5)
        )
        for key in keys:
            single = scalar_driver.scalar(
                scalar_engine.retrieve(key, STEADY, now=0.5), key
            )
            assert batched[key].path is single.path is FetchPath.HIT_LOCAL
            assert batched[key].value == single.value
        assert batch_engine.stats.counts == scalar_engine.stats.counts


class TestGroupedDigestProbes:
    def test_at_most_one_digest_probe_per_old_owner(self):
        keys = moved_keys(24)
        old_owners = {ROUTER.route(k, 4) for k in keys}
        digests = {owner: set() for owner in old_owners}
        engine = RetrievalEngine(ROUTER)
        driver = DictDriver(db={k: f"db-{k}" for k in keys}, digests=digests)
        driver.batch(engine.retrieve_many(keys, DRAINING))

        digest_probes = [
            c for c in driver.trace if isinstance(c, CheckDigestMulti)
        ]
        probed_owners = [c.server_id for c in digest_probes]
        # Exactly one grouped consult per ceding old owner, never chunked.
        assert len(probed_owners) == len(set(probed_owners))
        assert set(probed_owners) == old_owners
        grouped = {c.server_id: set(c.keys) for c in digest_probes}
        for key in keys:
            assert key in grouped[ROUTER.route(key, 4)]
        # And no scalar digest consults leak into the batch plan.
        assert not any(isinstance(c, CheckDigest) for c in driver.trace)

    def test_digest_multi_bit_identical_to_scalar(self):
        digest = BloomFilter(256, 4)
        members = [f"member:{i}" for i in range(40)]
        for key in members:
            digest.add(key)
        probes = members[:10] + [f"absent:{i}" for i in range(30)]
        transition = Transition(
            n_old=4, n_new=3, started_at=0.0, ttl=60.0, digests={2: digest}
        )
        scalar = [transition.digest_hit(2, key) for key in probes]
        batched = transition.digest_hit_many(2, probes)
        assert list(batched) == scalar
        hashed = transition.digest_hit_many(
            2, probes, hashes=[KeyHashes(k) for k in probes]
        )
        assert list(hashed) == scalar
        # No digest broadcast for a server: all-False, same as the scalar.
        assert transition.digest_hit_many(0, probes) == [False] * len(probes)
        assert not transition.digest_hit(0, probes[0])


class TestPowerOfTwoChoices:
    @staticmethod
    def _replicated_key(router):
        for i in range(10_000):
            key = f"page:{i}"
            plan = router.read_plan(key, 4)
            if len(plan.targets) >= 2:
                return key
        raise AssertionError("no key with two distinct replica owners")

    def test_read_plan_prefers_less_loaded_replica(self):
        router = ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        key = self._replicated_key(router)
        base = router.read_plan(key, 4)
        primary, secondary = base.targets[0], base.targets[1]

        from repro.core.hotkey import ServerLoadEWMA

        loads = ServerLoadEWMA(halflife=1000.0)
        for _ in range(10):
            loads.record_request(primary, now=0.0)
        plan = router.read_plan(key, 4, loads=loads, d_choices=2, now=0.0)
        assert plan.chosen == secondary
        assert plan.targets[0] == secondary
        # The target set and the primary are load-independent.
        assert set(plan.targets) == set(base.targets)
        assert plan.primary == base.primary == primary

    def test_cold_keys_keep_ring_order(self):
        router = ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        key = self._replicated_key(router)
        config = RetrievalConfig(
            hot_key_cache=True, d_choices=2, hot_key_track=1
        )
        engine = ReplicatedRetrievalEngine(router, config=config)
        base = router.read_plan(key, 4)
        # Saturate the single tracked slot so the test key stays cold
        # (estimate 1 < threshold 3), and load the primary heavily.
        for _ in range(3):
            engine.armor.observe("occupant")
        for _ in range(10):
            engine.armor.loads.record_request(base.targets[0], now=0.0)

        probed = []

        def drive(generator):
            result = None
            try:
                while True:
                    command = generator.send(result)
                    if isinstance(command, ProbeCache):
                        probed.append(command.server_id)
                        result = "value"
                    elif isinstance(command, WriteBack):
                        result = None  # replica repopulation
                    else:
                        raise AssertionError(f"unexpected {command!r}")
            except StopIteration as stop:
                return stop.value

        # The key is not sketch-elected, so strict ring order applies
        # even though the primary reads as heavily loaded.
        outcome = drive(engine.retrieve(key, STEADY_REPLICATED, now=0.0))
        assert probed == [base.targets[0]]
        assert outcome.served_by == base.targets[0]

    def test_hot_key_reads_from_less_loaded_replica(self):
        router = ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        key = self._replicated_key(router)
        config = RetrievalConfig(hot_key_cache=True, d_choices=2)
        engine = ReplicatedRetrievalEngine(router, config=config)
        base = router.read_plan(key, 4)
        primary, secondary = base.targets[0], base.targets[1]
        engine.armor.observe(key)  # sketch-elected: d-choices applies
        for _ in range(10):
            engine.armor.loads.record_request(primary, now=0.0)

        probed = []

        def drive(generator):
            result = None
            try:
                while True:
                    command = generator.send(result)
                    if isinstance(command, WriteBack):
                        result = None  # replica repopulation
                        continue
                    assert isinstance(command, ProbeCache)
                    probed.append(command.server_id)
                    result = "value"
            except StopIteration as stop:
                return stop.value

        outcome = drive(engine.retrieve(key, STEADY_REPLICATED, now=0.0))
        assert probed[0] == secondary
        assert outcome.served_by == secondary
        assert not outcome.touched_database

    def test_replicated_local_hit_skips_all_probes(self):
        router = ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        key = self._replicated_key(router)
        config = RetrievalConfig(hot_key_cache=True, hot_key_ttl=1.0)
        engine = ReplicatedRetrievalEngine(router, config=config)
        engine.armor.observe(key)
        engine.armor.admit(key, "local-copy", now=0.0)

        def drive(generator):
            try:
                generator.send(None)
            except StopIteration as stop:
                return stop.value
            raise AssertionError("expected zero commands")

        outcome = drive(engine.retrieve(key, STEADY_REPLICATED, now=0.5))
        assert outcome.local
        assert outcome.value == "local-copy"
        assert outcome.served_by is None
        assert outcome.probes == 0


STEADY_REPLICATED = RoutingEpochs(new=4, old=None, transition=None)
