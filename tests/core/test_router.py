"""Tests for the Table II routing scenarios."""

import collections
import random

import pytest

from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
    make_router,
    scenario_routers,
)
from repro.errors import ConfigurationError, RoutingError
from tests.conftest import make_keys


def load_counts(router, keys, num_active):
    counts = collections.Counter(router.route(k, num_active) for k in keys)
    return counts


class TestStaticRouter:
    def test_uses_all_servers_regardless_of_active(self):
        router = StaticRouter(8)
        keys = make_keys(4000)
        assert set(load_counts(router, keys, 1)) == set(range(8))

    def test_balanced(self):
        counts = load_counts(StaticRouter(4), make_keys(8000), 4)
        assert min(counts.values()) / max(counts.values()) > 0.9

    def test_deterministic(self):
        router = StaticRouter(5)
        assert router.route("k", 5) == router.route("k", 5)

    def test_name(self):
        assert StaticRouter(2).name == "Static"


class TestNaiveRouter:
    def test_routes_within_active(self):
        router = NaiveRouter(10)
        for key in make_keys(200):
            assert router.route(key, 3) < 3

    def test_balanced_within_slot(self):
        counts = load_counts(NaiveRouter(10), make_keys(9000), 6)
        assert min(counts.values()) / max(counts.values()) > 0.9

    def test_massive_remap_on_resize(self):
        # The Reddit incident: n -> n+1 remaps ~n/(n+1) of keys.
        router = NaiveRouter(10)
        keys = make_keys(5000)
        moved = sum(1 for k in keys if router.route(k, 9) != router.route(k, 10))
        assert moved / len(keys) > 0.85

    def test_rejects_bad_active_count(self):
        router = NaiveRouter(4)
        with pytest.raises(RoutingError):
            router.route("k", 0)
        with pytest.raises(RoutingError):
            router.route("k", 5)


class TestConsistentRouter:
    def test_log_variant_vnode_count(self):
        router = ConsistentRouter.log_variant(8)
        assert len(router.ring) == 8 * 3  # ceil(log2(8)) = 3

    def test_quadratic_variant_vnode_count(self):
        router = ConsistentRouter.quadratic_variant(10)
        assert len(router.ring) == 50  # 10^2/2

    def test_same_seed_same_routing(self):
        a = ConsistentRouter.quadratic_variant(6, seed=0)
        b = ConsistentRouter.quadratic_variant(6, seed=0)
        keys = make_keys(300)
        assert [a.route(k, 4) for k in keys] == [b.route(k, 4) for k in keys]

    def test_different_seed_different_placement(self):
        a = ConsistentRouter.quadratic_variant(6, seed=0)
        b = ConsistentRouter.quadratic_variant(6, seed=1)
        keys = make_keys(300)
        assert [a.route(k, 4) for k in keys] != [b.route(k, 4) for k in keys]

    def test_small_remap_on_resize(self):
        router = ConsistentRouter.quadratic_variant(10)
        keys = make_keys(5000)
        moved = sum(1 for k in keys if router.route(k, 9) != router.route(k, 10))
        # Consistent hashing moves far less than naive's ~90%.
        assert moved / len(keys) < 0.35

    def test_worse_balance_than_proteus(self):
        keys = make_keys(20000)
        consistent = load_counts(ConsistentRouter.log_variant(8), keys, 8)
        proteus = load_counts(ProteusRouter(8), keys, 8)

        def ratio(counts):
            values = [counts.get(s, 0) for s in range(8)]
            return min(values) / max(values)

        assert ratio(proteus) > ratio(consistent)

    def test_rejects_both_vnode_args(self):
        with pytest.raises(ConfigurationError):
            ConsistentRouter(4, vnodes_per_server=3, total_vnodes=10)

    def test_rejects_too_few_total_vnodes(self):
        with pytest.raises(ConfigurationError):
            ConsistentRouter(4, total_vnodes=3)

    def test_name(self):
        assert ConsistentRouter.log_variant(4).name == "Consistent"


class TestProteusRouter:
    def test_routes_within_active(self):
        router = ProteusRouter(10)
        for key in make_keys(300):
            for n in (1, 4, 10):
                assert router.route(key, n) < n

    def test_near_perfect_balance_at_every_prefix(self):
        router = ProteusRouter(8)
        keys = make_keys(40_000)
        for n in (2, 5, 8):
            counts = load_counts(router, keys, n)
            values = [counts.get(s, 0) for s in range(n)]
            assert min(values) / max(values) > 0.9

    def test_migration_only_touches_resized_server(self):
        router = ProteusRouter(10)
        keys = make_keys(4000)
        for key in keys:
            before = router.route(key, 9)
            after = router.route(key, 10)
            # Keys either stay or move to the newly powered-on server 9.
            assert after == before or after == 9

    def test_scale_down_spreads_to_all_remaining(self):
        router = ProteusRouter(6)
        keys = make_keys(30_000)
        gained = collections.Counter()
        for key in keys:
            before = router.route(key, 6)
            after = router.route(key, 5)
            if before != after:
                assert before == 5  # only the removed server loses keys
                gained[after] += 1
        # Balance condition: the drained load spreads over all 5 survivors.
        assert set(gained) == set(range(5))
        assert min(gained.values()) / max(gained.values()) > 0.8


class TestFactory:
    def test_make_router_all_scenarios(self):
        assert isinstance(make_router("static", 4), StaticRouter)
        assert isinstance(make_router("naive", 4), NaiveRouter)
        assert isinstance(make_router("consistent", 4), ConsistentRouter)
        assert isinstance(make_router("proteus", 4), ProteusRouter)

    def test_make_router_consistent_variants(self):
        log = make_router("consistent", 8, variant="log")
        quad = make_router("consistent", 8, variant="quadratic")
        assert len(quad.ring) > len(log.ring)

    def test_make_router_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            make_router("mystery", 4)
        with pytest.raises(ConfigurationError):
            make_router("consistent", 4, variant="cubic")

    def test_scenario_routers_order(self):
        routers = scenario_routers(4)
        assert [r.name for r in routers] == [
            "Static", "Naive", "Consistent", "Proteus",
        ]
