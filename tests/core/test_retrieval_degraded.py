"""Degraded-mode engine paths: the engine serves *around* cache faults.

A driver may answer any probe, digest consult, or write-back with
``SERVER_UNAVAILABLE``; these tests pin the contract from the scalar and
batch planners alike: the value is always served (from the old owner or
the database), the path is ``DEGRADED_DB`` exactly when a fault *forced*
the database read, a failed write-back degrades the outcome without
changing its path, and the per-event counters in ``FetchStats`` agree
between ``retrieve`` and ``retrieve_many``.
"""

import dataclasses

from repro.core.retrieval import (
    CheckDigest,
    CheckDigestMulti,
    FetchPath,
    ProbeCache,
    ProbeCacheMulti,
    ReadDatabase,
    RetrievalEngine,
    SERVER_UNAVAILABLE,
    WaitForLeader,
    WriteBack,
    WriteBackMulti,
)
from repro.core.router import ProteusRouter
from repro.core.transition import RoutingEpochs, Transition

ROUTER = ProteusRouter(4, ring_size=2 ** 20)
STEADY = RoutingEpochs(new=3, old=None, transition=None)
DRAINING = RoutingEpochs(
    new=3, old=4, transition=Transition(n_old=4, n_new=3, started_at=0.0, ttl=60.0)
)
#: scale-up drain: old owners of moved keys are spread over several
#: servers, so killing one still leaves other keys' HIT_OLD path alive
GROWING = RoutingEpochs(
    new=4, old=3, transition=Transition(n_old=3, n_new=4, started_at=0.0, ttl=60.0)
)


def remapped_key():
    for i in range(10_000):
        key = f"page:{i}"
        if ROUTER.route(key, 4) != ROUTER.route(key, 3):
            return key
    raise AssertionError("no remapped key found")


KEY = remapped_key()
NEW_ID = ROUTER.route(KEY, 3)
OLD_ID = ROUTER.route(KEY, 4)


class FaultySubstrate:
    """A pure in-memory substrate with a per-server health map.

    Drives both the scalar and the batch generator from the *same* state,
    which is what makes the scalar-vs-batch parity assertions meaningful.
    """

    def __init__(self, down=(), digest_down=(), digest_yes=(), stores=None):
        self.down = set(down)
        self.digest_down = set(digest_down)
        self.digest_yes = set(digest_yes)
        self.stores = stores or {}
        self.db_reads = []
        self.written = []

    def _value(self, server_id, key):
        return self.stores.get(server_id, {}).get(key)

    def scalar(self, engine, key, epochs):
        gen = engine.retrieve(key, epochs)
        result = None
        try:
            while True:
                command = gen.send(result)
                result = self._answer_scalar(command, key)
        except StopIteration as stop:
            return stop.value

    def _answer_scalar(self, command, key):
        if isinstance(command, ProbeCache):
            if command.server_id in self.down:
                return SERVER_UNAVAILABLE
            return self._value(command.server_id, key)
        if isinstance(command, CheckDigest):
            if command.server_id in self.digest_down:
                return SERVER_UNAVAILABLE
            return key in self.digest_yes
        if isinstance(command, WaitForLeader):
            return False
        if isinstance(command, ReadDatabase):
            self.db_reads.append(key)
            return f"db:{key}"
        if isinstance(command, WriteBack):
            if command.server_id in self.down:
                return SERVER_UNAVAILABLE
            self.written.append((command.server_id, key))
            return None
        raise AssertionError(f"unexpected command {command!r}")

    def batch(self, engine, keys, epochs):
        gen = engine.retrieve_many(keys, epochs)
        answers = None
        try:
            while True:
                round_ = gen.send(answers)
                answers = tuple(
                    self._answer_batched(command) for command in round_
                )
        except StopIteration as stop:
            return stop.value

    def _answer_batched(self, command):
        if isinstance(command, ProbeCacheMulti):
            if command.server_id in self.down:
                return SERVER_UNAVAILABLE
            hits = {}
            for key in command.keys:
                value = self._value(command.server_id, key)
                if value is not None:
                    hits[key] = value
            return hits
        if isinstance(command, WriteBackMulti):
            if command.server_id in self.down:
                return SERVER_UNAVAILABLE
            for key, _ in command.items:
                self.written.append((command.server_id, key))
            return None
        if isinstance(command, CheckDigestMulti):
            if command.server_id in self.digest_down:
                return SERVER_UNAVAILABLE
            return [key in self.digest_yes for key in command.keys]
        if isinstance(command, (CheckDigest, WaitForLeader, ReadDatabase)):
            if isinstance(command, CheckDigest):
                if command.server_id in self.digest_down:
                    return SERVER_UNAVAILABLE
                return command.key in self.digest_yes
            if isinstance(command, WaitForLeader):
                return False
            self.db_reads.append(command.key)
            return f"db:{command.key}"
        raise AssertionError(f"unexpected command {command!r}")


class TestScalarDegradedPaths:
    def test_dead_new_owner_forces_degraded_db(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate(down={NEW_ID})
        outcome = substrate.scalar(engine, KEY, STEADY)
        assert outcome.path is FetchPath.DEGRADED_DB
        assert outcome.value == f"db:{KEY}"
        assert outcome.degraded
        assert outcome.touched_database
        # probe skipped AND the write-back onto the dead server skipped
        assert engine.stats.degraded["probe_new"] == 1
        assert engine.stats.degraded["writeback"] == 1
        assert engine.stats.database_fraction == 1.0

    def test_unknown_digest_forces_degraded_db(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate(digest_down={OLD_ID})
        outcome = substrate.scalar(engine, KEY, DRAINING)
        assert outcome.path is FetchPath.DEGRADED_DB
        assert outcome.degraded
        assert engine.stats.degraded["digest"] == 1
        assert engine.stats.degraded["probe_old"] == 0

    def test_dead_old_owner_on_digest_hit_degrades(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate(down={OLD_ID}, digest_yes={KEY})
        outcome = substrate.scalar(engine, KEY, DRAINING)
        assert outcome.path is FetchPath.DEGRADED_DB
        assert engine.stats.degraded["probe_old"] == 1
        # the value was still installed at the (healthy) new owner
        assert (NEW_ID, KEY) in substrate.written

    def test_failed_writeback_never_fails_a_hit_old(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate(
            down={NEW_ID},
            digest_yes={KEY},
            stores={OLD_ID: {KEY: "hot"}},
        )
        outcome = substrate.scalar(engine, KEY, DRAINING)
        # The old owner still has the hot copy: served, not degraded to DB.
        assert outcome.path is FetchPath.HIT_OLD
        assert outcome.value == "hot"
        assert outcome.degraded
        assert not outcome.touched_database
        assert engine.stats.degraded["probe_new"] == 1
        assert engine.stats.degraded["writeback"] == 1
        assert substrate.db_reads == []

    def test_failed_writeback_after_plain_miss_keeps_miss_path(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate()
        # healthy probe (miss), healthy DB, then the write-back fails
        substrate.down = set()  # probes healthy...

        class WritebackDown(FaultySubstrate):
            def _answer_scalar(self, command, key):
                if isinstance(command, WriteBack):
                    return SERVER_UNAVAILABLE
                return super()._answer_scalar(command, key)

        substrate = WritebackDown()
        outcome = substrate.scalar(engine, KEY, STEADY)
        # no fault forced the DB read — an ordinary miss stays MISS_DB
        assert outcome.path is FetchPath.MISS_DB
        assert outcome.degraded
        assert engine.stats.degraded["writeback"] == 1
        assert engine.stats.counts[FetchPath.DEGRADED_DB] == 0

    def test_healthy_paths_record_nothing_degraded(self):
        engine = RetrievalEngine(ROUTER)
        substrate = FaultySubstrate(digest_yes={KEY})
        outcome = substrate.scalar(engine, KEY, DRAINING)
        assert outcome.path is FetchPath.FALSE_POSITIVE_DB
        assert not outcome.degraded
        assert engine.stats.degraded_events == 0


class TestBatchScalarParity:
    def run_both(
        self, down=(), digest_down=(), digest_yes=(), stores=None, keys=None,
        epochs=DRAINING,
    ):
        keys = keys or [f"page:{i}" for i in range(24)]
        scalar_engine = RetrievalEngine(ROUTER)
        batch_engine = RetrievalEngine(ROUTER)

        def fresh(engine_, method):
            substrate = FaultySubstrate(
                down=down, digest_down=digest_down, digest_yes=digest_yes,
                stores={
                    sid: dict(items) for sid, items in (stores or {}).items()
                },
            )
            if method == "scalar":
                return {
                    key: substrate.scalar(engine_, key, epochs)
                    for key in keys
                }
            return substrate.batch(engine_, keys, epochs)

        scalar_outcomes = fresh(scalar_engine, "scalar")
        batch_outcomes = fresh(batch_engine, "batch")
        assert set(scalar_outcomes) == set(batch_outcomes)
        for key in keys:
            a, b = scalar_outcomes[key], batch_outcomes[key]
            assert a.path == b.path, key
            assert a.value == b.value, key
            assert a.degraded == b.degraded, key
        assert scalar_engine.stats.counts == batch_engine.stats.counts
        assert scalar_engine.stats.degraded == batch_engine.stats.degraded
        return scalar_engine.stats

    def test_parity_with_one_dead_server(self):
        stats = self.run_both(down={0})
        assert stats.degraded_events > 0
        assert stats.counts[FetchPath.DEGRADED_DB] > 0

    def test_parity_with_dead_old_owner_and_hot_copies(self):
        # Scale-up drain: moved keys come from several old owners, so
        # killing one exercises the dead-old-owner branch while the other
        # keys' hot copies still serve HIT_OLD.
        keys = [f"page:{i}" for i in range(24)]
        moved = [k for k in keys if ROUTER.route(k, 3) != ROUTER.route(k, 4)]
        dead = ROUTER.route(moved[0], 3)
        assert any(ROUTER.route(k, 3) != dead for k in moved)
        stores = {}
        for key in keys:
            stores.setdefault(ROUTER.route(key, 3), {})[key] = f"hot:{key}"
        stats = self.run_both(
            down={dead}, digest_yes=set(keys), stores=stores, keys=keys,
            epochs=GROWING,
        )
        assert stats.counts[FetchPath.HIT_OLD] > 0
        assert stats.degraded["probe_old"] > 0

    def test_parity_with_unknown_digest(self):
        stats = self.run_both(digest_down={0, 1, 2, 3, 4})
        assert stats.degraded["digest"] > 0
        assert stats.counts[FetchPath.DEGRADED_DB] > 0

    def test_parity_healthy_baseline(self):
        stats = self.run_both()
        assert stats.degraded_events == 0
