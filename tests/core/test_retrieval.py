"""Tests for the sans-IO Algorithm-2 retrieval engine.

Drives the command generator by hand with scripted answers — no cache, no
database, no clock — which is exactly the point of the sans-IO core: the
branch logic is testable without any substrate at all.
"""

from repro.core.retrieval import (
    CheckDigest,
    CheckDigestMulti,
    FetchPath,
    FetchStats,
    LeaderWindowRegistry,
    ProbeCache,
    ProbeCacheMulti,
    ReadDatabase,
    ReplicatedRetrievalEngine,
    RetrievalConfig,
    RetrievalEngine,
    SKIPPED,
    WaitForLeader,
    WriteBack,
    WriteBackMulti,
)
from repro.core.router import ProteusRouter
from repro.core.transition import RoutingEpochs, Transition


class ScriptedDriver:
    """Answers engine commands from a scripted table, recording the trace."""

    def __init__(self, answers):
        #: list of (command_type, answer); consumed in order
        self.answers = list(answers)
        self.trace = []

    def run(self, generator):
        result = None
        try:
            while True:
                command = generator.send(result)
                self.trace.append(command)
                expected_type, answer = self.answers.pop(0)
                assert isinstance(command, expected_type), (
                    f"expected {expected_type.__name__}, engine yielded {command!r}"
                )
                result = answer
        except StopIteration as stop:
            return stop.value


ROUTER = ProteusRouter(4, ring_size=2 ** 20)
KEY = "page:parity"
NEW_ID = ROUTER.route(KEY, 3)
OLD_ID = ROUTER.route(KEY, 4)

STEADY = RoutingEpochs(new=3, old=None, transition=None)
DRAINING = RoutingEpochs(
    new=3, old=4, transition=Transition(n_old=4, n_new=3, started_at=0.0, ttl=60.0)
)


def remapped_key():
    """A key whose owner differs between the 4-server and 3-server epochs."""
    for i in range(10_000):
        key = f"page:{i}"
        if ROUTER.route(key, 4) != ROUTER.route(key, 3):
            return key
    raise AssertionError("no remapped key found")


class TestUnreplicatedPaths:
    def test_hit_new_is_one_probe_no_writeback(self):
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver([(ProbeCache, "value")])
        outcome = driver.run(engine.retrieve(KEY, STEADY))
        assert outcome.path is FetchPath.HIT_NEW
        assert outcome.value == "value"
        assert outcome.new_server == NEW_ID
        assert outcome.old_server is None
        assert not outcome.touched_database
        assert driver.trace == [ProbeCache(NEW_ID)]

    def test_miss_outside_transition_goes_to_db(self):
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver(
            [(ProbeCache, None), (ReadDatabase, "db"), (WriteBack, None)]
        )
        outcome = driver.run(engine.retrieve(KEY, STEADY))
        assert outcome.path is FetchPath.MISS_DB
        assert outcome.touched_database
        assert driver.trace[-1] == WriteBack(NEW_ID, "db")

    def test_hit_old_pulls_from_old_owner_and_writes_back(self):
        key = remapped_key()
        new_id, old_id = ROUTER.route(key, 3), ROUTER.route(key, 4)
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver(
            [
                (ProbeCache, None),
                (CheckDigest, True),
                (ProbeCache, "hot"),
                (WriteBack, None),
            ]
        )
        outcome = driver.run(engine.retrieve(key, DRAINING))
        assert outcome.path is FetchPath.HIT_OLD
        assert outcome.old_server == old_id
        assert driver.trace == [
            ProbeCache(new_id),
            CheckDigest(old_id),
            ProbeCache(old_id),
            WriteBack(new_id, "hot"),
        ]

    def test_digest_false_positive_classified(self):
        key = remapped_key()
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver(
            [
                (ProbeCache, None),
                (CheckDigest, True),
                (ProbeCache, None),  # old owner misses: digest lied
                (ReadDatabase, "db"),
                (WriteBack, None),
            ]
        )
        outcome = driver.run(engine.retrieve(key, DRAINING))
        assert outcome.path is FetchPath.FALSE_POSITIVE_DB
        assert outcome.touched_database

    def test_digest_miss_skips_old_owner(self):
        key = remapped_key()
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver(
            [
                (ProbeCache, None),
                (CheckDigest, False),
                (ReadDatabase, "db"),
                (WriteBack, None),
            ]
        )
        outcome = driver.run(engine.retrieve(key, DRAINING))
        assert outcome.path is FetchPath.MISS_DB

    def test_same_owner_in_both_epochs_skips_digest(self):
        for i in range(10_000):
            key = f"page:{i}"
            if ROUTER.route(key, 4) == ROUTER.route(key, 3):
                break
        engine = RetrievalEngine(ROUTER)
        driver = ScriptedDriver(
            [(ProbeCache, None), (ReadDatabase, "db"), (WriteBack, None)]
        )
        outcome = driver.run(engine.retrieve(key, DRAINING))
        assert outcome.path is FetchPath.MISS_DB
        assert not any(isinstance(c, CheckDigest) for c in driver.trace)

    def test_coalesced_follower_skips_db_and_writeback(self):
        engine = RetrievalEngine(ROUTER, coalesce_misses=True)
        driver = ScriptedDriver(
            [(ProbeCache, None), (WaitForLeader, True), (ProbeCache, "installed")]
        )
        outcome = driver.run(engine.retrieve(KEY, STEADY))
        assert outcome.path is FetchPath.COALESCED
        assert not any(isinstance(c, ReadDatabase) for c in driver.trace)
        assert not any(isinstance(c, WriteBack) for c in driver.trace)

    def test_no_leader_becomes_leader_and_announces(self):
        engine = RetrievalEngine(ROUTER, coalesce_misses=True)
        driver = ScriptedDriver(
            [
                (ProbeCache, None),
                (WaitForLeader, False),
                (ReadDatabase, "db"),
                (WriteBack, None),
            ]
        )
        outcome = driver.run(engine.retrieve(KEY, STEADY))
        assert outcome.path is FetchPath.MISS_DB
        read = next(c for c in driver.trace if isinstance(c, ReadDatabase))
        assert read.announce_leader

    def test_waited_but_still_missing_falls_to_db(self):
        # The leader's write-back was evicted before the follower's probe.
        engine = RetrievalEngine(ROUTER, coalesce_misses=True)
        driver = ScriptedDriver(
            [
                (ProbeCache, None),
                (WaitForLeader, True),
                (ProbeCache, None),
                (ReadDatabase, "db"),
                (WriteBack, None),
            ]
        )
        outcome = driver.run(engine.retrieve(KEY, STEADY))
        assert outcome.path is FetchPath.MISS_DB

    def test_no_wait_command_when_coalescing_disabled(self):
        engine = RetrievalEngine(ROUTER, coalesce_misses=False)
        driver = ScriptedDriver(
            [(ProbeCache, None), (ReadDatabase, "db"), (WriteBack, None)]
        )
        driver.run(engine.retrieve(KEY, STEADY))
        read = next(c for c in driver.trace if isinstance(c, ReadDatabase))
        assert not read.announce_leader

    def test_stats_accumulate_across_retrievals(self):
        engine = RetrievalEngine(ROUTER)
        ScriptedDriver([(ProbeCache, "v")]).run(engine.retrieve(KEY, STEADY))
        ScriptedDriver(
            [(ProbeCache, None), (ReadDatabase, "db"), (WriteBack, None)]
        ).run(engine.retrieve(KEY, STEADY))
        assert engine.stats.counts[FetchPath.HIT_NEW] == 1
        assert engine.stats.counts[FetchPath.MISS_DB] == 1
        assert engine.stats.total == 2
        assert engine.stats.database_fraction == 0.5

    def test_stats_labels_match_wire_names(self):
        stats = FetchStats()
        stats.record(FetchPath.HIT_NEW)
        assert stats.as_labels()["hit_new"] == 1
        # str mix-in: members compare and hash like their labels.
        assert FetchPath.HIT_NEW == "hit_new"
        assert stats.counts["hit_new"] == 1


class StoreDriver:
    """Executes engine commands against dict-backed stores.

    Answers both the single-key command set (:meth:`run_single`) and the
    batched round protocol (:meth:`run_batch`), so the same cluster state
    can drive ``retrieve`` and ``retrieve_many`` for equivalence checks.
    """

    def __init__(self, stores, db, digests=None, leaders=()):
        #: server_id -> {key: value}
        self.stores = {sid: dict(store) for sid, store in stores.items()}
        self.db = db
        #: server_id -> set of keys the broadcast digest claims
        self.digests = digests or {}
        #: keys with an in-flight leader (WaitForLeader answers True)
        self.leaders = set(leaders)
        self.rounds = []

    def _lookup(self, server_id, key):
        return self.stores.get(server_id, {}).get(key)

    def run_single(self, generator, key):
        result = None
        try:
            while True:
                command = generator.send(result)
                if isinstance(command, ProbeCache):
                    result = self._lookup(command.server_id, key)
                elif isinstance(command, CheckDigest):
                    result = key in self.digests.get(command.server_id, ())
                elif isinstance(command, WaitForLeader):
                    result = key in self.leaders
                elif isinstance(command, ReadDatabase):
                    result = self.db[key]
                elif isinstance(command, WriteBack):
                    self.stores.setdefault(command.server_id, {})[key] = (
                        command.value
                    )
                    result = None
                else:
                    raise AssertionError(f"unexpected command {command!r}")
        except StopIteration as stop:
            return stop.value

    def _answer(self, command):
        if isinstance(command, ProbeCacheMulti):
            store = self.stores.get(command.server_id, {})
            return {k: store[k] for k in command.keys if k in store}
        if isinstance(command, CheckDigestMulti):
            digest = self.digests.get(command.server_id, ())
            return [key in digest for key in command.keys]
        if isinstance(command, CheckDigest):
            return command.key in self.digests.get(command.server_id, ())
        if isinstance(command, WaitForLeader):
            return command.key in self.leaders
        if isinstance(command, ReadDatabase):
            return self.db[command.key]
        if isinstance(command, WriteBackMulti):
            store = self.stores.setdefault(command.server_id, {})
            for key, value in command.items:
                store[key] = value
            return None
        raise AssertionError(f"unexpected batched command {command!r}")

    def run_batch(self, generator):
        answers = None
        try:
            while True:
                round_ = generator.send(answers)
                self.rounds.append(round_)
                answers = tuple(self._answer(c) for c in round_)
        except StopIteration as stop:
            return stop.value


class TestBatchPlanner:
    def _keys_by_owner(self, epochs, count_per_kind=3):
        """Keys partitioned by transition behaviour under 4 -> 3."""
        moved, stayed = [], []
        for i in range(100_000):
            key = f"page:{i}"
            if ROUTER.route(key, 4) != ROUTER.route(key, 3):
                if len(moved) < count_per_kind:
                    moved.append(key)
            elif len(stayed) < count_per_kind:
                stayed.append(key)
            if len(moved) == count_per_kind and len(stayed) == count_per_kind:
                return moved, stayed
        raise AssertionError("key search exhausted")

    def test_all_hits_is_one_probe_round_grouped_by_server(self):
        keys = [f"page:{i}" for i in range(12)]
        stores = {}
        for key in keys:
            stores.setdefault(ROUTER.route(key, 3), {})[key] = f"v-{key}"
        engine = RetrievalEngine(ROUTER)
        driver = StoreDriver(stores, db={})
        outcomes = driver.run_batch(engine.retrieve_many(keys, STEADY))
        assert len(driver.rounds) == 1
        probed = [c.server_id for c in driver.rounds[0]]
        assert all(isinstance(c, ProbeCacheMulti) for c in driver.rounds[0])
        # One multiget per distinct owner, no server probed twice.
        assert len(probed) == len(set(probed))
        assert set(probed) == set(stores)
        assert all(
            outcomes[key].path is FetchPath.HIT_NEW for key in keys
        )
        assert all(outcomes[key].value == f"v-{key}" for key in keys)

    def test_batch_equals_sequential_mid_transition(self):
        # Mixed batch: hits at the new owner, hot keys at the old owner,
        # digest false positives, and plain misses — in one retrieve_many.
        moved, stayed = self._keys_by_owner(DRAINING)
        hot, false_positive, cold = moved
        warm, miss, _ = stayed
        stores = {}
        stores.setdefault(ROUTER.route(warm, 3), {})[warm] = "warm"
        stores.setdefault(ROUTER.route(hot, 4), {})[hot] = "hot"
        digests = {}
        digests.setdefault(ROUTER.route(hot, 4), set()).add(hot)
        digests.setdefault(
            ROUTER.route(false_positive, 4), set()
        ).add(false_positive)
        db = {false_positive: "fp-db", cold: "cold-db", miss: "miss-db"}
        keys = [warm, hot, false_positive, cold, miss]

        batch_engine = RetrievalEngine(ROUTER)
        batch_driver = StoreDriver(stores, db, digests)
        batched = batch_driver.run_batch(
            batch_engine.retrieve_many(keys, DRAINING)
        )

        seq_engine = RetrievalEngine(ROUTER)
        seq_driver = StoreDriver(stores, db, digests)
        sequential = {
            key: seq_driver.run_single(
                seq_engine.retrieve(key, DRAINING), key
            )
            for key in keys
        }

        assert set(batched) == set(sequential)
        for key in keys:
            assert batched[key].path is sequential[key].path
            assert batched[key].value == sequential[key].value
            assert batched[key].new_server == sequential[key].new_server
            assert batched[key].old_server == sequential[key].old_server
        assert batch_engine.stats.counts == seq_engine.stats.counts
        assert batched[warm].path is FetchPath.HIT_NEW
        assert batched[hot].path is FetchPath.HIT_OLD
        assert batched[false_positive].path is FetchPath.FALSE_POSITIVE_DB
        assert batched[cold].path is FetchPath.MISS_DB
        # Both drivers leave identical cluster state behind.
        assert batch_driver.stores == seq_driver.stores

    def test_duplicate_keys_collapse_to_one_outcome(self):
        engine = RetrievalEngine(ROUTER)
        driver = StoreDriver({}, db={KEY: "v"})
        outcomes = driver.run_batch(
            engine.retrieve_many([KEY, KEY, KEY], STEADY)
        )
        assert list(outcomes) == [KEY]
        assert engine.stats.total == 1
        # Exactly one DB read despite three requests for the key.
        reads = [
            c for round_ in driver.rounds for c in round_
            if isinstance(c, ReadDatabase)
        ]
        assert len(reads) == 1

    def test_max_multiget_keys_chunks_oversized_groups(self):
        engine = RetrievalEngine(
            ROUTER, config=RetrievalConfig(max_multiget_keys=2)
        )
        keys = [f"page:{i}" for i in range(100_000)]
        same_owner = [k for k in keys if ROUTER.route(k, 3) == 0][:5]
        driver = StoreDriver(
            {0: {k: "v" for k in same_owner}}, db={}
        )
        driver.run_batch(engine.retrieve_many(same_owner, STEADY))
        probe_round = driver.rounds[0]
        assert [len(c.keys) for c in probe_round] == [2, 2, 1]
        assert all(c.server_id == 0 for c in probe_round)

    def test_empty_batch_yields_nothing(self):
        engine = RetrievalEngine(ROUTER)
        driver = StoreDriver({}, db={})
        assert driver.run_batch(engine.retrieve_many([], STEADY)) == {}
        assert driver.rounds == []
        assert engine.stats.total == 0

    def test_coalesced_batch_reprobes_instead_of_reading_db(self):
        engine = RetrievalEngine(ROUTER, coalesce_misses=True)
        new_id = ROUTER.route(KEY, 3)

        # The leader's write-back lands while this batch waits: emulate by
        # installing the value at the new owner when WaitForLeader fires.
        class LeaderDriver(StoreDriver):
            def _answer(self, command):
                if isinstance(command, WaitForLeader):
                    self.stores.setdefault(new_id, {})[KEY] = "installed"
                    return True
                return super()._answer(command)

        leader_driver = LeaderDriver({}, db={}, leaders=[KEY])
        outcomes = leader_driver.run_batch(
            engine.retrieve_many([KEY], STEADY)
        )
        assert outcomes[KEY].path is FetchPath.COALESCED
        assert outcomes[KEY].value == "installed"
        reads = [
            c for round_ in leader_driver.rounds for c in round_
            if isinstance(c, ReadDatabase)
        ]
        assert reads == []

    def test_replicated_batch_equals_sequential(self):
        from repro.core.replication import ReplicatedProteusRouter

        router = ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        epochs = RoutingEpochs(4, None, None)
        keys = [f"page:{i}" for i in range(8)]
        # Prime half the keys at their primary, leave half to the DB.
        stores = {}
        for key in keys[:4]:
            stores.setdefault(router.route(key, 4), {})[key] = f"v-{key}"
        db = {key: f"db-{key}" for key in keys}

        batch_engine = ReplicatedRetrievalEngine(router)
        batch_driver = StoreDriver(stores, db)
        batched = batch_driver.run_batch(
            batch_engine.retrieve_many(keys, epochs)
        )

        seq_engine = ReplicatedRetrievalEngine(router)
        seq_driver = StoreDriver(stores, db)
        sequential = {
            key: seq_driver.run_single(seq_engine.retrieve(key, epochs), key)
            for key in keys
        }

        for key in keys:
            assert batched[key].value == sequential[key].value
            assert batched[key].served_by == sequential[key].served_by
            assert batched[key].probes == sequential[key].probes
            assert (
                batched[key].touched_database
                == sequential[key].touched_database
            )
            assert batched[key].failover == sequential[key].failover
        assert batch_engine.failovers == seq_engine.failovers
        assert batch_engine.database_reads == seq_engine.database_reads
        assert batch_driver.stores == seq_driver.stores


class TestReplicatedEngine:
    def _engine(self):
        from repro.core.replication import ReplicatedProteusRouter

        return ReplicatedRetrievalEngine(
            ReplicatedProteusRouter(4, replicas=2, ring_size=2 ** 20)
        )

    def test_primary_hit_no_failover(self):
        engine = self._engine()
        targets = engine.router.read_targets(KEY, 4)
        answers = [(ProbeCache, "v")] + [
            (WriteBack, None) for _ in targets[1:]
        ]
        driver = ScriptedDriver(answers)
        outcome = driver.run(engine.retrieve(KEY, RoutingEpochs(4, None, None)))
        assert outcome.served_by == targets[0]
        assert not outcome.failover
        assert outcome.probes == 1
        assert engine.failovers == 0

    def test_replica_covers_for_missing_primary(self):
        engine = self._engine()
        targets = engine.router.read_targets(KEY, 4)
        assert len(targets) >= 2
        driver = ScriptedDriver(
            [(ProbeCache, None), (ProbeCache, "v")]
            + [(WriteBack, None)] * (len(targets) - 1)
        )
        outcome = driver.run(engine.retrieve(KEY, RoutingEpochs(4, None, None)))
        assert outcome.served_by == targets[1]
        assert outcome.failover
        assert engine.failovers == 1

    def test_skipped_probe_not_counted(self):
        engine = self._engine()
        targets = engine.router.read_targets(KEY, 4)
        driver = ScriptedDriver(
            [(ProbeCache, SKIPPED), (ProbeCache, "v")]
            + [(WriteBack, None)] * (len(targets) - 1)
        )
        outcome = driver.run(engine.retrieve(KEY, RoutingEpochs(4, None, None)))
        assert outcome.probes == 1

    def test_all_miss_reads_db_and_repopulates_every_target(self):
        engine = self._engine()
        targets = engine.router.read_targets(KEY, 4)
        driver = ScriptedDriver(
            [(ProbeCache, None)] * len(targets)
            + [(ReadDatabase, "db")]
            + [(WriteBack, None)] * len(targets)
        )
        outcome = driver.run(engine.retrieve(KEY, RoutingEpochs(4, None, None)))
        assert outcome.touched_database
        assert outcome.served_by is None
        assert engine.database_reads == 1
        written = [c.server_id for c in driver.trace if isinstance(c, WriteBack)]
        assert written == targets


class TestLeaderWindowRegistry:
    def test_open_window_returned_closed_window_none(self):
        reg = LeaderWindowRegistry()
        reg.announce("k", done_at=5.0, now=1.0)
        assert reg.leader_done("k", now=4.0) == 5.0
        assert reg.leader_done("k", now=5.0) is None
        assert reg.leader_done("missing", now=0.0) is None

    def test_prune_uses_current_clock_not_request_start(self):
        # Regression: the pre-refactor prune compared against the request's
        # *start* time, letting windows that closed mid-request survive an
        # extra pass.  The registry prunes against the clock it is given.
        reg = LeaderWindowRegistry(max_entries=2)
        reg.announce("a", done_at=1.0, now=0.0)
        reg.announce("b", done_at=2.0, now=0.0)
        # This announce overflows max_entries; now=1.5 means "a" (closed at
        # 1.0) must be dropped even though the request started earlier.
        reg.announce("c", done_at=9.0, now=1.5)
        assert len(reg) == 2
        assert reg.leader_done("a", now=0.5) is None
        assert reg.leader_done("b", now=1.6) == 2.0
        assert reg.leader_done("c", now=1.6) == 9.0

    def test_bounded_by_concurrent_misses(self):
        reg = LeaderWindowRegistry(max_entries=8)
        for i in range(100):
            # Every window closes almost immediately; the map never grows
            # past max_entries + 1 before a prune.
            reg.announce(f"k{i}", done_at=i + 0.1, now=float(i))
        assert len(reg) <= 9
