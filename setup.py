"""Legacy setup shim.

The reproduction environment is offline and has no `wheel` package, so PEP
660 editable installs cannot build; with this setup.py (and no
[build-system] table in pyproject.toml) `pip install -e .` falls back to the
legacy `setup.py develop` path, which works offline.
"""

from setuptools import find_packages, setup

setup(
    name="proteus-repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Proteus: Power Proportional Memory Cache Cluster "
        "in Data Centers' (ICDCS 2013)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
)
