#!/usr/bin/env python3
"""Sizing the cache digest — Section IV-B as a worked walkthrough.

Given how many keys a cache server holds and the false-positive /
false-negative budgets, compute the memory-optimal counting-Bloom-filter
configuration (Eq. 10), build it, and *measure* the error rates against the
analytic bounds — including the counter-overflow false negatives the paper
optimizes against.

Run:  python examples/digest_sizing.py
"""

from repro import CountingBloomFilter, optimal_config
from repro.bloom import (
    counter_bits_closed_form,
    false_negative_bound,
    false_positive_rate,
)


def main() -> None:
    kappa = 10_000   # expected in-cache keys (the paper's worked example)
    h = 4            # non-cryptographic hash functions (Section VI-B)
    pp = pn = 1e-4   # error budgets

    cfg = optimal_config(kappa, num_hashes=h, pp=pp, pn=pn)
    closed_b = counter_bits_closed_form(cfg.num_counters, kappa, h, pn)
    print("Section IV-B worked example (kappa=1e4, h=4, pp=pn=1e-4):")
    print(f"  counters l     = {cfg.num_counters:,} "
          f"(paper: 4x10^5)")
    print(f"  counter bits b = {cfg.counter_bits} "
          f"(closed form {closed_b:.2f} -> ceil = {cfg.counter_bits}; paper: 3)")
    print(f"  digest memory  = {cfg.memory_bytes / 1024:.0f} KB "
          f"(paper: ~150 KB)")
    print(f"  Gp bound {cfg.fp_bound:.2e}, Gn bound {cfg.fn_bound:.2e}")

    # Measure the false-positive rate of the built digest.
    digest = cfg.build()
    for i in range(kappa):
        digest.add(f"in:{i}")
    probes = 50_000
    fp = sum(1 for i in range(probes) if f"out:{i}" in digest) / probes
    print(f"\nMeasured false-positive rate: {fp:.2e} "
          f"(Eq. 4 predicts {false_positive_rate(cfg.num_counters, kappa, h):.2e})")

    # Provoke false negatives with deliberately narrow counters.
    print("\nWhat the optimization protects against — 1-bit counters:")
    narrow = CountingBloomFilter(
        cfg.num_counters // 16, counter_bits=1, num_hashes=h, strict=False
    )
    keys = [f"in:{i}" for i in range(kappa)]
    narrow.update(keys)
    for key in keys[: kappa // 2]:
        narrow.remove(key)
    survivors = keys[kappa // 2:]
    fn = sum(1 for key in survivors if key not in narrow) / len(survivors)
    print(f"  after deleting half the keys, {fn:.1%} of the *remaining* keys "
          f"read as absent (false negatives from counter overflow)")
    print(f"  the optimal config's bound keeps this under "
          f"{false_negative_bound(cfg.num_counters, cfg.counter_bits, kappa, h):.2e}")


if __name__ == "__main__":
    main()
