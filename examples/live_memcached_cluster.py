#!/usr/bin/env python3
"""A live Proteus cluster over TCP — the Section V implementation, runnable.

Starts four memcached-protocol servers (each with the paper's built-in
counting Bloom filter) on localhost, routes keys with the deterministic
virtual-node placement, then performs a smooth scale-down exactly as the
paper's web servers do:

1. ``get SET_BLOOM_FILTER`` on every old owner (snapshot the digests);
2. ``get BLOOM_FILTER`` to broadcast them to the "web server" (this script);
3. re-route with n-1 servers, running Algorithm 2 against the live sockets:
   miss at the new owner -> digest check -> fetch from the drained server ->
   write back to the new owner.

Run:  python examples/live_memcached_cluster.py
"""

import asyncio

from repro import MemcachedClient, MemcachedServer, ProteusRouter, optimal_config

NUM_SERVERS = 4
HOT_KEYS = 200
CFG = optimal_config(5000)


async def main() -> None:
    servers = [MemcachedServer(bloom_config=CFG) for _ in range(NUM_SERVERS)]
    ports = [await server.start() for server in servers]
    clients = [
        await MemcachedClient("127.0.0.1", port).connect() for port in ports
    ]
    router = ProteusRouter(NUM_SERVERS)
    print(f"Started {NUM_SERVERS} memcached servers on ports {ports}")

    # Warm phase: store 200 pages at their n=4 owners.
    keys = [f"page:{i}" for i in range(HOT_KEYS)]
    for key in keys:
        owner = router.route(key, NUM_SERVERS)
        await clients[owner].set(key, f"content-of-{key}".encode())
    counts = [int((await client.stats())["curr_items"]) for client in clients]
    print(f"Warm items per server: {counts} (balanced by Algorithm 1)")

    # --- Smooth scale-down: 4 -> 3 -------------------------------------
    # Broadcast digests of all old owners (the paper's few-KB payloads).
    digests = {}
    for server_id, client in enumerate(clients):
        await client.snapshot_digest()
        digests[server_id] = await client.fetch_digest(
            CFG.num_counters, CFG.num_hashes
        )
    print("Digests snapshotted and fetched over TCP "
          f"({digests[0].size_bytes() / 1024:.0f} KB each)")

    # Algorithm 2 against the live sockets.
    n_new, n_old = 3, 4
    outcomes = {"hit_new": 0, "hit_old": 0, "db": 0}
    for key in keys:
        new_owner = router.route(key, n_new)
        value = await clients[new_owner].get(key)
        if value is not None:
            outcomes["hit_new"] += 1
            continue
        old_owner = router.route(key, n_old)
        if old_owner != new_owner and digests[old_owner].contains(key):
            value = await clients[old_owner].get(key)
        if value is None:  # cold or false positive: the database's job
            outcomes["db"] += 1
            value = f"content-of-{key}".encode()
        else:
            outcomes["hit_old"] += 1
        await clients[new_owner].set(key, value)  # Alg. 2 line 12

    print(f"Scale-down retrieval outcomes: {outcomes}")
    assert outcomes["db"] == 0, "hot data must migrate without DB reads"

    # Every key now lives at its n=3 owner; the drained server can power off.
    for key in keys:
        assert await clients[router.route(key, n_new)].get(key) is not None
    print("All hot keys verified at their new owners; server 3 can power off.")

    for client in clients:
        await client.close()
    for server in servers:
        await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
