#!/usr/bin/env python3
"""Fault tolerance — Section III-E's replica rings surviving a crash.

Builds the same cache tier twice — once unreplicated, once with r=2 replica
rings sharing the Proteus placement — warms both, crashes the same server,
and compares how many reads fall through to the database.  Also verifies
the Eq. 3 conflict probability against measurement.

Run:  python examples/fault_tolerance.py
"""

from repro import CacheCluster, DatabaseCluster, ReplicatedWebServer
from repro.core.replication import (
    ReplicatedProteusRouter,
    no_conflict_probability,
)

NUM_SERVERS = 8
HOT_KEYS = 800


def run(replicas: int) -> dict:
    router = ReplicatedProteusRouter(NUM_SERVERS, replicas=replicas)
    cache = CacheCluster(router, capacity_bytes=4096 * 20_000, ttl=60.0)
    database = DatabaseCluster()
    web = ReplicatedWebServer(0, cache, database)

    clock = 0.0
    keys = [f"page:{i}" for i in range(HOT_KEYS)]
    for key in keys:  # warm
        web.fetch(key, clock)
        clock += 0.01

    victim = 0
    owned = sum(1 for k in keys if router.route(k, NUM_SERVERS) == victim)
    before = database.total_requests()
    cache.fail_server(victim, now=clock)

    for key in keys:  # re-read everything after the crash
        web.fetch(key, clock + 1.0)
        clock += 0.01
    return {
        "replicas": replicas,
        "victim_owned": owned,
        "db_reads": database.total_requests() - before,
        "failovers": web.failovers,
    }


def main() -> None:
    print(f"Crashing 1 of {NUM_SERVERS} cache servers, "
          f"then re-reading {HOT_KEYS} hot keys:\n")
    for replicas in (1, 2, 3):
        row = run(replicas)
        print(f"  r={row['replicas']}: victim owned {row['victim_owned']} keys"
              f" -> {row['db_reads']} DB reads, "
              f"{row['failovers']} replica failovers")

    print("\nEq. 3 — probability all replicas land on distinct servers "
          f"(n={NUM_SERVERS}):")
    router = ReplicatedProteusRouter(NUM_SERVERS, replicas=2)
    measured = 1.0 - router.empirical_conflict_rate(NUM_SERVERS)
    predicted = no_conflict_probability(2, NUM_SERVERS)
    print(f"  r=2: predicted {predicted:.3f}, measured {measured:.3f}")
    print("\nWith r>=2, a crash costs only the conflicted keys "
          "(two replicas on one server); everything else fails over.")


if __name__ == "__main__":
    main()
