#!/usr/bin/env python3
"""Quickstart — Proteus in five minutes.

Builds a 6-server cache tier with the paper's deterministic virtual-node
placement, shows the three guarantees in action:

1. exact load balance at every fleet size,
2. minimal data migration on a provisioning change,
3. a smooth scale-down where the database never notices.

Run:  python examples/quickstart.py
"""

from collections import Counter

from repro import (
    CacheCluster,
    DatabaseCluster,
    FetchPath,
    ProteusRouter,
    WebServer,
    migration_lower_bound,
    theoretical_min_vnodes,
)


def main() -> None:
    num_servers = 6
    router = ProteusRouter(num_servers)
    print(f"Proteus placement for N={num_servers}: "
          f"{router.placement.num_vnodes} virtual nodes "
          f"(Theorem 1 bound: {theoretical_min_vnodes(num_servers)})")

    # 1. Balance: route 60k keys at several fleet sizes.
    keys = [f"page:{i}" for i in range(60_000)]
    for active in (6, 4, 2):
        counts = Counter(router.route(key, active) for key in keys)
        values = [counts[s] for s in range(active)]
        print(f"  n={active}: per-server load {values} "
              f"(min/max = {min(values) / max(values):.3f})")

    # 2. Minimal migration: scale 6 -> 5.
    moved = sum(1 for key in keys if router.route(key, 6) != router.route(key, 5))
    print(f"Scale 6->5 remaps {moved / len(keys):.3%} of keys "
          f"(lower bound {float(migration_lower_bound(6, 5)):.3%})")

    # 3. Smooth transition: the database tier never notices.
    cache = CacheCluster(router, capacity_bytes=4096 * 20_000, ttl=60.0)
    database = DatabaseCluster()
    web = WebServer(0, cache, database)

    clock = 0.0
    hot = [f"page:{i}" for i in range(500)]
    for key in hot:  # warm the tier
        web.fetch(key, clock)
        clock += 0.01
    db_reads_before = database.total_requests()

    cache.scale_to(5, now=clock)  # digests broadcast, server 5 drains
    outcomes = Counter(web.fetch(key, clock + 1.0).path for key in hot)
    print("After the scale-down, the same 500 hot keys were served via:")
    for path, count in sorted(outcomes.items(), key=lambda kv: -kv[1]):
        print(f"  {path.value:>18s}: {count}")
    extra_db = database.total_requests() - db_reads_before
    print(f"Extra database reads caused by the transition: {extra_db}")
    assert extra_db == 0, "smooth transition must not touch the DB for hot keys"
    assert outcomes[FetchPath.HIT_OLD] > 0

    cache.finalize_expired(clock + 100.0)  # TTL passed: server 5 powers off
    print(f"Server 5 state after the TTL window: "
          f"{cache.server(5).state.value}")


if __name__ == "__main__":
    main()
