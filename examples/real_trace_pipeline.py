#!/usr/bin/env python3
"""The real-trace pipeline — from a WikiBench file to calibrated experiments.

The paper replays the Urdaneta et al. Wikipedia trace; this walkthrough
shows the full tooling path on a locally synthesized WikiBench-format file
(swap in the real download and nothing else changes):

1. convert the WikiBench lines to the package trace format, with the
   paper's "distill English Wikipedia" filtering;
2. characterize it (Zipf exponent, rate envelope, working set, burstiness);
3. derive a provisioning schedule from the envelope;
4. run the Fig. 5 load-balance comparison on the *real* keys.

Run:  python examples/real_trace_pipeline.py
"""

import math
import random
import tempfile
from pathlib import Path

from repro import (
    ProteusRouter,
    ConsistentRouter,
    evaluate_load_balance,
    load_proportional_schedule,
)
from repro.workload import summarize
from repro.workload.analysis import rate_envelope
from repro.workload.wikibench import convert_file
from repro.workload.zipf import ZipfSampler

NUM_SLOTS = 8
DURATION = 400.0


def synthesize_wikibench_file(path: Path) -> None:
    """Write a WikiBench-format file: mixed-language, images, articles."""
    rng = random.Random(4)
    sampler = ZipfSampler(3000, alpha=0.9, seed=4)
    lines = []
    t = 1194892620.0
    counter = 0
    while t - 1194892620.0 < DURATION:
        # diurnal-ish rate between 40 and 80 req/s
        phase = (t - 1194892620.0) / DURATION
        rate = 60 + 20 * math.sin(2 * math.pi * phase)
        t += rng.expovariate(rate)
        counter += 1
        roll = rng.random()
        if roll < 0.55:
            page = int(sampler.sample())
            url = f"http://en.wikipedia.org/wiki/Page_{page}"
        elif roll < 0.75:
            url = "http://upload.wikimedia.org/thumb/img.png"
        elif roll < 0.9:
            url = f"http://de.wikipedia.org/wiki/Seite_{rng.randrange(500)}"
        else:
            url = "http://en.wikipedia.org/wiki/Special:Random"
        lines.append(f"{counter} {t:.3f} {url} -")
    path.write_text("\n".join(lines))


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "wikibench.txt"
        synthesize_wikibench_file(source)

        # 1. convert (the paper's "distill English Wikipedia" step)
        records, stats = convert_file(source)
        print(f"Converted {stats.kept}/{stats.total_lines} lines "
              f"({stats.keep_ratio:.0%} kept; dropped "
              f"{stats.non_english} non-English, {stats.non_article} non-article)")

        # 2. characterize
        summary = summarize(records, window_seconds=DURATION / NUM_SLOTS)
        print(f"Trace: {summary.requests} requests, "
              f"{summary.distinct_keys} distinct pages, "
              f"{summary.mean_rate:.1f} req/s, "
              f"peak/valley {summary.peak_to_valley:.2f}, "
              f"Zipf alpha ~ {summary.zipf_alpha:.2f}")

        # 3. schedule from the envelope
        envelope = rate_envelope(records, DURATION / NUM_SLOTS)[:NUM_SLOTS]
        schedule = load_proportional_schedule(
            envelope, per_server_capacity=max(envelope) / 6,
            num_servers=8, slot_seconds=DURATION / NUM_SLOTS,
        )
        print(f"Provisioning n(t) from the envelope: {schedule.counts}")

        # 4. Fig. 5 on the real keys
        for router in (ProteusRouter(8), ConsistentRouter.log_variant(8)):
            result = evaluate_load_balance(router, records, schedule)
            print(f"  {result.router_name:<11s} min/max ratios "
                  f"{['%.2f' % r for r in result.ratios()]} "
                  f"(mean {result.mean_ratio():.3f})")
        print("\nSwap `source` for the real WikiBench download and the same "
              "pipeline runs unchanged.")


if __name__ == "__main__":
    main()
