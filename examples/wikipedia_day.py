#!/usr/bin/env python3
"""A day of Wikipedia traffic — the paper's end-to-end methodology, small.

Reproduces the evaluation pipeline at demo scale:

1. synthesize a diurnal Zipf trace (the Fig. 4 dots);
2. run the delay-feedback loop once to get the n(t) schedule (the circles);
3. replay the *identical* schedule and workload through the Naive and
   Proteus scenarios (Table II);
4. print the per-slot tail latency and the energy bill for both — the
   Fig. 9 spike and the Fig. 11 savings, side by side.

Run:  python examples/wikipedia_day.py           (~1 minute)
"""

from repro import (
    ClusterExperiment,
    ExperimentConfig,
    ProvisioningSchedule,
    ScenarioSpec,
    generate_trace,
    run_feedback_loop,
)
from repro.provisioning import limit_step_size
from repro.workload import slot_counts

SLOTS = 10
SLOT_SECONDS = 60.0


def main() -> None:
    duration = SLOTS * SLOT_SECONDS
    trace = generate_trace(
        duration=duration, mean_rate=400.0, num_pages=10_000,
        peak_to_valley=2.0, seed=7,
    )
    counts = slot_counts(trace, SLOT_SECONDS, SLOTS)
    print("Workload (requests/slot):", counts)

    rates = [c / SLOT_SECONDS for c in counts]
    schedule = limit_step_size(run_feedback_loop(
        rates, num_servers=8, per_server_rate=max(rates) / 5,
        slot_seconds=SLOT_SECONDS,
    ))
    print("Provisioning n(t):       ", schedule.counts)

    users = [max(20, int(c / SLOT_SECONDS / 2)) for c in counts]
    config = ExperimentConfig(
        schedule=schedule,
        users_per_slot=users,
        num_cache_servers=8,
        num_web_servers=4,
        num_db_shards=4,
        catalogue_size=10_000,
        cache_capacity_bytes=4096 * 2000,
        ttl=40.0,
        plot_slots=20,
        seed=7,
        warmup_seconds=20.0,
    )

    reports = {}
    for spec in (ScenarioSpec.naive(), ScenarioSpec.proteus()):
        print(f"\nRunning the {spec.name} scenario ...")
        reports[spec.name] = ClusterExperiment(spec, config).run()

    print("\np99 response time per plot slot (seconds):")
    for name, report in reports.items():
        series = report.latency_percentiles(99.0)
        print(f"  {name:<8s}" + " ".join(f"{v:6.3f}" for v in series.values))

    print("\nSummary:")
    for name, report in reports.items():
        print(
            f"  {name:<8s} peak p99 {report.peak_latency(99.0):6.3f}s   "
            f"DB reads {report.db_requests:6d}   "
            f"energy {report.energy_kwh['total']:.4f} kWh "
            f"(cache tier {report.energy_kwh['cache']:.4f})"
        )
    naive, proteus = reports["Naive"], reports["Proteus"]
    print(
        f"\nProteus removes the transition spike "
        f"({naive.peak_latency(99.0) / max(1e-9, proteus.peak_latency(99.0)):.1f}x "
        f"lower peak) at the same energy bill "
        f"({proteus.energy_kwh['total'] / naive.energy_kwh['total']:.2f}x)."
    )


if __name__ == "__main__":
    main()
