"""Ablation — the provisioning order on a heterogeneous fleet (Section III-A).

"Well designed order further improves power savings.  For example, the
decreasing order of server efficiency should be better than a random
order."  We build a mixed fleet (three server generations), run the same
diurnal load through capacity-aware schedules under (a) the decreasing-
efficiency order, (b) the *increasing*-efficiency order, and (c) random
orders, and compare fleet energy.
"""

from __future__ import annotations

import math
import statistics

import pytest

from benchmarks.conftest import fmt_row
from repro.power.model import ServerPowerModel
from repro.provisioning.order import (
    OrderedFleet,
    ServerSpec,
    efficiency_order,
    random_order,
)

#: Three generations: newer = more capacity per watt.
SPECS = (
    [ServerSpec(f"gen3-{i}", 300, ServerPowerModel(5, 60, 100)) for i in range(3)]
    + [ServerSpec(f"gen2-{i}", 220, ServerPowerModel(5, 75, 125)) for i in range(3)]
    + [ServerSpec(f"gen1-{i}", 150, ServerPowerModel(5, 90, 150)) for i in range(3)]
)

SLOT_SECONDS = 1800.0
#: one diurnal day of fleet load (requests/s), peak ~2x valley
LOADS = [
    650, 560, 480, 420, 400, 430, 520, 640, 780, 900, 980, 1010,
    990, 930, 850, 760, 700, 680, 720, 800, 870, 860, 790, 710,
]


def energy_for(order) -> float:
    fleet = OrderedFleet(SPECS, order=order)
    schedule = fleet.schedule_for(LOADS, SLOT_SECONDS)
    return fleet.energy_joules(schedule, LOADS) / 3.6e6  # kWh


def sweep():
    best = efficiency_order(SPECS)
    worst = list(reversed(best))
    randoms = [energy_for(random_order(len(SPECS), seed=s)) for s in range(6)]
    return {
        "efficiency": energy_for(best),
        "reverse": energy_for(worst),
        "random_mean": statistics.mean(randoms),
        "random_min": min(randoms),
        "random_max": max(randoms),
    }


def test_ablation_provisioning_order(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — fleet energy (kWh/day) vs provisioning order "
          f"({len(SPECS)} mixed-generation servers):")
    print(fmt_row("order", ["kWh"], width=10))
    for name in ("efficiency", "random_mean", "reverse"):
        print(fmt_row(name, [round(rows[name], 3)], width=10))
    saving = 1 - rows["efficiency"] / rows["reverse"]
    print(f"  efficiency-order saves {saving:.1%} vs the worst order "
          f"(random spread: {rows['random_min']:.3f}-{rows['random_max']:.3f})")

    # Section III-A's claim, quantified.
    assert rows["efficiency"] < rows["random_mean"] < rows["reverse"]
    assert not math.isclose(rows["efficiency"], rows["reverse"], rel_tol=0.01)
