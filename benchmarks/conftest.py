"""Shared fixtures for the figure-reproduction benchmarks.

Conventions:

* Every bench prints the rows/series the paper's figure or table reports,
  prefixed with the figure id, so ``pytest benchmarks/ --benchmark-only -s``
  regenerates the evaluation section in text form.
* The expensive 4-scenario cluster runs (Figs. 9, 10, 11) execute once per
  session and are shared.
* ``PROTEUS_BENCH_SCALE`` (float, default 1.0) scales run lengths and user
  counts for higher-fidelity runs on bigger machines.
"""

from __future__ import annotations

import os
from typing import Dict, List

import pytest

from repro.experiments.cluster import ExperimentConfig, ExperimentReport, run_scenarios
from repro.provisioning.policies import ProvisioningSchedule
from repro.workload.trace import TraceRecord
from repro.workload.wikipedia import generate_trace

SCALE = float(os.environ.get("PROTEUS_BENCH_SCALE", "1.0"))


def fmt_row(label: str, values, width: int = 8, precision: int = 3) -> str:
    """One aligned table row for figure output."""
    cells = "".join(
        f"{value:>{width}.{precision}f}" if isinstance(value, float)
        else f"{value:>{width}}"
        for value in values
    )
    return f"  {label:<16s}{cells}"


@pytest.fixture(scope="session")
def paper_schedule() -> ProvisioningSchedule:
    """The shared n(t) series all scenarios replay (the Fig. 4 circles).

    Shape mirrors the paper's day: start high, descend to the nadir, climb
    back; 12 slots standing in for the 48 half-hour slots.
    """
    counts = [8, 7, 6, 5, 4, 4, 5, 6, 7, 8, 8, 7]
    return ProvisioningSchedule(round(90 * SCALE, 3), counts)


@pytest.fixture(scope="session")
def users_per_slot(paper_schedule) -> List[int]:
    """Closed-loop population targets proportional to the workload curve."""
    return [int(n * 22 * SCALE) if SCALE >= 1 else n * 22
            for n in paper_schedule.counts]


@pytest.fixture(scope="session")
def experiment_config(paper_schedule, users_per_slot) -> ExperimentConfig:
    return ExperimentConfig(
        schedule=paper_schedule,
        users_per_slot=users_per_slot,
        num_cache_servers=8,
        num_web_servers=4,
        num_db_shards=4,
        catalogue_size=12_000,
        cache_capacity_bytes=4096 * 2000,
        ttl=45.0,
        plot_slots=48,
        pages_per_user=50,
        seed=42,
        warmup_seconds=30.0,
    )


@pytest.fixture(scope="session")
def scenario_reports(experiment_config) -> Dict[str, ExperimentReport]:
    """The shared Figs. 9-11 runs: all four Table II scenarios, identical
    schedule/workload/seeds (the paper's methodology)."""
    return run_scenarios(experiment_config)


@pytest.fixture(scope="session")
def wikipedia_trace() -> List[TraceRecord]:
    """A diurnal Zipf trace standing in for the 2011 Wikipedia trace."""
    return generate_trace(
        duration=600.0 * SCALE,
        mean_rate=500.0,
        num_pages=30_000,
        alpha=0.9,
        peak_to_valley=2.0,
        seed=42,
    )
