"""Fig. 9 — 99.9th-percentile response time over time, four scenarios.

Paper: response time grouped into 480 physical-time slots, log-scale 99.9th
percentile.  Naive shows huge spikes at every provisioning change (mass
remap floods the DB tier); Consistent (n^2/2 vnodes) degrades noticeably;
Proteus shows "almost no difference during the transition stages" and
matches Static.

We print the per-slot series and assert the orderings.  Absolute values
differ from the testbed (simulated service times), the *shape* is the
reproduction target.
"""

from __future__ import annotations

import pytest

from repro.sim.metrics import percentile

ORDER = ["Static", "Naive", "Consistent", "Proteus"]
PCT = 99.9


def extract_series(reports):
    return {name: reports[name].latency_percentiles(PCT) for name in ORDER}


def test_fig09_response_time(benchmark, scenario_reports):
    series = benchmark.pedantic(
        extract_series, args=(scenario_reports,), rounds=1, iterations=1
    )
    print(f"\nFig. 9 — p{PCT} response time per slot (seconds):")
    for name in ORDER:
        values = series[name].values
        compact = " ".join(f"{v:.3f}" for v in values)
        print(f"  {name:<11s} {compact}")
    print("  peaks: " + ", ".join(
        f"{name}={scenario_reports[name].peak_latency(PCT):.3f}s"
        for name in ORDER
    ))

    static_peak = scenario_reports["Static"].peak_latency(PCT)
    naive_peak = scenario_reports["Naive"].peak_latency(PCT)
    consistent_peak = scenario_reports["Consistent"].peak_latency(PCT)
    proteus_peak = scenario_reports["Proteus"].peak_latency(PCT)

    # The paper's qualitative result, in order of the figure's panels:
    # (1) Naive: huge spikes at transitions.
    assert naive_peak > 3.0 * static_peak
    # (2) Consistent: much better than Naive, still degraded.
    assert consistent_peak < naive_peak
    # (3) Proteus: the delay spike is removed; matches Static's order.
    assert proteus_peak < 2.0 * static_peak
    assert proteus_peak < 0.35 * naive_peak
