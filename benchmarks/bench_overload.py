"""Overload bench — the overload-armor goodput/recovery gate.

Open-loop 5x-capacity offered load with an injected retry storm over a
mid-storm scale-down, driven against the deterministic simulator (the
sim database's FIFO service queue is the honest load-to-latency
coupling: past saturation, every admitted read piles queueing delay on
every later one — the Fig. 9 spike mechanism).  Two scenarios A/B the
armor end to end:

* ``unarmored`` — no admission control, clients retry every shed or
  over-SLO answer unconditionally (the classic retry storm): the DB
  backlog grows without bound during the storm and is still draining
  long into the recovery phase;
* ``armored`` — :class:`~repro.resilience.VirtualQueueAdmission` bounds
  outstanding DB work (excess misses shed as ``FetchPath.SHED``; hits
  are always served) and a :class:`~repro.resilience.RetryBudget` caps
  client retries at a fraction of request volume, so the storm cannot
  amplify.

A :class:`~repro.provisioning.health.ClusterHealthMonitor` and a
:class:`~repro.provisioning.controller.DelayFeedbackController` observe
the armored run per 1 s slot, fed the *median* served latency — which
stays low throughout (hits dominate), proving the delay signal alone
under-reports overload and the shed-rate signal is what closes the loop.

**Gates** (asserted in :func:`run_bench` and therefore in CI):

* armored goodput (served within the 1 s SLO) during the 5x storm stays
  >= 70% of the baseline tier's served rate;
* p99 of *admitted* storm requests stays bounded (<= 2.5 s) while the
  unarmored p99 explodes;
* armored retry volume respects the budget — amplification
  <= 1 + ratio + epsilon — and stays under the unbudgeted scenario's;
* after the storm clears, armored p99 recovers to ~baseline within the
  recovery window while the unarmored tier is still digesting backlog;
* the controller scales up on sustained shedding and back down after.

Results go to ``BENCH_overload.json``; ``--check`` is the CI ratchet —
it re-runs the bench and fails (exit 1) if the armored storm goodput
ratio regressed more than 15% against the committed JSON.
"""

from __future__ import annotations

import argparse
import heapq
import itertools
import json
import random
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.conftest import fmt_row  # noqa: E402
from repro.bloom.config import optimal_config  # noqa: E402
from repro.cache.cluster import CacheCluster  # noqa: E402
from repro.core.retrieval import FetchPath  # noqa: E402
from repro.core.router import ProteusRouter  # noqa: E402
from repro.database.cluster import DatabaseCluster  # noqa: E402
from repro.provisioning.controller import DelayFeedbackController  # noqa: E402
from repro.provisioning.health import ClusterHealthMonitor  # noqa: E402
from repro.resilience import RetryBudget, VirtualQueueAdmission  # noqa: E402
from repro.web.frontend import WebServer  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_overload.json"

BLOOM = optimal_config(2000)
NUM_CACHE = 4
NUM_DB_SHARDS = 2
HOT_KEYS = 150
SEED = 2024

#: phase schedule (virtual seconds) — baseline at tier capacity, a 5x
#: flash crowd with a mid-storm scale-down, then back to baseline rate
BASE_RATE = 100.0
STORM_RATE = 5 * BASE_RATE
WARMUP_RATE = 25.0
BASELINE_SECONDS = 8.0
STORM_SECONDS = 12.0
RECOVERY_SECONDS = 15.0
SCALE_DOWN_AFTER = 4.0  # into the storm
DRAIN_TTL = 5.0

#: client model
SLO_SECONDS = 1.0       # answers slower than this are not goodput
MAX_RETRIES = 2         # per original request
RETRY_DELAY = 0.05
RETRY_RATIO = 0.2       # armored budget: retries per request
RETRY_MIN_RATE = 1.0    # armored budget: trickle reserve per second

#: admission bound: outstanding DB reads the armored tier tolerates
ADMISSION_DEPTH = 16

#: gates
GATE_GOODPUT_RATIO = 0.70   # armored storm goodput vs baseline rate
GATE_P99_ADMITTED = 2.5     # seconds, armored storm p99 of served
GATE_RECOVERY_FACTOR = 3.0  # armored recovery p99 vs baseline p99
RATCHET_TOLERANCE = 0.15    # --check fails beyond -15% goodput ratio


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _arrivals(
    rng: random.Random,
    start: float,
    rate: float,
    duration: float,
    hot_fraction: float,
    cold_prefix: str,
) -> List[Tuple[float, str]]:
    """Open-loop arrival list: uniform spacing, seeded hot/cold mix.
    Cold keys are unique (a flash crowd is new pages, not a hot spot)."""
    events = []
    count = int(rate * duration)
    for i in range(count):
        t = start + i / rate
        if rng.random() < hot_fraction:
            key = f"hot:{rng.randrange(HOT_KEYS)}"
        else:
            key = f"{cold_prefix}:{i}"
        events.append((t, key))
    return events


class _ClientDriver:
    """Open-loop client with a retry loop: shed or over-SLO answers are
    retried (up to ``MAX_RETRIES``), gated by the retry budget when one
    is armed — the storm-amplification dial the bench A/Bs."""

    def __init__(
        self,
        web: WebServer,
        budget: Optional[RetryBudget],
        retry_unbudgeted: bool,
    ) -> None:
        self.web = web
        self.budget = budget
        self.retry_unbudgeted = retry_unbudgeted
        self.requests = 0
        self.attempts = 0
        self.retries = 0
        #: (arrival, latency-or-None) per attempt; None = shed
        self.records: List[Tuple[float, Optional[float]]] = []
        self._tiebreak = itertools.count()

    def run(
        self,
        arrivals: List[Tuple[float, str]],
        on_slot: Optional[Callable[[float, List[float]], None]] = None,
        slot_seconds: float = 1.0,
    ) -> List[Tuple[float, Optional[float]]]:
        """Drive every arrival (plus retries) in time order; returns this
        phase's records.  *on_slot* fires at each slot edge with the
        slot's served latencies (the controller's measurement feed)."""
        heap: List[Tuple[float, int, str, int]] = []
        for t, key in arrivals:
            heapq.heappush(heap, (t, next(self._tiebreak), key, 0))
        phase_records: List[Tuple[float, Optional[float]]] = []
        slot_latencies: List[float] = []
        next_slot = (arrivals[0][0] if arrivals else 0.0) + slot_seconds
        while heap:
            t, _, key, tries = heapq.heappop(heap)
            while on_slot is not None and t >= next_slot:
                on_slot(next_slot, slot_latencies)
                slot_latencies = []
                next_slot += slot_seconds
            if tries == 0:
                self.requests += 1
                if self.budget is not None:
                    self.budget.record_request(now=t)
            self.attempts += 1
            result = self.web.fetch(key, t)
            if result.path is FetchPath.SHED:
                latency: Optional[float] = None
                wake = t + RETRY_DELAY
            else:
                latency = result.completed - t
                slot_latencies.append(latency)
                # The client only learns it is slow at the SLO timeout.
                wake = t + SLO_SECONDS + RETRY_DELAY
            phase_records.append((t, latency))
            want_retry = latency is None or latency > SLO_SECONDS
            if want_retry and tries < MAX_RETRIES:
                if self.budget is not None:
                    allowed = self.budget.allow_retry(now=t)
                else:
                    allowed = self.retry_unbudgeted
                if allowed:
                    self.retries += 1
                    heapq.heappush(
                        heap, (wake, next(self._tiebreak), key, tries + 1)
                    )
        if on_slot is not None and slot_latencies:
            on_slot(next_slot, slot_latencies)
        self.records.extend(phase_records)
        return phase_records


def _phase_stats(
    records: List[Tuple[float, Optional[float]]], duration: float
) -> Dict[str, float]:
    served = [lat for _, lat in records if lat is not None]
    good = [lat for lat in served if lat <= SLO_SECONDS]
    return {
        "attempts": len(records),
        "served": len(served),
        "shed": len(records) - len(served),
        "goodput_rate": round(len(good) / duration, 2),
        "p50_s": round(_percentile(served, 0.50), 4),
        "p99_s": round(_percentile(served, 0.99), 4),
    }


def _run_scenario(armored: bool) -> Dict[str, object]:
    rng = random.Random(SEED)
    cache = CacheCluster(
        ProteusRouter(NUM_CACHE),
        capacity_bytes=4096 * 4000,
        initial_active=NUM_CACHE,
        ttl=DRAIN_TTL,
        bloom_config=BLOOM,
    )
    database = DatabaseCluster(NUM_DB_SHARDS, seed=SEED)
    admission = (
        VirtualQueueAdmission(max_depth=ADMISSION_DEPTH) if armored else None
    )
    web = WebServer(0, cache, database, seed=SEED, admission=admission)
    budget = (
        RetryBudget(
            ratio=RETRY_RATIO,
            min_retries_per_second=RETRY_MIN_RATE,
            halflife=10.0,
        )
        if armored
        else None
    )
    client = _ClientDriver(web, budget, retry_unbudgeted=not armored)

    # The shed-aware closed loop observes the armored run per slot; it is
    # deliberately fed the *median* latency, which hits keep low — only
    # the shed-rate signal reveals the overload.
    monitor = ClusterHealthMonitor.for_simulation(cache, [web])
    controller = DelayFeedbackController(
        num_servers=NUM_CACHE,
        per_server_rate=150.0,
        min_servers=2,
    )
    controller._n = 2
    controller.history[:] = [2]
    commanded: List[int] = []

    def on_slot(at: float, latencies: List[float]) -> None:
        health = monitor.observe(at)
        commanded.append(
            controller.update(
                _percentile(latencies, 0.50), health.requests, health
            )
        )

    # Warm the hot working set (low rate: the warmup must not overload).
    warm_keys = [f"hot:{i}" for i in range(HOT_KEYS)]
    t = 0.0
    for key in warm_keys:
        web.fetch(key, t)
        t += 1.0 / WARMUP_RATE
    warmup_end = t + 1.0

    baseline_arrivals = _arrivals(
        rng, warmup_end, BASE_RATE, BASELINE_SECONDS, 0.95, "cold:b"
    )
    storm_start = warmup_end + BASELINE_SECONDS
    storm_arrivals = _arrivals(
        rng, storm_start, STORM_RATE, STORM_SECONDS, 0.50, "cold:s"
    )
    recovery_start = storm_start + STORM_SECONDS
    recovery_arrivals = _arrivals(
        rng, recovery_start, BASE_RATE, RECOVERY_SECONDS, 0.95, "cold:r"
    )

    baseline = client.run(baseline_arrivals, on_slot=on_slot)
    n_before_storm = controller.current

    # 5x storm, with a scale-down transition opening mid-storm (the
    # worst case: a drain window plus a flash crowd plus retries).
    split = int(SCALE_DOWN_AFTER * STORM_RATE)
    client.run(storm_arrivals[:split], on_slot=on_slot)
    cache.scale_to(NUM_CACHE - 1, now=storm_start + SCALE_DOWN_AFTER)
    client.run(storm_arrivals[split:], on_slot=on_slot)
    # The storm window includes retries fired inside it, keyed by time.
    storm = [
        r for r in client.records
        if storm_start <= r[0] < recovery_start
    ]
    n_after_storm = controller.current
    storm_scale_ups = controller.emergency_scale_ups

    cache.finalize_expired(recovery_start)
    recovery = client.run(recovery_arrivals, on_slot=on_slot)

    baseline_stats = _phase_stats(baseline, BASELINE_SECONDS)
    storm_stats = _phase_stats(storm, STORM_SECONDS)
    # Recovery gate looks at the window's tail: the system must be back
    # to baseline by the end, whatever the first seconds still digest.
    tail_cut = recovery_start + RECOVERY_SECONDS / 2
    recovery_tail = [r for r in recovery if r[0] >= tail_cut]
    recovery_stats = _phase_stats(recovery_tail, RECOVERY_SECONDS / 2)

    return {
        "armored": armored,
        "requests": client.requests,
        "attempts": client.attempts,
        "retries": client.retries,
        "amplification": round(client.attempts / client.requests, 4),
        "baseline": baseline_stats,
        "storm": storm_stats,
        "recovery_tail": recovery_stats,
        "db_requests": database.total_requests(),
        "shed_total": web.stats.shed,
        "controller": {
            "before_storm": n_before_storm,
            "after_storm": n_after_storm,
            "final": controller.current,
            "emergency_scale_ups": storm_scale_ups,
        },
        "budget": (
            {
                "granted": budget.granted,
                "denied": budget.denied,
            }
            if budget is not None
            else None
        ),
    }


def run_bench() -> Dict[str, object]:
    unarmored = _run_scenario(armored=False)
    armored = _run_scenario(armored=True)

    base_rate = armored["baseline"]["goodput_rate"]
    goodput_ratio = round(armored["storm"]["goodput_rate"] / base_rate, 4)

    # Gate 1: goodput through the 5x storm.
    assert goodput_ratio >= GATE_GOODPUT_RATIO, (
        f"armored storm goodput only {goodput_ratio:.2f}x the baseline "
        f"rate (gate: >= {GATE_GOODPUT_RATIO})"
    )
    # Gate 2: p99 of admitted storm requests stays bounded.
    assert armored["storm"]["p99_s"] <= GATE_P99_ADMITTED, (
        f"armored storm p99 {armored['storm']['p99_s']}s over the "
        f"{GATE_P99_ADMITTED}s bound"
    )
    # Gate 3: retry volume within budget — no amplification.
    total_span = BASELINE_SECONDS + STORM_SECONDS + RECOVERY_SECONDS
    budget_cap = (
        RETRY_RATIO * armored["requests"] + RETRY_MIN_RATE * total_span + 2
    )
    assert armored["retries"] <= budget_cap, (
        f"{armored['retries']} budgeted retries exceed the "
        f"{budget_cap:.0f} cap"
    )
    assert armored["amplification"] < unarmored["amplification"], (
        "the retry budget did not reduce amplification: "
        f"{armored['amplification']} vs {unarmored['amplification']}"
    )
    # Gate 4: recovery to ~baseline p99 within the fixed window, while
    # the unarmored tier is still digesting its backlog.
    recovery_bound = max(
        GATE_RECOVERY_FACTOR * armored["baseline"]["p99_s"], 0.5
    )
    assert armored["recovery_tail"]["p99_s"] <= recovery_bound, (
        f"armored recovery p99 {armored['recovery_tail']['p99_s']}s over "
        f"{recovery_bound:.2f}s"
    )
    assert (
        unarmored["recovery_tail"]["p99_s"]
        > 5 * armored["recovery_tail"]["p99_s"]
    ), "unarmored tier recovered as fast as armored — bench lost its teeth"
    # Gate 5: the closed loop reacts to shedding (scale-up during the
    # storm) and relaxes afterwards.
    ctl = armored["controller"]
    assert ctl["after_storm"] > ctl["before_storm"], (
        f"controller never scaled up on shedding: {ctl}"
    )
    assert ctl["emergency_scale_ups"] >= 1, f"no emergency scale-ups: {ctl}"
    assert ctl["final"] < ctl["after_storm"], (
        f"controller never relaxed after the storm: {ctl}"
    )
    # Sanity: the armor is inert at baseline load.
    assert armored["baseline"]["shed"] == 0, (
        f"baseline shed {armored['baseline']['shed']} requests"
    )

    return {
        "gate": {
            "goodput_ratio": goodput_ratio,
            "min_goodput_ratio": GATE_GOODPUT_RATIO,
            "p99_admitted_bound_s": GATE_P99_ADMITTED,
        },
        "offered": {
            "base_rate": BASE_RATE,
            "storm_rate": STORM_RATE,
            "storm_seconds": STORM_SECONDS,
            "admission_depth": ADMISSION_DEPTH,
            "retry_ratio": RETRY_RATIO,
        },
        "armored": armored,
        "unarmored": unarmored,
    }


def print_report(report: Dict[str, object]) -> None:
    print("\nOverload armor (open-loop 5x storm + retry storm, sim tier):")
    print(fmt_row("scenario", ["goodrate", "p99s", "rec_p99", "amp",
                               "shed", "dbreads"], width=10))
    for name in ("unarmored", "armored"):
        row = report[name]
        print(fmt_row(name, [
            row["storm"]["goodput_rate"],
            row["storm"]["p99_s"],
            row["recovery_tail"]["p99_s"],
            row["amplification"],
            row["shed_total"],
            row["db_requests"],
        ], width=10))
    ctl = report["armored"]["controller"]
    print(
        f"storm goodput ratio {report['gate']['goodput_ratio']}x baseline "
        f"(gate >= {GATE_GOODPUT_RATIO}); controller "
        f"{ctl['before_storm']} -> {ctl['after_storm']} -> {ctl['final']} "
        f"({ctl['emergency_scale_ups']} emergency scale-ups on shed)"
    )


def check_ratchet(report: Dict[str, object]) -> int:
    """CI ratchet: the armored storm goodput ratio must not regress >15%."""
    if not JSON_PATH.exists():
        print(f"{JSON_PATH.name} missing: commit a baseline first")
        return 1
    committed = json.loads(JSON_PATH.read_text())
    old = committed["gate"]["goodput_ratio"]
    new = report["gate"]["goodput_ratio"]
    limit = max(GATE_GOODPUT_RATIO, old * (1 - RATCHET_TOLERANCE))
    verdict = "OK" if new >= limit else "REGRESSED"
    print(f"ratchet: storm goodput ratio {new}x vs committed {old}x "
          f"(limit {limit:.3f}x): {verdict}")
    return 0 if new >= limit else 1


def write_report(report: Dict[str, object]) -> None:
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name}")


def test_overload_armor_gates():
    """Goodput, bounded p99, budget compliance, recovery, and the
    shed-driven control loop (all asserted inside :func:`run_bench`)."""
    report = run_bench()
    print_report(report)
    write_report(report)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="ratchet mode: fail if the armored storm goodput ratio "
             f"regressed >{int(100 * RATCHET_TOLERANCE)}%% vs the "
             "committed BENCH_overload.json (the file is not rewritten)",
    )
    args = parser.parse_args()
    report = run_bench()
    print_report(report)
    if args.check:
        return check_ratchet(report)
    write_report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
