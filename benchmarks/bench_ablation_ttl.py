"""Ablation — the TTL drain window: migration completeness vs energy cost.

Section IV argues servers "can be safely turned off after TTL seconds":
anything untouched within TTL is no longer hot.  The knob trades two costs:

* short TTL — the drained server powers off sooner (energy), but keys whose
  natural revisit interval exceeds TTL are lost and must be refetched from
  the database later;
* long TTL — near-complete on-demand migration, but the server idles longer.

We scale 4 -> 3 under a closed-loop population whose mean page revisit
interval is ~12 s, sweep TTL, and report post-transition DB reads plus the
extra server-on seconds.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.web.frontend import WebServer
from repro.workload.synthetic import UserPopulation

CFG = optimal_config(5000)
TTLS = [2.0, 5.0, 15.0, 40.0, 90.0]
OBSERVE = 60.0  # seconds of traffic after the transition


def run_ttl(ttl: float) -> dict:
    cache = CacheCluster(
        ProteusRouter(4, ring_size=2 ** 24), capacity_bytes=4096 * 5000,
        initial_active=4, ttl=ttl, bloom_config=CFG,
    )
    db = DatabaseCluster(3)
    web = WebServer(0, cache, db)
    population = UserPopulation(3000, pages_per_user=24, think_time=0.5, seed=9)
    population.resize_to(40)
    rng = random.Random(4)
    # Warm phase: every user cycles its pages (mean revisit ~ 24*0.5 = 12 s).
    t = 0.0
    while t < 30.0:
        user = rng.choice(population.active)
        web.fetch(user.next_key(), t)
        t += 0.025
    db_before = db.total_requests()
    cache.scale_to(3, now=t)
    end = t + OBSERVE
    while t < end:
        cache.finalize_expired(t)
        user = rng.choice(population.active)
        web.fetch(user.next_key(), t)
        t += 0.025
    return {
        "db_reads": db.total_requests() - db_before,
        "extra_on_seconds": min(ttl, OBSERVE),
    }


def test_ablation_ttl(benchmark):
    rows = benchmark.pedantic(
        lambda: {ttl: run_ttl(ttl) for ttl in TTLS}, rounds=1, iterations=1
    )
    print("\nAblation — TTL drain window vs post-transition DB reads:")
    print(fmt_row("TTL (s)", TTLS, width=9))
    print(fmt_row("db reads", [rows[t]["db_reads"] for t in TTLS], width=9))
    print(fmt_row("extra on-s", [rows[t]["extra_on_seconds"] for t in TTLS], width=9))

    reads = [rows[t]["db_reads"] for t in TTLS]
    # Longer windows strictly reduce refetch pressure...
    assert reads[0] > reads[-1]
    # ...and a TTL comfortably above the revisit interval (~12 s) recovers
    # most of the loss: going 40 -> 90 changes little.
    assert reads[-2] - reads[-1] < (reads[0] - reads[-1]) * 0.35
