"""Chaos bench — availability and tail latency under scripted faults.

The robustness counterpart of the Fig. 9 response-time runs: a live
frontend (real TCP, real memcached protocol) serves a fixed request mix
while a :class:`~repro.net.chaosproxy.ChaosProxy` per cache server
replays a scripted fault plan.  Scenarios:

* ``baseline`` — fault-free proxies (the degraded machinery must cost
  nothing when nothing fails);
* ``killed_mid_transition`` — a smooth scale-down starts, then an old
  owner is hard-killed mid-drain: digest hits on the dead server must
  degrade to the database, never to an error;
* ``reset_storm`` — every server's path resets 5% of response chunks:
  the retry + reconnect path carries the load;
* ``slow_server`` — one server answers 50 ms late: the per-op timeout +
  breaker keep it from dragging every request's tail.

Every scenario must answer **100% of requests with the correct value**
(the acceptance bar: degraded, never wrong, never raising).  Results are
printed as a table and written to ``BENCH_fault.json`` (availability,
p99, degraded counters per scenario).  ``PROTEUS_BENCH_ROUNDS`` (default
3) sets the repeat count — latency is best-of-rounds, availability must
hold on every round; ``--rounds 1`` is the smoke mode.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from pathlib import Path
from typing import Dict, List

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.net.chaosproxy import ChaosProxy
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.resilience import FaultPlan, ResiliencePolicy

ROUNDS = max(1, int(os.environ.get("PROTEUS_BENCH_ROUNDS", "3")))
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_fault.json"

NUM_SERVERS = 3
NUM_KEYS = 48
SCALAR_REQUESTS = 72
BATCH_REQUESTS = 4  # fetch_many calls of BATCH_SIZE keys each
BATCH_SIZE = 12
BLOOM = optimal_config(2000)


def _value(key: str) -> bytes:
    return f"authoritative:{key}".encode()


async def _database(key: str) -> bytes:
    return _value(key)


def _percentile(samples: List[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


async def _run_scenario(name: str) -> Dict[str, object]:
    """One scenario run: returns availability/latency/degraded numbers."""
    servers = [MemcachedServer(bloom_config=BLOOM) for _ in range(NUM_SERVERS)]
    for server in servers:
        await server.start()
    proxies = [ChaosProxy("127.0.0.1", server.port) for server in servers]
    for proxy in proxies:
        await proxy.start()
    frontend = AsyncProteusFrontend(
        [("127.0.0.1", proxy.port) for proxy in proxies],
        BLOOM,
        _database,
        resilience=ResiliencePolicy.aggressive(op_timeout=0.2),
    )
    keys = [f"page:{i}" for i in range(NUM_KEYS)]
    latencies: List[float] = []
    correct = 0
    total = 0
    try:
        async with frontend:
            # Warm the cache while everything is healthy.
            await frontend.fetch_many(keys)

            if name == "killed_mid_transition":
                # Digest broadcast succeeds, then an old owner dies
                # mid-drain: digest hits on it must degrade, not fail.
                await frontend.scale_to(NUM_SERVERS - 1, ttl=30.0)
                proxies[0].set_plan(FaultPlan.killed())
            elif name == "reset_storm":
                for index, proxy in enumerate(proxies):
                    proxy.set_plan(FaultPlan.flaky(0.05, seed=index + 1))
            elif name == "slow_server":
                proxies[0].set_plan(FaultPlan.slow(0.05))

            for i in range(SCALAR_REQUESTS):
                key = keys[i % NUM_KEYS]
                start = time.perf_counter()
                result = await frontend.fetch(key)
                latencies.append(time.perf_counter() - start)
                total += 1
                correct += result.value == _value(key)
            for i in range(BATCH_REQUESTS):
                batch = keys[i * BATCH_SIZE: (i + 1) * BATCH_SIZE]
                start = time.perf_counter()
                results = await frontend.fetch_many(batch)
                latencies.append(time.perf_counter() - start)
                total += len(batch)
                correct += sum(
                    results[key].value == _value(key) for key in batch
                )
            stats = frontend.stats
            return {
                "requests": total,
                "availability": correct / total,
                "p99_ms": round(1000 * _percentile(latencies, 0.99), 3),
                "mean_ms": round(
                    1000 * sum(latencies) / len(latencies), 3
                ),
                "degraded_events": dict(stats.degraded),
                "db_fraction": round(stats.database_fraction, 4),
                "breaker_trips": sum(b.trips for b in frontend.breakers),
                "reconnects": frontend.reconnects,
            }
    finally:
        for proxy in proxies:
            await proxy.close()
        for server in servers:
            await server.stop()


SCENARIOS = ["baseline", "killed_mid_transition", "reset_storm", "slow_server"]


def run_bench(rounds: int) -> Dict[str, Dict[str, object]]:
    """All scenarios, *rounds* times each; latency is best-of-rounds and
    availability must be perfect on **every** round."""
    report: Dict[str, Dict[str, object]] = {}
    for name in SCENARIOS:
        best: Dict[str, object] = {}
        for _ in range(rounds):
            run = asyncio.run(_run_scenario(name))
            assert run["availability"] == 1.0, (
                f"{name}: only {run['availability']:.4f} of requests "
                f"answered correctly"
            )
            if not best or run["p99_ms"] < best["p99_ms"]:
                best = run
        report[name] = best
    return report


def print_report(report: Dict[str, Dict[str, object]]) -> None:
    print("\nFault-tolerance scenarios (live tier through chaos proxies):")
    print(fmt_row("scenario", ["avail", "p99ms", "meanms", "dbfrac",
                               "degr", "trips"], width=10))
    for name, row in report.items():
        print(fmt_row(name[:16], [
            row["availability"],
            row["p99_ms"],
            row["mean_ms"],
            row["db_fraction"],
            sum(row["degraded_events"].values()),
            row["breaker_trips"],
        ], width=10))


def write_report(report: Dict[str, Dict[str, object]], rounds: int) -> None:
    payload = {
        "rounds": rounds,
        "num_servers": NUM_SERVERS,
        "num_keys": NUM_KEYS,
        "requests_per_round": SCALAR_REQUESTS + BATCH_REQUESTS * BATCH_SIZE,
        "policy": "ResiliencePolicy.aggressive(op_timeout=0.2)",
        "scenarios": report,
    }
    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {JSON_PATH.name}")


def test_fault_tolerance_scenarios():
    """Every scenario answers 100% of requests correctly (asserted inside
    :func:`run_bench`) and the degraded paths actually engage."""
    report = run_bench(ROUNDS)
    print_report(report)
    # The fault scenarios must exercise the degraded machinery...
    killed = report["killed_mid_transition"]
    assert sum(killed["degraded_events"].values()) > 0
    assert killed["breaker_trips"] >= 1
    # ...and the baseline must not.
    assert sum(report["baseline"]["degraded_events"].values()) == 0
    assert report["baseline"]["breaker_trips"] == 0
    write_report(report, ROUNDS)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--rounds", type=int, default=ROUNDS,
        help="repetitions per scenario (latency is best-of-rounds)",
    )
    args = parser.parse_args()
    report = run_bench(max(1, args.rounds))
    print_report(report)
    write_report(report, max(1, args.rounds))


if __name__ == "__main__":
    main()
