"""Microbenchmark — batched multi-key retrieval vs a loop of single fetches.

Not a paper figure; it quantifies what the batch planner
(:meth:`~repro.core.retrieval.RetrievalEngine.retrieve_many`) buys: a
logical page of K keys costs at most one multiget round trip per probed
server instead of K round trips.  Measured on both substrates — the
simulated tier reports cache round trips and virtual latency per page, the
live asyncio tier reports TCP round trips and wall-clock latency per page —
for pages of 1, 8, and 64 keys against a warm 4-server tier.
"""

from __future__ import annotations

import asyncio
import time

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

CFG = optimal_config(4000)
NUM_SERVERS = 4
PAGE_SIZES = (1, 8, 64)
PAGES = 20


def _page(size: int, page: int):
    return [f"page:{page}:{i}" for i in range(size)]


# ----------------------------------------------------------- sim substrate


def run_sim(size: int, use_batch: bool):
    """(cache round trips, virtual seconds) per warm logical page."""
    cache = CacheCluster(
        ProteusRouter(NUM_SERVERS), capacity_bytes=4096 * 4000,
        ttl=60.0, bloom_config=CFG,
    )
    db = DatabaseCluster(2, service_model=Constant(0.005))
    web = WebServer(
        0, cache, db,
        cache_latency=Constant(0.001), web_overhead=Constant(0.0),
    )
    round_trips = 0
    original = web._cache_op

    def counting(now):
        nonlocal round_trips
        round_trips += 1
        return original(now)

    web._cache_op = counting
    clock = 0.0
    for page in range(PAGES):  # warm every page
        results = web.fetch_many(_page(size, page), clock)
        clock = max(r.completed for r in results.values()) + 1.0
    round_trips = 0
    spent = 0.0
    for page in range(PAGES):
        keys = _page(size, page)
        if use_batch:
            results = web.fetch_many(keys, clock)
            done = max(r.completed for r in results.values())
        else:
            # A loop of fetches is sequential: each starts when the
            # previous one completed (one blocked servlet thread).
            done = clock
            for key in keys:
                done = web.fetch(key, done).completed
        spent += done - clock
        clock = done + 1.0
    return round_trips / PAGES, spent / PAGES


# ---------------------------------------------------------- live substrate


def run_live(size: int, use_batch: bool):
    """(TCP round trips, wall seconds) per warm logical page."""

    async def body():
        servers = [MemcachedServer(bloom_config=CFG) for _ in range(NUM_SERVERS)]
        endpoints = []
        for server in servers:
            port = await server.start()
            endpoints.append(("127.0.0.1", port))

        async def db(key):
            return f"db-{key}".encode()

        web = AsyncProteusFrontend(endpoints, CFG, db)
        trips = 0

        def count(method):
            async def wrapped(*args, **kwargs):
                nonlocal trips
                trips += 1
                return await method(*args, **kwargs)

            return wrapped

        web._get = count(web._get)
        web._set = count(web._set)
        web._get_multi = count(web._get_multi)
        web._set_multi = count(web._set_multi)
        try:
            await web.connect()
            for page in range(PAGES):  # warm every page
                await web.fetch_many(_page(size, page))
            trips = 0
            started = time.perf_counter()
            for page in range(PAGES):
                keys = _page(size, page)
                if use_batch:
                    await web.fetch_many(keys)
                else:
                    for key in keys:
                        await web.fetch(key)
            spent = time.perf_counter() - started
            return trips / PAGES, spent / PAGES
        finally:
            await web.close()
            for server in servers:
                await server.stop()

    return asyncio.run(body())


def test_multiget_amortization(benchmark):
    def run_all():
        table = {}
        for size in PAGE_SIZES:
            table[size] = {
                "sim_loop": run_sim(size, use_batch=False),
                "sim_batch": run_sim(size, use_batch=True),
                "live_loop": run_live(size, use_batch=False),
                "live_batch": run_live(size, use_batch=True),
            }
        return table

    table = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print("\nBatched retrieval — round trips and latency per logical page:")
    print(fmt_row("page keys", [
        "sim RT/loop", "sim RT/batch", "sim s/loop", "sim s/batch",
        "live RT/loop", "live RT/batch", "live ms/loop", "live ms/batch",
    ], width=14))
    for size in PAGE_SIZES:
        row = table[size]
        print(fmt_row(str(size), [
            row["sim_loop"][0], row["sim_batch"][0],
            round(row["sim_loop"][1], 4), round(row["sim_batch"][1], 4),
            row["live_loop"][0], row["live_batch"][0],
            round(row["live_loop"][1] * 1e3, 3),
            round(row["live_batch"][1] * 1e3, 3),
        ], width=14))

    for size in PAGE_SIZES:
        row = table[size]
        # A warm batch never probes a server twice, so its round trips are
        # bounded by the server count regardless of page size.
        assert row["sim_batch"][0] <= NUM_SERVERS
        assert row["live_batch"][0] <= NUM_SERVERS
        if size > 1:
            # The loop pays one round trip per key.
            assert row["sim_loop"][0] == size
            assert row["live_loop"][0] == size
            assert row["sim_batch"][0] < row["sim_loop"][0]
            assert row["live_batch"][0] < row["live_loop"][0]
            # Fewer round trips means less modelled latency per page.
            assert row["sim_batch"][1] < row["sim_loop"][1]
