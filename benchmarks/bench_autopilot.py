"""Closed-loop autopilot bench — the health-feedback + adaptive-TTL gate.

A two-day diurnal workload (the Fig. 4 envelope, compressed) drives the
online :class:`~repro.experiments.autopilot.AutopilotExperiment` while a
scripted :class:`~repro.resilience.FaultSchedule` misbehaves:

* day 1, mid-valley: a cache server is killed while the fleet is at its
  minimum and repaired six slots later — the case where delay-only control
  is blind (the degraded path keeps the measured delay under the
  reference, so the open loop never reacts until the morning load rise);
* day 2, during the descent: a reset storm (two short kill/repair bursts)
  hits exactly when the open loop is shedding capacity.

Two scenarios run the **same** workload, seeds, and fault script:

* ``open_loop`` — the paper's controller: delay-only, fixed 60 s drain
  window;
* ``closed_loop`` — health feedback on (emergency scale-up on lost
  capacity, scale-down vetoes while impaired) and the adaptive TTL policy
  sizing each drain window from observed remap-miss decay.

Gates:

* both scenarios answer 100% of requests (availability 1.0);
* the closed loop's p99 stays under the paper's 0.5 s delay bound;
* post-fault recovery is strictly faster closed-loop than open-loop, on
  both metrics: slots until capacity meets requirement again, and
  under-provisioned slots inside the repair horizon;
* no material energy regression: closed-loop energy <= 1.08x open-loop;
* the adaptive policy actually adapts: at least one drain window differs
  from the fixed 60 s default, while the closed loop's remap-miss total
  stays within 1.5x the open loop's (the shorter windows must not spill
  meaningful extra misses to the database).

Results go to ``BENCH_autopilot.json``.  ``--check`` is the CI ratchet:
it re-runs the bench and fails (exit 1) if the closed loop's post-fault
recovery got slower than the committed JSON (the sim is deterministic, so
equality is the expectation).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from benchmarks.conftest import fmt_row  # noqa: E402
from repro.experiments.autopilot import (  # noqa: E402
    AutopilotConfig,
    AutopilotExperiment,
)
from repro.resilience import FaultPlan, FaultSchedule  # noqa: E402

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_autopilot.json"

#: one compressed diurnal day (Fig. 4 envelope): peak -> valley -> peak.
DAY_USERS = [60, 48, 40, 32, 26, 24, 24, 24, 24, 24, 26, 32, 40, 48, 56, 60]
DAYS = 2
SLOT_SECONDS = 30.0
SEED = 3
DELAY_BOUND = 0.5

#: day-1 kill: mid-valley, while the fleet sits at its minimum.
KILL_AT = 7 * SLOT_SECONDS + 4.0
KILL_SERVER = 1
REPAIR_AT = 13 * SLOT_SECONDS
#: slots between the kill and the repair — the under-provisioning horizon.
REPAIR_HORIZON = int((REPAIR_AT - KILL_AT) // SLOT_SECONDS)

#: day-2 reset storm: two short kill/repair bursts during the descent.
STORM_SLOT = len(DAY_USERS) + 2

ENERGY_TOLERANCE = 1.08
REMAP_COST_TOLERANCE = 1.5
RATCHET_TOLERANCE = 0  # deterministic sim: any recovery slowdown fails


def fault_schedule() -> FaultSchedule:
    """The scripted outage both scenarios replay."""
    storm_t = STORM_SLOT * SLOT_SECONDS
    return (
        FaultSchedule()
        .add(
            at=KILL_AT,
            server_id=KILL_SERVER,
            plan=FaultPlan.killed(),
            clear_at=REPAIR_AT,
        )
        .add(
            at=storm_t + 3.0,
            server_id=2,
            plan=FaultPlan.killed(),
            clear_at=storm_t + 12.0,
        )
        .add(
            at=storm_t + 15.0,
            server_id=0,
            plan=FaultPlan.killed(),
            clear_at=storm_t + 24.0,
        )
    )


def build_config(closed: bool, days: int = DAYS) -> AutopilotConfig:
    return AutopilotConfig(
        users_per_slot=DAY_USERS * days,
        slot_seconds=SLOT_SECONDS,
        health_feedback=closed,
        adaptive_ttl=closed,
        faults=fault_schedule(),
        seed=SEED,
        delay_bound=DELAY_BOUND,
    )


def run_scenario(closed: bool, days: int = DAYS) -> Dict[str, object]:
    report = AutopilotExperiment(build_config(closed, days)).run()
    row = report.to_dict()
    row["recovery_slots"] = report.recovery_slots(KILL_AT)
    row["underprovisioned_slots"] = report.underprovisioned_slots(
        KILL_AT, horizon_slots=REPAIR_HORIZON
    )
    return row


def run_bench(days: int = DAYS) -> Dict[str, object]:
    open_loop = run_scenario(closed=False, days=days)
    closed_loop = run_scenario(closed=True, days=days)

    for name, row in (("open_loop", open_loop), ("closed_loop", closed_loop)):
        assert row["availability"] == 1.0, (
            f"{name}: availability {row['availability']} < 1.0 — "
            f"{row['served_requests']}/{row['total_requests']} answered"
        )
    assert closed_loop["p99_latency"] <= DELAY_BOUND, (
        f"closed loop p99 {closed_loop['p99_latency']:.3f}s exceeds the "
        f"{DELAY_BOUND}s delay bound"
    )
    assert closed_loop["recovery_slots"] < open_loop["recovery_slots"], (
        "closed loop must recover capacity in strictly fewer slots: "
        f"closed {closed_loop['recovery_slots']} vs "
        f"open {open_loop['recovery_slots']}"
    )
    assert (
        closed_loop["underprovisioned_slots"]
        < open_loop["underprovisioned_slots"]
    ), (
        "closed loop must spend strictly fewer post-fault slots "
        "under-provisioned: closed "
        f"{closed_loop['underprovisioned_slots']} vs open "
        f"{open_loop['underprovisioned_slots']}"
    )
    energy_ratio = (
        closed_loop["energy_kwh"]["total"] / open_loop["energy_kwh"]["total"]
    )
    assert energy_ratio <= ENERGY_TOLERANCE, (
        f"closed loop energy regressed {energy_ratio:.3f}x over open loop "
        f"(gate <= {ENERGY_TOLERANCE}x)"
    )
    adapted = [
        ttl for ttl in closed_loop["ttls_used"] if ttl != 60.0
    ]
    assert adapted, (
        "adaptive TTL never produced a window different from the fixed "
        f"60 s default: {closed_loop['ttls_used']}"
    )
    remap_budget = REMAP_COST_TOLERANCE * max(
        1, open_loop["remap_misses_total"]
    )
    assert closed_loop["remap_misses_total"] <= remap_budget, (
        "adaptive drain windows spilled too many remap misses: closed "
        f"{closed_loop['remap_misses_total']} vs open "
        f"{open_loop['remap_misses_total']} "
        f"(gate <= {REMAP_COST_TOLERANCE}x)"
    )

    return {
        "days": days,
        "slot_seconds": SLOT_SECONDS,
        "users_per_day": DAY_USERS,
        "kill_at": KILL_AT,
        "repair_at": REPAIR_AT,
        "delay_bound": DELAY_BOUND,
        "energy_ratio": round(energy_ratio, 4),
        "adapted_ttls": [round(t, 2) for t in adapted],
        "scenarios": {"open_loop": open_loop, "closed_loop": closed_loop},
    }


def print_report(report: Dict[str, object]) -> None:
    print(f"\nClosed-loop autopilot ({report['days']} diurnal days, "
          f"mid-valley kill + day-2 reset storm):")
    print(fmt_row("scenario", ["avail", "p99s", "recov", "underp",
                               "kwh", "emerg", "veto"], width=8))
    for name, row in report["scenarios"].items():
        print(fmt_row(name, [
            row["availability"],
            round(row["p99_latency"], 3),
            row["recovery_slots"],
            row["underprovisioned_slots"],
            round(row["energy_kwh"]["total"], 4),
            row["emergency_scale_ups"],
            row["vetoed_scale_downs"],
        ], width=8))
    print(f"energy ratio closed/open: {report['energy_ratio']}x "
          f"(gate <= {ENERGY_TOLERANCE}x); adapted drain windows: "
          f"{report['adapted_ttls']}")


def check_ratchet(report: Dict[str, object]) -> int:
    """CI ratchet: closed-loop post-fault recovery must not get slower."""
    if not JSON_PATH.exists():
        print(f"{JSON_PATH.name} missing: commit a baseline first")
        return 1
    committed = json.loads(JSON_PATH.read_text())
    failures = []
    for metric in ("recovery_slots", "underprovisioned_slots"):
        old = committed["scenarios"]["closed_loop"][metric]
        new = report["scenarios"]["closed_loop"][metric]
        limit = old + RATCHET_TOLERANCE
        verdict = "OK" if new <= limit else "REGRESSED"
        print(f"ratchet: closed-loop {metric} {new} vs committed {old} "
              f"(limit {limit}): {verdict}")
        if new > limit:
            failures.append(metric)
    return 1 if failures else 0


def test_autopilot_closed_loop_beats_open_loop():
    """The closed loop recovers faster at 100% availability with no
    energy regression (asserted inside :func:`run_bench`); smoke-sized
    (one day) so the tier-1 suite stays fast."""
    report = run_bench(days=1)
    closed = report["scenarios"]["closed_loop"]
    assert closed["emergency_scale_ups"] >= 1, (
        "the mid-valley kill never triggered an emergency scale-up"
    )


def write_report(report: Dict[str, object]) -> None:
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="ratchet mode: fail if closed-loop post-fault recovery "
             "regressed vs the committed BENCH_autopilot.json "
             "(the file is not rewritten)",
    )
    parser.add_argument(
        "--days", type=int, default=DAYS,
        help="diurnal days to simulate (default 2; ratchet always "
             "compares like-for-like against the committed run)",
    )
    args = parser.parse_args()
    report = run_bench(days=args.days)
    print_report(report)
    if args.check:
        return check_ratchet(report)
    write_report(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
