"""Theorem 1 / Algorithm 1 — virtual-node counts, exact balance, and cost.

Regenerates the Section III analysis as a table: for each fleet size N, the
Theorem 1 lower bound, the number of vnodes Algorithm 1 places (equal), an
exact balance check over every active prefix, and the construction time
(the part pytest-benchmark measures — placement must stay cheap because the
paper's web servers each build it locally).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.core.placement import place_virtual_nodes, theoretical_min_vnodes

SIZES = [2, 5, 10, 20, 40]  # 40 = the paper's testbed fleet
RING = 2 ** 32


def build_all():
    return {n: place_virtual_nodes(n, RING) for n in SIZES}


def test_theorem1_vnode_counts(benchmark):
    placements = benchmark.pedantic(build_all, rounds=3, iterations=1)
    print("\nTheorem 1 — virtual nodes needed vs placed:")
    print(fmt_row("N", SIZES))
    print(fmt_row("bound", [theoretical_min_vnodes(n) for n in SIZES]))
    print(fmt_row("placed", [placements[n].num_vnodes for n in SIZES]))
    for n in SIZES:
        assert placements[n].num_vnodes == theoretical_min_vnodes(n)
        placements[n].verify_balance()
    print("  balance condition verified exactly for every active prefix")


def test_algorithm1_construction_cost_n40(benchmark):
    # The paper's deployment size: building the full 40-server placement.
    placement = benchmark(place_virtual_nodes, 40, RING)
    assert placement.num_vnodes == 781
