"""Fig. 4 — Wikipedia workload and the provisioning series it induces.

Paper: the dots curve is requests per 1-hour window of the Wikipedia trace
(peak ~2x valley); the circles curve is the number of running cache servers
chosen by the feedback loop (delay bound 0.5 s, reference 0.4 s, 30-minute
updates).  We regenerate both: slot the synthetic trace, run the feedback
loop over the slot rates, and print the two series.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.provisioning.controller import run_feedback_loop
from repro.provisioning.policies import limit_step_size
from repro.workload.trace import peak_to_valley, slot_counts

NUM_SLOTS = 12


def build_series(trace):
    duration = trace[-1].time
    slot_seconds = duration / NUM_SLOTS
    counts = slot_counts(trace, slot_seconds, NUM_SLOTS)
    rates = [c / slot_seconds for c in counts]
    schedule = limit_step_size(
        run_feedback_loop(
            rates, num_servers=10, per_server_rate=max(rates) / 6,
            slot_seconds=slot_seconds,
        )
    )
    return counts, schedule


def test_fig04_workload_and_provisioning(benchmark, wikipedia_trace):
    counts, schedule = benchmark.pedantic(
        build_series, args=(wikipedia_trace,), rounds=3, iterations=1
    )
    print("\nFig. 4 — workload (requests/slot) and provisioning n(t):")
    print(fmt_row("slot", list(range(NUM_SLOTS))))
    print(fmt_row("requests", counts))
    print(fmt_row("n(t)", schedule.counts))
    ptv = peak_to_valley(counts)
    print(f"  peak/valley workload ratio: {ptv:.2f} (paper: ~2)")

    # Shape assertions: diurnal swing near 2x, n(t) tracks the workload.
    assert 1.5 < ptv < 3.0
    peak_slot = counts.index(max(counts))
    valley_slot = counts.index(min(counts))
    assert schedule.counts[peak_slot] >= schedule.counts[valley_slot]
    assert max(schedule.counts) > min(schedule.counts)
