"""Eq. 10 / Table I — memory-optimal digest sizing across key counts.

Regenerates the Section IV-B optimization: for each expected key count, the
minimal (l, b), digest memory, the closed-form (Lambert W) vs enumerated b,
and the paper's worked example (kappa=1e4, h=4, pp=pn=1e-4 -> l=4e5, b=3,
~150 KB).
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import (
    counter_bits_closed_form,
    optimal_config,
)

KAPPAS = [1_000, 10_000, 100_000, 1_000_000, 2_560_000]  # last = paper's 1GB/4KB


def sweep():
    return {kappa: optimal_config(kappa, 4, 1e-4, 1e-4) for kappa in KAPPAS}


def test_bloom_config_table(benchmark):
    configs = benchmark.pedantic(sweep, rounds=5, iterations=1)
    print("\nEq. 10 — optimal digest configuration (h=4, pp=pn=1e-4):")
    print(fmt_row("kappa", KAPPAS, width=10))
    print(fmt_row("l", [configs[k].num_counters for k in KAPPAS], width=10))
    print(fmt_row("b", [configs[k].counter_bits for k in KAPPAS], width=10))
    print(fmt_row(
        "KB", [round(configs[k].memory_bytes / 1024, 1) for k in KAPPAS],
        width=10,
    ))
    closed = [
        counter_bits_closed_form(configs[k].num_counters, k, 4, 1e-4)
        for k in KAPPAS
    ]
    print(fmt_row("b (closed)", [round(c, 2) for c in closed], width=10))

    # Paper example: kappa=1e4 -> l~4e5, b=3, ~150 KB.
    example = configs[10_000]
    assert example.counter_bits == 3
    assert example.memory_bytes == pytest.approx(150 * 1024, rel=0.10)
    # Closed form rounds up to the enumerated integer everywhere.
    for k, c in zip(KAPPAS, closed):
        assert configs[k].counter_bits == math.ceil(c)
    # Memory scales linearly in kappa (the digest stays "a few hundred KB"
    # even at the paper's 2.56M-page setting, i.e. broadcastable).
    assert configs[2_560_000].memory_bytes < 50 * 1024 * 1024
