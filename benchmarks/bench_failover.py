"""Failure injection — DB fallback over time around a crash (Section III-E).

Not a paper figure (the paper analyzes Eq. 3 but does not run crashes); this
bench turns the replication design into a measured availability story: the
per-slot database-fallback fraction before, during, and after a crash, for
r = 1 and r = 2.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.experiments.failover import (
    FailoverConfig,
    FailoverExperiment,
    FailureEvent,
)

CRASH_AT = 60.0
REPAIR_AT = 90.0
DURATION = 130.0


def run(replicas: int):
    return FailoverExperiment(FailoverConfig(
        duration=DURATION,
        num_servers=8,
        replicas=replicas,
        num_users=80,
        catalogue_size=5000,
        pages_per_user=25,
        slot_seconds=10.0,
        seed=13,
        failures=[FailureEvent(when=CRASH_AT, server_id=0, repair_at=REPAIR_AT)],
    )).run()


def test_failover_timeline(benchmark):
    reports = benchmark.pedantic(
        lambda: {r: run(r) for r in (1, 2)}, rounds=1, iterations=1
    )
    print(f"\nFailure injection — DB-fallback fraction per 10 s slot "
          f"(crash t={CRASH_AT:.0f}, repair t={REPAIR_AT:.0f}):")
    times = reports[1].db_fraction.times
    print(fmt_row("slot mid", [int(t) for t in times], width=7))
    for replicas, report in reports.items():
        print(fmt_row(
            f"r={replicas}",
            [round(v, 3) for v in report.db_fraction.values],
            width=7,
        ))
    print("  failovers: " + ", ".join(
        f"r={r}: {report.failovers}" for r, report in reports.items()
    ))

    def window(report, lo, hi):
        return [
            v for t, v in zip(report.db_fraction.times, report.db_fraction.values)
            if lo <= t < hi
        ]

    for replicas, report in reports.items():
        pre = window(report, CRASH_AT - 10, CRASH_AT)[-1]
        crash_slot = max(window(report, CRASH_AT, REPAIR_AT))
        assert crash_slot > pre  # the crash is visible
    # Replication damps the crash spike.
    spike_r1 = max(window(reports[1], CRASH_AT, REPAIR_AT))
    spike_r2 = max(window(reports[2], CRASH_AT, REPAIR_AT))
    assert spike_r2 < spike_r1
    assert reports[2].failovers > 0 and reports[1].failovers == 0
