"""Routing-backend shootout — proteus vs. multiprobe vs. power at scale.

The pluggable :class:`~repro.core.ring.RingBackend` layer turns the
reproduction into a placement-strategy laboratory; this bench is the
laboratory report.  For each backend at each fleet size it measures:

* **build** — one-off construction cost (Algorithm 1 placement for
  proteus, node-position table for multiprobe, nothing for power);
* **compile** — per-epoch table resolution (amortized by the LRU cache);
* **ops/s** — scalar ``owner()`` and batched ``owners_many`` throughput;
* **table memory** — resident bytes of the compiled epoch table: the
  headline tradeoff, O(N^2) vnodes vs. O(N) node table vs. O(1);
* **peak-to-average load** — sampled key-space balance at full fleet
  (1.0 is perfect; the sampling floor at ``keys/N`` keys per server is
  reported alongside so backends are read against the same noise);
* **remap fraction** — measured on a 10% scale-down against the paper's
  Section II lower bound ``|dn|/max``, via the shared
  :func:`repro.core.metrics.remap_fraction`.

Proteus uses the exact Algorithm 1 construction up to ``--exact-limit``
servers (default 512) and the scaled-integer fast construction — same
borrow schedule, bit-identical feasibility decisions — above it.

Results print as a table per fleet size and aggregate into
``BENCH_shootout.json``.  The default sweep is ``--sizes 40,512,4096``;
``make bench-smoke`` runs the ``--sizes 40,128`` variant.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Dict, List

import numpy as np

from benchmarks.conftest import fmt_row
from repro.core.metrics import peak_to_average, remap_fraction
from repro.core.migration import migration_lower_bound
from repro.core.ring import (
    BACKEND_NAMES,
    DEFAULT_RING_SIZE,
    MultiProbeBackend,
    PowerBackend,
    ProteusBackend,
    RingBackend,
)

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_shootout.json"


def build_backend(
    name: str, num_servers: int, exact_limit: int
) -> RingBackend:
    if name == "proteus":
        return ProteusBackend(
            num_servers, DEFAULT_RING_SIZE, fast=num_servers > exact_limit
        )
    if name == "multiprobe":
        return MultiProbeBackend(num_servers, DEFAULT_RING_SIZE)
    if name == "power":
        return PowerBackend(num_servers, DEFAULT_RING_SIZE)
    raise ValueError(f"unknown backend {name!r}")


def bench_backend(
    name: str,
    num_servers: int,
    positions: np.ndarray,
    scalar_probes: int,
    rounds: int,
    exact_limit: int,
) -> Dict:
    start = time.perf_counter()
    backend = build_backend(name, num_servers, exact_limit)
    build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    table = backend.compile(num_servers)
    compile_seconds = time.perf_counter() - start

    # Scalar throughput: best-of-rounds over a prefix of the key stream.
    scalar_positions = [int(p) for p in positions[:scalar_probes]]
    best_scalar = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for position in scalar_positions:
            table.lookup(position)
        best_scalar = min(best_scalar, time.perf_counter() - t0)

    best_batch = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        owners = backend.owners_many(positions, num_servers)
        best_batch = min(best_batch, time.perf_counter() - t0)

    counts = np.bincount(owners, minlength=num_servers)
    load_ratio = peak_to_average(counts.tolist())

    # Scale-down remap: full fleet -> 90% (capped into the valid range).
    n_down = max(1, int(num_servers * 0.9))
    owners_down = backend.owners_many(positions, n_down)
    measured_remap = remap_fraction(owners, owners_down)
    bound = float(migration_lower_bound(num_servers, n_down))
    expected = backend.expected_remap_fraction(num_servers, n_down)

    return {
        "backend": name,
        "placement": (
            "fast"
            if name == "proteus" and num_servers > exact_limit
            else "exact"
        ),
        "build_seconds": round(build_seconds, 4),
        "compile_seconds": round(compile_seconds, 4),
        "table_bytes": backend.table_bytes(num_servers),
        "owner_ops_per_s": round(len(scalar_positions) / best_scalar, 1),
        "owners_many_ops_per_s": round(len(positions) / best_batch, 1),
        "peak_to_average_load": round(float(load_ratio), 4),
        "scale_down": {
            "n_old": num_servers,
            "n_new": n_down,
            "remap_fraction": round(float(measured_remap), 5),
            "lower_bound": round(bound, 5),
            "expected_remap_fraction": (
                round(expected, 5) if expected is not None else None
            ),
        },
    }


def run(sizes: List[int], keys: int, rounds: int, exact_limit: int) -> Dict:
    results: List[Dict] = []
    for num_servers in sizes:
        num_keys = max(keys, 100 * num_servers)
        rng = np.random.RandomState(0)
        positions = rng.randint(
            0, DEFAULT_RING_SIZE, size=num_keys
        ).astype(np.int64)
        scalar_probes = min(num_keys, 20000)
        rows = [
            bench_backend(
                name, num_servers, positions, scalar_probes, rounds,
                exact_limit,
            )
            for name in BACKEND_NAMES
        ]
        results.extend(rows)

        noise_floor = 1.0 + 3.0 / np.sqrt(num_keys / num_servers)
        print(f"\nShootout, N={num_servers} ({num_keys} sampled keys, "
              f"load noise floor ~{noise_floor:.2f}):")
        print(fmt_row("backend", [r["backend"] for r in rows], width=14))
        print(fmt_row("build s", [r["build_seconds"] for r in rows], width=14))
        print(fmt_row("table KiB",
                      [round(r["table_bytes"] / 1024, 1) for r in rows],
                      width=14))
        print(fmt_row("owner ops/s",
                      [int(r["owner_ops_per_s"]) for r in rows], width=14))
        print(fmt_row("batch ops/s",
                      [int(r["owners_many_ops_per_s"]) for r in rows],
                      width=14))
        print(fmt_row("peak/avg",
                      [r["peak_to_average_load"] for r in rows], width=14))
        print(fmt_row("remap",
                      [r["scale_down"]["remap_fraction"] for r in rows],
                      width=14))
        print(fmt_row("remap bound",
                      [r["scale_down"]["lower_bound"] for r in rows],
                      width=14))

        # Gates: every backend routes correctly-bounded and near-minimal.
        for row in rows:
            down = row["scale_down"]
            assert down["remap_fraction"] >= down["lower_bound"] - 0.02, (
                f"{row['backend']} remap {down['remap_fraction']} "
                f"below the information-theoretic bound {down['lower_bound']}"
                " — measurement bug"
            )
            assert down["remap_fraction"] <= 3 * down["lower_bound"] + 0.05, (
                f"{row['backend']} remaps {down['remap_fraction']} on a 10% "
                f"scale-down (bound {down['lower_bound']}) — reshuffling"
            )

    report = {
        "ring_size": DEFAULT_RING_SIZE,
        "rounds": rounds,
        "sizes": sizes,
        "exact_limit": exact_limit,
        "measurement": "uniform sampled ring positions; owners_many batch; "
                       "scale-down to 90% of the fleet",
        "results": results,
    }
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--sizes", default="40,512,4096",
                        help="comma-separated fleet sizes")
    parser.add_argument("--keys", type=int, default=200000,
                        help="sampled keys (raised to 100*N if smaller)")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--exact-limit", type=int, default=512,
                        help="largest N using exact Fraction placement for "
                             "proteus (scaled-integer construction above)")
    parser.add_argument("--json", default=str(JSON_PATH),
                        help="output report path")
    args = parser.parse_args()
    sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
    report = run(sizes, args.keys, args.rounds, args.exact_limit)
    out = Path(args.json)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {out.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
