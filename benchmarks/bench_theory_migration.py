"""Section II objective — migration fractions vs the |Δn|/max(n,n') bound.

Regenerates the minimal-migration analysis as a table: for each single-step
transition, the theoretical lower bound, Proteus's measured remap fraction
(should meet the bound), the Consistent baseline (near the bound but with
worse balance), and Naive (catastrophic, the Reddit incident).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.core.migration import (
    empirical_remap_fraction,
    migration_lower_bound,
    naive_remap_fraction,
)
from repro.core.router import ConsistentRouter, NaiveRouter, ProteusRouter

N = 10
SAMPLES = 6000
TRANSITIONS = [(10, 9), (9, 8), (7, 6), (5, 4), (3, 2), (4, 5), (8, 10)]


def measure_all():
    proteus = ProteusRouter(N)
    naive = NaiveRouter(N)
    consistent = ConsistentRouter.quadratic_variant(N)
    rows = []
    for n_old, n_new in TRANSITIONS:
        rows.append({
            "transition": f"{n_old}->{n_new}",
            "bound": float(migration_lower_bound(n_old, n_new)),
            "proteus": empirical_remap_fraction(proteus, n_old, n_new, SAMPLES),
            "consistent": empirical_remap_fraction(consistent, n_old, n_new, SAMPLES),
            "naive": empirical_remap_fraction(naive, n_old, n_new, SAMPLES),
            "naive_exact": float(naive_remap_fraction(n_old, n_new)),
        })
    return rows


def test_migration_fractions(benchmark):
    rows = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print("\nMigration — remapped key fraction per transition:")
    header = ["bound", "Proteus", "Cons.", "Naive", "Naive-th"]
    print(fmt_row("transition", header, width=9))
    for row in rows:
        print(fmt_row(
            row["transition"],
            [round(row["bound"], 3), round(row["proteus"], 3),
             round(row["consistent"], 3), round(row["naive"], 3),
             round(row["naive_exact"], 3)],
            width=9,
        ))
    for row in rows:
        # Proteus meets the lower bound (within sampling error).
        assert row["proteus"] == pytest.approx(row["bound"], abs=0.02)
        # Naive matches its closed form and is far above the bound.
        assert row["naive"] == pytest.approx(row["naive_exact"], abs=0.02)
        assert row["naive"] > 1.8 * row["bound"]
        # Random consistent hashing is near the bound too (that is its
        # virtue); Proteus's win over it is balance, not migration volume.
        assert row["consistent"] < 2.5 * row["bound"]
