"""Fig. 11 — total energy per scenario, whole cluster and cache tier.

Paper: "with Proteus, we are able to save roughly 10% energy over the
entire cluster, and 23% over the cache cluster without delay penalty",
with Naive and Consistent saving about the same amount (but with spikes).
Exact percentages depend on the schedule's depth (how far n(t) dips); the
reproduction asserts the two-level structure and the scenario equivalence.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row

ORDER = ["Static", "Naive", "Consistent", "Proteus"]


def extract(reports):
    return {name: dict(reports[name].energy_kwh) for name in ORDER}


def test_fig11_total_energy(benchmark, scenario_reports, paper_schedule):
    energy = benchmark.pedantic(
        extract, args=(scenario_reports,), rounds=1, iterations=1
    )
    print("\nFig. 11 — energy (kWh), whole cluster / cache tier:")
    print(fmt_row("scenario", ["total", "cache", "web", "db"], width=10))
    for name in ORDER:
        e = energy[name]
        print(fmt_row(
            name,
            [round(e["total"], 4), round(e["cache"], 4),
             round(e["web"], 4), round(e["database"], 4)],
            width=10,
        ))
    static = energy["Static"]
    proteus = energy["Proteus"]
    total_saving = 1 - proteus["total"] / static["total"]
    cache_saving = 1 - proteus["cache"] / static["cache"]
    # The ideal cache-tier saving implied by the schedule itself:
    ideal = 1 - paper_schedule.server_slot_total() / (
        8 * paper_schedule.num_slots
    )
    print(f"  Proteus saving: total {total_saving:.1%} (paper ~10%), "
          f"cache tier {cache_saving:.1%} (paper ~23%); "
          f"schedule-ideal cache saving {ideal:.1%}")

    # Structure of the result, not the testbed's exact percentages:
    assert 0.04 < total_saving < 0.30
    assert 0.10 < cache_saving < 0.45
    assert cache_saving > total_saving
    # Cache saving approaches the schedule's ideal (TTL keeps servers on a
    # little longer, so it lands just below it).
    assert cache_saving <= ideal + 0.02
    assert cache_saving > ideal - 0.15
    # Naive/Consistent/Proteus all save about the same total energy.
    for name in ("Naive", "Consistent"):
        assert energy[name]["total"] == pytest.approx(
            proteus["total"], rel=0.06
        )
