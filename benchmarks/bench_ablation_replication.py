"""Ablation — what r-way replication (Section III-E) buys on server crashes.

The paper proposes r replica rings for fault tolerance and derives the
no-conflict probability (Eq. 3) but does not evaluate crashes.  We do: warm
a cluster, crash one server, and measure how many of the next reads fall
through to the database, for r = 1, 2, 3.  With r=1 every key owned by the
dead server is a DB read; with r>=2 only keys whose replicas *collided*
onto the dead server (≈ (r-1)/n of its keys, per Eq. 3) are lost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.replication import ReplicatedProteusRouter, no_conflict_probability
from repro.database.cluster import DatabaseCluster
from repro.web.replicated import ReplicatedWebServer

CFG = optimal_config(5000)
N = 8
KEYS = 1200
REPLICAS = [1, 2, 3]


def run_crash(replicas: int) -> dict:
    cache = CacheCluster(
        ReplicatedProteusRouter(N, replicas=replicas, ring_size=2 ** 24),
        capacity_bytes=4096 * 5000, ttl=60.0, bloom_config=CFG,
    )
    db = DatabaseCluster(4)
    web = ReplicatedWebServer(0, cache, db)
    t = 0.0
    keys = [f"page:{i}" for i in range(KEYS)]
    for key in keys:
        web.fetch(key, t)
        t += 0.01
    victim = 0
    victim_keys = sum(1 for k in keys if cache.router.route(k, N) == victim)
    db_before = db.total_requests()
    cache.fail_server(victim, now=t)
    for key in keys:
        web.fetch(key, t + 1.0)
        t += 0.01
    return {
        "db_reads": db.total_requests() - db_before,
        "victim_keys": victim_keys,
        "failovers": web.failovers,
    }


def test_ablation_replication(benchmark):
    results = benchmark.pedantic(
        lambda: {r: run_crash(r) for r in REPLICAS}, rounds=1, iterations=1
    )
    print(f"\nAblation — DB reads after crashing 1 of {N} servers "
          f"({KEYS} hot keys re-read):")
    print(fmt_row("replicas", ["db_reads", "victim_keys", "failovers"], width=12))
    for r, row in results.items():
        print(fmt_row(f"r={r}", [row["db_reads"], row["victim_keys"],
                                 row["failovers"]], width=12))
    print("  Eq. 3 no-conflict probability at n=8: "
          + ", ".join(f"r={r}: {no_conflict_probability(r, N):.3f}"
                      for r in REPLICAS))

    # r=1: every victim-owned key becomes a DB read.
    assert results[1]["db_reads"] == results[1]["victim_keys"]
    assert results[1]["failovers"] == 0
    # r=2: most victim keys fail over to their replica.
    assert results[2]["db_reads"] < results[1]["db_reads"] * 0.4
    assert results[2]["failovers"] > 0
    # r=3: virtually nothing reaches the DB.
    assert results[3]["db_reads"] <= results[2]["db_reads"]
    assert results[3]["db_reads"] < KEYS * 0.02
