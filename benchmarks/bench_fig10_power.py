"""Fig. 10 — whole-cluster power draw over time, four scenarios.

Paper: PDU samples every 15 s over web + cache + DB tiers.  Static draws
roughly constant power (slightly decreasing with load); the three
provisioned scenarios step down with n(t) and save visibly during the
valley.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row

ORDER = ["Static", "Naive", "Consistent", "Proteus"]
PRINT_POINTS = 12


def downsample(series, points):
    if len(series) <= points:
        return list(series.values)
    stride = len(series) // points
    return [series.values[i * stride] for i in range(points)]


def extract(reports):
    return {name: reports[name].power_series["total"] for name in ORDER}


def test_fig10_power_over_time(benchmark, scenario_reports):
    series = benchmark.pedantic(
        extract, args=(scenario_reports,), rounds=1, iterations=1
    )
    print("\nFig. 10 — total cluster power (W), downsampled:")
    for name in ORDER:
        samples = [round(v) for v in downsample(series[name], PRINT_POINTS)]
        print(fmt_row(name, samples))

    static = series["Static"].values
    proteus = series["Proteus"].values
    # Static's draw stays in a narrow band.
    assert max(static) - min(static) < 0.25 * max(static)
    # The provisioned scenarios dip well below Static at the valley.
    for name in ("Naive", "Consistent", "Proteus"):
        assert min(series[name].values) < min(static) * 0.97
    # Power tracks n(t): valley of Proteus's power aligns with min servers.
    active = scenario_reports["Proteus"].active_series
    valley_time = proteus.index(min(proteus))
    assert active.values[valley_time] <= min(active.values) + 1
