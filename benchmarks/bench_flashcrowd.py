"""Flash crowd — an unplanned load surge hits mid-valley.

The paper's diurnal workload changes slowly; a flash crowd is the stress
case for the *actuator*: the controller orders an emergency scale-up and
the question is what the scale-up itself costs.  Naive's abrupt scale-up
remaps most keys at the worst possible moment (peak load); Proteus's
scale-up pulls remapped keys from the ceding owners and touches the DB no
more than Static does.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.experiments.cluster import ClusterExperiment, ExperimentConfig, ScenarioSpec
from repro.provisioning.policies import ProvisioningSchedule


def build_config():
    # Valley at n=3, then the crowd arrives: users triple, controller
    # reacts with +2 servers next slot, +1 after.
    schedule = ProvisioningSchedule(60.0, [3, 3, 5, 6, 6, 5])
    users = [50, 50, 150, 150, 150, 100]
    return ExperimentConfig(
        schedule=schedule,
        users_per_slot=users,
        num_cache_servers=6,
        num_web_servers=3,
        num_db_shards=3,
        catalogue_size=8000,
        cache_capacity_bytes=4096 * 2500,
        ttl=40.0,
        plot_slots=24,
        seed=77,
        warmup_seconds=15.0,
    )


def run_all():
    config = build_config()
    return {
        spec.name: ClusterExperiment(spec, config).run()
        for spec in (ScenarioSpec.static(), ScenarioSpec.naive(),
                     ScenarioSpec.proteus())
    }


def test_flash_crowd_scale_up(benchmark):
    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\nFlash crowd — users 50 -> 150 at t=120 s, fleet 3 -> 6:")
    print(fmt_row("scenario", ["peak p99", "db reads", "hit"], width=10))
    for name, report in reports.items():
        print(fmt_row(
            name,
            [round(report.peak_latency(99.0), 3), report.db_requests,
             round(report.hit_ratio, 3)],
            width=10,
        ))

    static = reports["Static"]
    naive = reports["Naive"]
    proteus = reports["Proteus"]
    # The crowd itself costs something everywhere (new users = new pages),
    # but Naive pays the remap on top.
    assert naive.db_requests > 1.2 * proteus.db_requests
    assert proteus.peak_latency(99.0) <= naive.peak_latency(99.0)
    # Proteus's surge cost stays comparable to Static's (no remap penalty).
    assert proteus.db_requests < 1.6 * static.db_requests
