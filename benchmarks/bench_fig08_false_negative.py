"""Fig. 8 — counting-Bloom-filter false-negative rate vs filter size.

Paper: false negatives come *only* from counter overflow followed by
deletion (Section IV-B).  We provoke them the same way: insert kappa keys
into narrow (b=2) counters, delete half the keys, probe the survivors, and
sweep the filter size.  Small filters saturate and lose survivors; at
512 KB the rate is negligible — the paper's operating point.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.counting import CountingBloomFilter

SIZES_KB = [4, 8, 16, 32, 64, 128, 256, 512]
KAPPAS = [20_000, 50_000, 100_000]
COUNTER_BITS = 2  # narrow on purpose: overflow is the phenomenon under test
HASHES = 4


def measure(kappa: int, size_kb: int) -> float:
    num_counters = max(1, size_kb * 1024 * 8 // COUNTER_BITS)
    cbf = CountingBloomFilter(num_counters, COUNTER_BITS, HASHES, strict=False)
    keys = [f"k:{kappa}:{i}" for i in range(kappa)]
    cbf.update(keys)
    for key in keys[: kappa // 2]:
        cbf.remove(key)
    survivors = keys[kappa // 2:]
    false_negatives = sum(1 for key in survivors if key not in cbf)
    return false_negatives / len(survivors)


def sweep():
    return {
        kappa: [measure(kappa, size) for size in SIZES_KB] for kappa in KAPPAS
    }


def test_fig08_false_negative_vs_size(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFig. 8 — false negative rate vs Bloom filter size "
          f"(h={HASHES}, b={COUNTER_BITS}, half the keys deleted):")
    print(fmt_row("size KB", SIZES_KB))
    for kappa, rates in results.items():
        print(fmt_row(f"{kappa // 1000}k keys", [round(r, 4) for r in rates]))

    for kappa, rates in results.items():
        # Small filters overflow -> false negatives; big filters don't.
        assert rates[0] > rates[-1]
        assert rates[-1] < 1e-3  # negligible at 512 KB (paper's setting)
    # Heavier key sets need more memory for the same rate.
    assert results[100_000][2] >= results[20_000][2]
