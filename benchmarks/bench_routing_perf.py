"""Microbenchmark — routing and digest-probe throughput, scalar vs. batch.

Section I objective 3 requires the load-distribution decision to be
*efficient*: it runs on every web request.  This bench measures, for each
Table II router:

* single-key ``route()`` throughput (the compiled-table fast path);
* batched ``route_many()`` throughput (one vectorized ``searchsorted``);
* the *legacy* Proteus route — a fresh salted blake2b per call plus
  ``HashRing.lookup`` with a per-call ``is_active`` lambda, exactly the
  pre-compiled-table hot path — as the speedup baseline;
* digest probes: scalar ``key in filter`` vs. ``contains_many``.

All routing rows are *steady-state*: the compiled-table cache and the
salted-hash memo are warmed first, because the web tier routes the same hot
keys repeatedly (Zipf traffic is what makes a memory cache worth running).
The legacy baseline re-hashes and re-scans per call — that is exactly what
it did in production.  The gated contenders are timed round-robin
(:func:`_interleaved_best`) so CPU-frequency drift cannot land on one side
of a speedup ratio.

Results are printed as figure-style tables and written to
``BENCH_routing.json`` (ops/s per router, scalar vs. batch) so the perf
trajectory is tracked across PRs.  ``PROTEUS_BENCH_ROUNDS`` (default 3)
sets the timing rounds; ``make bench-smoke`` runs with 1.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.counting import CountingBloomFilter
from repro.core.ring import prefix_active
from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
)

KEYS = [f"page:{i}" for i in range(2000)]
ROUNDS = max(1, int(os.environ.get("PROTEUS_BENCH_ROUNDS", "3")))
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_routing.json"

#: Acceptance gates (vs. the legacy per-call path, Proteus at N=40).
MIN_SCALAR_SPEEDUP = 5.0
MIN_BATCH_SPEEDUP = 20.0


def _best_seconds(func, *args) -> float:
    """Minimum wall time of ``func(*args)`` over ``ROUNDS`` rounds."""
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _interleaved_best(callables):
    """Best-of-``ROUNDS`` wall time per callable, measured round-robin.

    The speedup gates are *ratios*; measuring the contenders in separate
    phases lets CPU-frequency drift or neighbor load land on one side of
    the ratio only.  Round-robin interleaving spreads any drift across all
    contenders, so the ratios stay stable even when absolute numbers move.
    """
    best = [float("inf")] * len(callables)
    for _ in range(ROUNDS):
        for index, func in enumerate(callables):
            start = time.perf_counter()
            func()
            best[index] = min(best[index], time.perf_counter() - start)
    return best


# ------------------------------------------------------- the legacy baseline


def _legacy_hash64(key: str, salt: int = 0) -> int:
    # The pre-optimization stable_hash64: a fresh blake2b (salted parameter
    # block re-parsed) per call.
    data = key if isinstance(key, bytes) else key.encode("utf-8")
    digest = hashlib.blake2b(
        data, digest_size=8, salt=salt.to_bytes(8, "little")
    )
    return int.from_bytes(digest.digest(), "little")


def _legacy_ring_position(key: str, ring_size: int, replica: int = 0) -> int:
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    return _legacy_hash64(key, salt=0x100 + replica) % ring_size


def _legacy_route_all(ring, num_active: int, num_servers: int) -> None:
    # The pre-compiled-table ProteusRouter.route, verbatim: active check,
    # fresh salted hash, then HashRing.lookup with a per-call activity
    # lambda resolving the inactive-skip chain.
    for key in KEYS:
        if not 1 <= num_active <= num_servers:
            raise ValueError(num_active)
        ring.lookup(
            _legacy_ring_position(key, ring.size), prefix_active(num_active)
        )


def _route_all(router, num_active: int) -> None:
    route = router.route
    for key in KEYS:
        route(key, num_active)


def _routers(n_servers: int):
    return {
        "Static": StaticRouter(n_servers),
        "Naive": NaiveRouter(n_servers),
        "Consistent": ConsistentRouter.quadratic_variant(n_servers),
        "Proteus": ProteusRouter(n_servers),
    }


@pytest.mark.parametrize("n_servers,n_active", [(10, 7), (40, 25)])
def test_routing_throughput(benchmark, n_servers, n_active):
    routers = _routers(n_servers)
    for router in routers.values():
        # Warm the compiled-table cache and the salted-hash memo: the bench
        # measures steady-state throughput over a hot working set, the web
        # tier's operating point.
        router.route_many(KEYS, n_active)
    names = list(routers)
    timings = _interleaved_best(
        [
            lambda: _legacy_route_all(
                routers["Proteus"].ring, n_active, n_servers
            )
        ]
        + [
            (lambda r=router: _route_all(r, n_active))
            for router in routers.values()
        ]
        + [
            (lambda r=router: r.route_many(KEYS, n_active))
            for router in routers.values()
        ]
    )
    legacy_ops = len(KEYS) / timings[0]
    scalar_ops = {
        name: len(KEYS) / seconds
        for name, seconds in zip(names, timings[1 : 1 + len(names)])
    }
    batch_ops = {
        name: len(KEYS) / seconds
        for name, seconds in zip(names, timings[1 + len(names) :])
    }
    # The pytest-benchmark-tracked number: Proteus, the paper's router.
    benchmark.pedantic(
        _route_all, args=(routers["Proteus"], n_active), rounds=ROUNDS,
        iterations=1,
    )
    print(f"\nRouting throughput, N={n_servers}, n={n_active} "
          f"(single-threaded calls/s):")
    print(fmt_row("router", list(scalar_ops), width=12))
    print(fmt_row("route ops/s", [int(v) for v in scalar_ops.values()], width=12))
    print(fmt_row("batch ops/s", [int(v) for v in batch_ops.values()], width=12))
    print(fmt_row("legacy", [int(legacy_ops)], width=12))

    # Proteus must stay within ~10x of the modulo hash (both are dominated
    # by the blake2b key hash at these fleet sizes).
    assert scalar_ops["Proteus"] > scalar_ops["Naive"] / 10.0

    if n_servers == 40:
        scalar_speedup = scalar_ops["Proteus"] / legacy_ops
        batch_speedup = batch_ops["Proteus"] / legacy_ops
        print(fmt_row("speedup", [round(scalar_speedup, 1),
                                  round(batch_speedup, 1)], width=12))
        assert scalar_speedup >= MIN_SCALAR_SPEEDUP, (
            f"compiled scalar route() is only {scalar_speedup:.1f}x the "
            f"legacy path (need >= {MIN_SCALAR_SPEEDUP}x)"
        )
        assert batch_speedup >= MIN_BATCH_SPEEDUP, (
            f"route_many is only {batch_speedup:.1f}x the legacy path "
            f"(need >= {MIN_BATCH_SPEEDUP}x)"
        )
        _write_report(n_servers, n_active, scalar_ops, batch_ops, legacy_ops)


def _digest_throughput():
    digest = CountingBloomFilter(num_counters=2 ** 16, counter_bits=4,
                                 num_hashes=4)
    digest.add_many(KEYS[::2])

    def scalar_probe_all():
        for key in KEYS:
            key in digest

    scalar_ops = len(KEYS) / _best_seconds(scalar_probe_all)
    batch_ops = len(KEYS) / _best_seconds(digest.contains_many, KEYS)
    return scalar_ops, batch_ops


def test_digest_probe_throughput():
    scalar_ops, batch_ops = _digest_throughput()
    print("\nDigest probe throughput (counting filter, l=2^16, h=4):")
    print(fmt_row("mode", ["scalar", "batch"], width=12))
    print(fmt_row("probe ops/s", [int(scalar_ops), int(batch_ops)], width=12))
    # The batch path must never regress below the scalar loop.
    assert batch_ops > scalar_ops


def _write_report(n_servers, n_active, scalar_ops, batch_ops, legacy_ops):
    digest_scalar, digest_batch = _digest_throughput()
    report = {
        "n_servers": n_servers,
        "n_active": n_active,
        "num_keys": len(KEYS),
        "rounds": ROUNDS,
        "measurement": "steady-state (warm compiled tables + hash memo), "
                       "interleaved best-of-rounds",
        "routers": {
            name: {
                "route_ops_per_s": round(scalar_ops[name], 1),
                "route_many_ops_per_s": round(batch_ops[name], 1),
            }
            for name in scalar_ops
        },
        "legacy_proteus_route_ops_per_s": round(legacy_ops, 1),
        "digest_probe": {
            "scalar_ops_per_s": round(digest_scalar, 1),
            "batch_ops_per_s": round(digest_batch, 1),
        },
        "speedup_vs_legacy": {
            "proteus_route": round(scalar_ops["Proteus"] / legacy_ops, 2),
            "proteus_route_many": round(batch_ops["Proteus"] / legacy_ops, 2),
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {JSON_PATH.name}")
