"""Microbenchmark — routing throughput of the four scenarios.

Section I objective 3 requires the load-distribution decision to be
*efficient*: it runs on every web request.  This bench measures single-key
route() throughput for each router at the paper's fleet size (N=10) and at
N=40, and asserts Proteus stays within an order of magnitude of the plain
modulo hash — its lookup is one bisect over ~N²/2 positions plus the hash.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
)

KEYS = [f"page:{i}" for i in range(2000)]


def route_all(router, num_active):
    for key in KEYS:
        router.route(key, num_active)


@pytest.mark.parametrize("n_servers,n_active", [(10, 7), (40, 25)])
def test_routing_throughput(benchmark, n_servers, n_active):
    routers = {
        "Static": StaticRouter(n_servers),
        "Naive": NaiveRouter(n_servers),
        "Consistent": ConsistentRouter.quadratic_variant(n_servers),
        "Proteus": ProteusRouter(n_servers),
    }
    timings = {}
    import time

    for name, router in routers.items():
        start = time.perf_counter()
        route_all(router, n_active)
        timings[name] = time.perf_counter() - start
    # The pytest-benchmark-tracked number: Proteus, the paper's router.
    benchmark.pedantic(
        route_all, args=(routers["Proteus"], n_active), rounds=3, iterations=1
    )
    ops = {name: len(KEYS) / t for name, t in timings.items()}
    print(f"\nRouting throughput, N={n_servers}, n={n_active} "
          f"(single-threaded route() calls/s):")
    print(fmt_row("router", list(ops), width=12))
    print(fmt_row("ops/s", [int(v) for v in ops.values()], width=12))

    # Proteus must stay within ~10x of the modulo hash (both are dominated
    # by the blake2b key hash at these fleet sizes).
    assert ops["Proteus"] > ops["Naive"] / 10.0
