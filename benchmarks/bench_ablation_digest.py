"""Ablation — what the counting-Bloom-filter digest buys Algorithm 2.

Compares three transition strategies on the same scale-down:

* ``digest``      — Algorithm 2 as published (check digest, then old server);
* ``always-old``  — skip the digest, always try the old server on a miss
  (wastes a cache round trip on every cold key, but finds all hot data);
* ``straight-db`` — never consult the old server (the Consistent scenario's
  behaviour): every remapped key pays a database read.

The digest matches always-old on DB pressure while sending (near) zero
wasted probes — quantifying Section IV-A's "no bandwidth and computational
resources are wasted".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.web.frontend import FetchPath, WebServer

CFG = optimal_config(5000)
WARM_KEYS = 600
COLD_KEYS = 300


def run_strategy(strategy: str):
    cache = CacheCluster(
        ProteusRouter(6, ring_size=2 ** 24), capacity_bytes=4096 * 5000,
        initial_active=6, ttl=120.0, bloom_config=CFG,
    )
    db = DatabaseCluster(3)
    web = WebServer(0, cache, db)
    t = 0.0
    warm = [f"page:{i}" for i in range(WARM_KEYS)]
    for key in warm:
        web.fetch(key, t)
        t += 0.01
    db_before = db.total_requests()
    transition = cache.scale_to(5, now=t)
    if strategy == "straight-db":
        transition.digests.clear()  # no digest -> Algorithm 2 skips the old server
    elif strategy == "always-old":
        from repro.bloom.bloom import BloomFilter

        lying = BloomFilter(8, num_hashes=1)
        lying._bits = bytearray(b"\xff")
        for server in list(transition.digests):
            transition.digests[server] = lying
    # Touch all warm keys plus some cold ones during the window.
    cold = [f"cold:{i}" for i in range(COLD_KEYS)]
    old_probes = 0
    for key in warm + cold:
        result = web.fetch(key, t)
        if result.path in (FetchPath.HIT_OLD, FetchPath.FALSE_POSITIVE_DB):
            old_probes += 1
        t += 0.01
    return {
        "db_reads": db.total_requests() - db_before,
        "old_probes": old_probes,
        "hit_old": web.stats.counts[FetchPath.HIT_OLD],
        "false_pos": web.stats.counts[FetchPath.FALSE_POSITIVE_DB],
    }


def test_ablation_digest_value(benchmark):
    results = benchmark.pedantic(
        lambda: {s: run_strategy(s) for s in ("digest", "always-old", "straight-db")},
        rounds=1, iterations=1,
    )
    print("\nAblation — transition strategy vs DB pressure and wasted probes")
    print(f"  ({WARM_KEYS} hot + {COLD_KEYS} cold keys touched during the window):")
    print(fmt_row("strategy", ["db_reads", "old_probes", "hit_old", "false_pos"], width=11))
    for name, row in results.items():
        print(fmt_row(name, [row["db_reads"], row["old_probes"],
                             row["hit_old"], row["false_pos"]], width=11))

    digest, always, straight = (
        results["digest"], results["always-old"], results["straight-db"]
    )
    # Digest and always-old find the same hot data (same DB pressure)...
    assert digest["db_reads"] == always["db_reads"]
    # ...but the digest wastes (near) zero probes on cold keys, while
    # always-old probes every remapped cold key (~1/6 of them here).
    assert digest["false_pos"] <= 2
    assert always["false_pos"] >= COLD_KEYS // 12
    # Without the old-server path, every remapped hot key hits the DB.
    assert straight["db_reads"] > digest["db_reads"] + WARM_KEYS // 12
    assert straight["hit_old"] == 0
