"""Ablation — eviction policy and allocator overhead on the Fig. 6 curve.

The paper's hit-ratio experiment (Fig. 6) uses memcached's LRU.  Two
questions a deployment would ask on top:

1. how much of the curve is the *policy* — LRU vs CLOCK (its cheap
   approximation), SLRU (scan-resistant), FIFO, and random;
2. how much capacity the slab allocator's chunk rounding eats (the
   effective-capacity gap between payload bytes and chunk bytes).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.cache.slabs import SlabAllocator
from repro.experiments.hitratio import simulate_hit_ratio

POLICIES = ["lru", "clock", "slru", "fifo", "random"]
CAPACITY_PAGES = 2000
ITEM = 4096


def sweep(trace):
    return {
        policy: simulate_hit_ratio(
            trace, CAPACITY_PAGES * ITEM, item_size=ITEM, eviction=policy
        ).hit_ratio
        for policy in POLICIES
    }


def test_ablation_eviction_policy(benchmark, wikipedia_trace):
    ratios = benchmark.pedantic(
        sweep, args=(wikipedia_trace,), rounds=1, iterations=1
    )
    print(f"\nAblation — hit ratio by eviction policy "
          f"({CAPACITY_PAGES} pages of cache):")
    print(fmt_row("policy", POLICIES, width=9))
    print(fmt_row("hit ratio", [round(ratios[p], 3) for p in POLICIES], width=9))

    # Recency-aware policies beat FIFO/random on a Zipf trace; CLOCK tracks
    # LRU closely (it is LRU's O(1) approximation).
    assert ratios["lru"] > ratios["random"] - 0.01
    assert ratios["clock"] == pytest.approx(ratios["lru"], abs=0.05)
    assert ratios["slru"] >= ratios["fifo"] - 0.02


def test_ablation_slab_overhead(benchmark):
    def measure():
        allocator = SlabAllocator(64 << 20, min_chunk=96, growth=1.25)
        # Wikipedia-ish size mix: many small fragments, some full pages.
        sizes = [200, 700, 1500, 2500, 3600, 4096]
        return {
            size: allocator.overhead_factor(size) for size in sizes
        }

    overheads = benchmark.pedantic(measure, rounds=3, iterations=1)
    print("\nAblation — slab chunk overhead by item size (growth 1.25):")
    print(fmt_row("size B", list(overheads), width=8))
    print(fmt_row("factor", [round(v, 3) for v in overheads.values()], width=8))
    # The geometric ladder bounds waste by the growth factor.
    assert all(1.0 <= factor <= 1.25 + 1e-9 for factor in overheads.values())
