"""Fig. 6 — hit ratio vs per-server cache size.

Paper: replaying the Wikipedia trace, "when each Memcached server uses 1GB
memory (with 4KB data per page), the hit ratio reaches above 80%".  We
sweep cache capacity over the synthetic trace; the catalogue is scaled down,
so the x-axis is capacity as a *fraction of the working set* — the 80%
crossing should appear when the cache holds roughly a quarter to a half of
the distinct pages, as it does in the paper (2.56 M pages cached of ~11 M
English articles).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.experiments.hitratio import sweep_cache_sizes

ITEM = 4096
#: capacities in pages; the trace's catalogue is 30k pages.
CAPACITY_PAGES = [250, 500, 1000, 2000, 4000, 8000, 16_000, 30_000]


def test_fig06_hit_ratio_vs_cache_size(benchmark, wikipedia_trace):
    points = benchmark.pedantic(
        sweep_cache_sizes,
        args=(wikipedia_trace, [p * ITEM for p in CAPACITY_PAGES]),
        kwargs={"item_size": ITEM},
        rounds=1, iterations=1,
    )
    distinct = points[0].distinct_keys
    print("\nFig. 6 — hit ratio vs cache size (catalogue "
          f"{distinct} distinct pages touched):")
    print(fmt_row("pages", CAPACITY_PAGES))
    print(fmt_row("cap/workset", [round(p / distinct, 2) for p in CAPACITY_PAGES]))
    print(fmt_row("hit ratio", [round(p.hit_ratio, 3) for p in points]))

    ratios = [p.hit_ratio for p in points]
    # Monotone-increasing sweep that saturates.
    assert all(a <= b + 0.02 for a, b in zip(ratios, ratios[1:]))
    # The paper's ">80% once a sizeable fraction of the hot set fits".
    assert ratios[-1] > 0.8
    assert ratios[0] < ratios[-1] - 0.15
