"""Fig. 7 — counting-Bloom-filter false-positive rate vs filter size.

Paper: with 4 non-cryptographic hash functions, sweep the filter's memory;
curves for several key-set sizes; 512 KB is "negligible" for their ~2.56 M
hot pages scaled setting.  We insert kappa keys, probe absent keys, and
report the measured rate next to the Eq. 4 prediction.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import false_positive_rate
from repro.bloom.counting import CountingBloomFilter

#: filter sizes in KB of counter memory (b=4 bits per counter).
SIZES_KB = [16, 32, 64, 128, 256, 512]
KAPPAS = [20_000, 50_000, 100_000]
COUNTER_BITS = 4
HASHES = 4
PROBES = 20_000


def measure(kappa: int, size_kb: int) -> float:
    num_counters = size_kb * 1024 * 8 // COUNTER_BITS
    cbf = CountingBloomFilter(num_counters, COUNTER_BITS, HASHES)
    for i in range(kappa):
        cbf.add(f"in:{kappa}:{i}")
    false_hits = sum(
        1 for i in range(PROBES) if f"out:{kappa}:{i}" in cbf
    )
    return false_hits / PROBES


def sweep():
    return {
        kappa: [measure(kappa, size) for size in SIZES_KB] for kappa in KAPPAS
    }


def test_fig07_false_positive_vs_size(benchmark):
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nFig. 7 — false positive rate vs Bloom filter size "
          f"(h={HASHES}, b={COUNTER_BITS}):")
    print(fmt_row("size KB", SIZES_KB))
    for kappa, rates in results.items():
        print(fmt_row(f"{kappa // 1000}k keys", [round(r, 4) for r in rates]))
        predicted = [
            false_positive_rate(kb * 1024 * 8 // COUNTER_BITS, kappa, HASHES)
            for kb in SIZES_KB
        ]
        print(fmt_row("  eq.4", [round(p, 4) for p in predicted]))

    for kappa, rates in results.items():
        # Monotone decreasing in size; negligible at 512 KB for the smaller
        # key sets (the paper's conclusion).
        assert all(a >= b - 0.002 for a, b in zip(rates, rates[1:]))
        predicted_512 = false_positive_rate(
            512 * 1024 * 8 // COUNTER_BITS, kappa, HASHES
        )
        assert rates[-1] == pytest.approx(predicted_512, abs=0.01)
    assert results[20_000][-1] < 1e-3
