"""Ablation — on-demand vs push-assisted migration (extension).

The paper's Algorithm 2 migrates hot data purely on demand; keys whose
revisit interval exceeds the TTL are lost at power-off and refetched from
the DB later (`bench_ablation_ttl`).  The :class:`BackgroundMigrator`
pushes moving keys during the window.  This ablation measures the trade on
a workload where only *half* the hot set gets touched during the window:

* residual DB reads after power-off (what the push buys);
* bytes pushed (what it costs);
* redundant pushes avoided because the on-demand path got there first.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.bloom.config import optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.provisioning.migrator import BackgroundMigrator
from repro.sim.events import EventLoop
from repro.sim.latency import Constant
from repro.web.frontend import WebServer

CFG = optimal_config(5000)
TTL = 15.0
KEYS = 600


def run(push: bool) -> dict:
    cache = CacheCluster(
        ProteusRouter(5, ring_size=2 ** 24), capacity_bytes=4096 * 5000,
        ttl=TTL, bloom_config=CFG,
    )
    db = DatabaseCluster(3, service_model=Constant(0.002))
    web = WebServer(0, cache, db)
    loop = EventLoop()
    keys = [f"page:{i}" for i in range(KEYS)]
    t = 0.0
    for key in keys:
        web.fetch(key, t)
        t += 0.01
    loop.run_until(t)
    transition = cache.scale_to(4, now=t)
    migrator = None
    if push:
        migrator = BackgroundMigrator(
            cache, transition, batch_size=20, interval=0.5
        )
        migrator.install(loop)
    # During the window only the first half of the hot set is touched.
    touch_until = t + TTL - 1.0
    when = t + 0.5
    index = 0
    touched = keys[: KEYS // 2]
    while when < touch_until:
        web.fetch(touched[index % len(touched)], when)
        index += 1
        when += 0.02
    loop.run_until(transition.deadline + 0.1)
    cache.finalize_expired(transition.deadline + 0.1)
    # After power-off, the whole hot set is requested again.
    db_before = db.total_requests()
    late = transition.deadline + 1.0
    for key in keys:
        web.fetch(key, late)
    return {
        "residual_db": db.total_requests() - db_before,
        "pushed": migrator.progress.pushed if migrator else 0,
        "bytes_kb": (migrator.progress.bytes_pushed // 1024) if migrator else 0,
        "skipped": migrator.progress.skipped_present if migrator else 0,
    }


def test_ablation_push_migration(benchmark):
    results = benchmark.pedantic(
        lambda: {"on-demand": run(False), "push-assisted": run(True)},
        rounds=1, iterations=1,
    )
    print(f"\nAblation — on-demand vs push-assisted migration "
          f"(TTL {TTL:.0f}s, half the hot set untouched during the window):")
    print(fmt_row("variant", ["residual_db", "pushed", "KB", "skipped"], width=12))
    for name, row in results.items():
        print(fmt_row(name, [row["residual_db"], row["pushed"],
                             row["bytes_kb"], row["skipped"]], width=12))

    on_demand, push = results["on-demand"], results["push-assisted"]
    # The untouched half of the moving keys is lost without the pusher...
    assert on_demand["residual_db"] > 0
    # ...and (almost) fully rescued with it, at a bounded bandwidth cost.
    assert push["residual_db"] < on_demand["residual_db"] * 0.2
    assert push["pushed"] > 0
    assert push["bytes_kb"] <= KEYS * 4  # at most the moving set, once
