"""Fig. 5 — load balancing under dynamics: min/max load ratio per slot.

Paper: replays the real Wikipedia trace through each scenario's routing
under the recorded provisioning series and plots min(load)/max(load) over
active servers.  Result: Proteus ~ Static ~ Naive, both far above random
consistent hashing with O(log n) vnodes; the n^2/2 variant sits in between.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    StaticRouter,
)
from repro.experiments.loadbalance import compare_routers
from repro.provisioning.policies import ProvisioningSchedule

NUM_SERVERS = 10
NUM_SLOTS = 12


def build_routers():
    return [
        StaticRouter(NUM_SERVERS),
        NaiveRouter(NUM_SERVERS),
        ConsistentRouter.log_variant(NUM_SERVERS),        # O(log n) vnodes
        ConsistentRouter.quadratic_variant(NUM_SERVERS),  # n^2/2 vnodes
        ProteusRouter(NUM_SERVERS),
    ]


def test_fig05_load_balancing(benchmark, wikipedia_trace):
    duration = wikipedia_trace[-1].time
    schedule = ProvisioningSchedule(
        duration / NUM_SLOTS, [8, 7, 6, 5, 4, 4, 5, 6, 7, 8, 8, 7]
    )
    routers = build_routers()

    results = benchmark.pedantic(
        compare_routers, args=(routers, wikipedia_trace, schedule),
        rounds=1, iterations=1,
    )
    labels = {
        "Static": "Static",
        "Naive": "Naive",
        "Consistent": "Cons-logN",
        "Consistent#2": "Cons-n2/2",
        "Proteus": "Proteus",
    }
    print("\nFig. 5 — min/max load ratio per slot (1.0 = perfectly balanced):")
    print(fmt_row("slot", list(range(NUM_SLOTS))))
    means = {}
    for key, result in results.items():
        ratios = result.ratios()
        means[key] = result.mean_ratio()
        print(fmt_row(labels[key], [round(r, 2) for r in ratios]))
    print(
        "  means: "
        + ", ".join(f"{labels[k]}={v:.3f}" for k, v in means.items())
    )

    # Paper orderings: Proteus >= Naive ~ Static >> Consistent-logN, and the
    # n^2/2 variant beats logN but stays below Proteus.
    assert means["Proteus"] > means["Consistent"]
    assert means["Proteus"] > means["Consistent#2"]
    assert means["Naive"] > means["Consistent"]
    assert means["Proteus"] >= means["Naive"] - 0.05
