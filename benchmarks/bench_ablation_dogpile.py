"""Ablation — dog-pile protection vs the Naive transition storm.

The paper's introduction cites the "memcache dog pile": after a mass remap,
many concurrent requests miss on the same hot keys and *each* one hits the
database.  Proteus removes the storm at the source (Algorithm 2); this
ablation asks how far the orthogonal mitigation — request coalescing at the
web tier — gets the Naive scheme, and shows it does not reach Proteus:
coalescing dedups per-key misses but every *distinct* remapped key still
pays one DB read.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import fmt_row
from repro.experiments.cluster import ClusterExperiment, ExperimentConfig, ScenarioSpec
from repro.provisioning.policies import ProvisioningSchedule


def build_config():
    schedule = ProvisioningSchedule(60.0, [5, 4, 3, 4, 5])
    return ExperimentConfig(
        schedule=schedule,
        users_per_slot=[100, 80, 60, 80, 100],
        num_cache_servers=5,
        num_web_servers=3,
        num_db_shards=3,
        catalogue_size=6000,
        cache_capacity_bytes=4096 * 1500,
        ttl=30.0,
        plot_slots=20,
        seed=23,
        warmup_seconds=15.0,
    )


def run_one(spec: ScenarioSpec):
    return ClusterExperiment(spec, build_config()).run()


def test_ablation_dogpile(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "naive": run_one(ScenarioSpec.naive()),
            "naive+coalesce": run_one(ScenarioSpec.naive().with_coalescing()),
            "proteus": run_one(ScenarioSpec.proteus()),
        },
        rounds=1, iterations=1,
    )
    print("\nAblation — dog-pile coalescing vs the Naive transition storm:")
    print(fmt_row("variant", ["peak p99", "db reads", "coalesced"], width=11))
    for name, report in results.items():
        print(fmt_row(
            name,
            [round(report.peak_latency(99.0), 3), report.db_requests,
             report.fetch_paths.get("coalesced", 0)],
            width=11,
        ))

    naive = results["naive"]
    coalesced = results["naive+coalesce"]
    proteus = results["proteus"]
    # Coalescing dedups the per-key storms...
    assert coalesced.db_requests < naive.db_requests
    assert coalesced.fetch_paths["coalesced"] > 0
    # ...but cannot remove the per-distinct-key remap cost: Proteus's DB
    # pressure stays far lower than even the coalesced Naive.
    assert proteus.db_requests < 0.6 * coalesced.db_requests
    assert proteus.peak_latency(99.0) <= coalesced.peak_latency(99.0)
