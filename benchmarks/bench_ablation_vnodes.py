"""Ablation — how many random virtual nodes does consistent hashing need?

Extends the paper's Fig. 5 comparison (O(log n) vs n^2/2) into a sweep:
balance quality of random-vnode consistent hashing as the per-fleet vnode
budget grows, against Proteus's N(N-1)/2+1 deterministic placement.  The
point the paper makes implicitly: no random budget in this range reaches
Proteus's exact balance, even with more vnodes than Proteus uses.
"""

from __future__ import annotations

import statistics

import pytest

from benchmarks.conftest import fmt_row
from repro.core.ring import prefix_active
from repro.core.router import ConsistentRouter, ProteusRouter

N = 10
BUDGETS = [10, 20, 50, 100, 200, 500]
SEEDS = range(5)


def mean_share_ratio(router) -> float:
    ratios = []
    for n in range(2, N + 1):
        owned = router.ring.owned_lengths(prefix_active(n))
        values = [owned.get(s, 0) for s in range(n)]
        # float() because Proteus shares are exact Fractions.
        ratios.append(float(min(values) / max(values)) if max(values) else 0.0)
    return statistics.mean(ratios)


def sweep():
    rows = {}
    for budget in BUDGETS:
        rows[budget] = statistics.mean(
            mean_share_ratio(ConsistentRouter(N, total_vnodes=budget, seed=s))
            for s in SEEDS
        )
    rows["proteus"] = mean_share_ratio(ProteusRouter(N))
    return rows


def test_ablation_vnode_budget(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — mean min/max key-space share vs total random vnodes "
          f"(N={N}, averaged over active prefixes and {len(list(SEEDS))} seeds):")
    print(fmt_row("vnodes", BUDGETS + ["Proteus(46)"], width=12))
    print(fmt_row(
        "share ratio",
        [round(rows[b], 3) for b in BUDGETS] + [round(rows["proteus"], 3)],
        width=12,
    ))
    # More vnodes help...
    assert rows[500] > rows[10]
    # ...but even 500 random vnodes stay below Proteus's exact 1.0 with 46.
    assert rows[500] < rows["proteus"] == pytest.approx(1.0)
