"""Hot-key storm bench — the armor's load-flattening gate.

A Zipf(alpha=1.2) head-key storm hits a replicated cache tier while a
smooth scale-down drains two servers: the worst case for per-server load
concentration (the head keys' owners soak the storm exactly when the
fleet is shrinking).  Two scenarios run the **same** seeded request
schedule:

* ``baseline`` — plain Algorithm 2 over replicated rings;
* ``armored`` — ``hot_key_cache`` on (sketch-elected keys served from
  the frontend-local cache, TTL-bounded) plus ``d_choices=2``
  power-of-two-choices reads for hot keys.

Gates (the reproduction of DistCache's provable-flattening claim on top
of Proteus transitions):

* every request is answered with a value in both scenarios;
* the armored peak per-server cache load is at least **2x** lower than
  the baseline's;
* the armored p99 latency does not regress against the baseline.

Results go to ``BENCH_hotkey.json``.  ``--check`` is the CI ratchet: it
re-runs the bench and fails (exit 1) if the armored peak-to-average
ratio regressed more than 10% against the committed JSON.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from benchmarks.conftest import fmt_row  # noqa: E402
from repro.bloom.config import optimal_config  # noqa: E402
from repro.cache.cluster import CacheCluster  # noqa: E402
from repro.core.metrics import peak_to_average  # noqa: E402
from repro.core.replication import ReplicatedProteusRouter  # noqa: E402
from repro.core.retrieval import RetrievalConfig  # noqa: E402
from repro.database.cluster import DatabaseCluster  # noqa: E402
from repro.sim.latency import Constant  # noqa: E402
from repro.web.replicated import ReplicatedWebServer  # noqa: E402
from repro.workload.zipf import ZipfSampler  # noqa: E402

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotkey.json"

NUM_SERVERS = 6
ACTIVE_AFTER = 4          # the mid-storm smooth scale-down target
REPLICAS = 2
CATALOGUE = 400
ALPHA = 1.2
REQUESTS = 6000
DT = 0.002                # request inter-arrival (sim seconds)
HOT_TTL = 0.05            # local-copy staleness bound (25 requests)
DRAIN_TTL = 2.0           # transition drain window
SEED = 7

RATCHET_TOLERANCE = 0.10  # --check fails beyond +10% peak-to-average


def _percentile(samples: List[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _schedule() -> List[str]:
    """The seeded request schedule both scenarios replay verbatim."""
    sampler = ZipfSampler(CATALOGUE, alpha=ALPHA, seed=SEED)
    return [f"page:{item}" for item in sampler.sample_many(REQUESTS)]


def run_scenario(armored: bool) -> Dict[str, object]:
    router = ReplicatedProteusRouter(
        NUM_SERVERS, replicas=REPLICAS, ring_size=2 ** 20
    )
    cluster = CacheCluster(
        router, bloom_config=optimal_config(CATALOGUE), ttl=DRAIN_TTL
    )
    database = DatabaseCluster(4, service_model=Constant(0.002), seed=SEED)
    config = RetrievalConfig(
        hot_key_cache=armored,
        d_choices=2 if armored else 1,
        hot_key_ttl=HOT_TTL,
    )
    web = ReplicatedWebServer(0, cluster, database, seed=SEED, config=config)

    # Warm phase: install the whole catalogue (no database involved) so
    # the storm measures load distribution, not cold-start misses.
    now = 0.0
    for item in range(CATALOGUE):
        web.put(f"page:{item}", f"cached:{item}", now)

    warm_counts = cluster.per_server_requests()
    latencies: List[float] = []
    local_hits = 0
    answered = 0
    scaled = False
    for index, key in enumerate(_schedule()):
        if not scaled and index == REQUESTS // 2:
            cluster.scale_to(ACTIVE_AFTER, now)  # storm rides the drain
            scaled = True
        result = web.fetch(key, now)
        latencies.append(result.latency)
        local_hits += result.local
        answered += result.value is not None
        now += DT
    cluster.finalize_expired(now)

    storm_counts = [
        total - warm
        for total, warm in zip(cluster.per_server_requests(), warm_counts)
    ]
    return {
        "requests": REQUESTS,
        "answered": answered,
        "local_hits": local_hits,
        "per_server_requests": storm_counts,
        "peak_requests": max(storm_counts),
        "peak_to_average": round(peak_to_average(storm_counts), 4),
        "p99_ms": round(1000 * _percentile(latencies, 0.99), 3),
        "mean_ms": round(1000 * sum(latencies) / len(latencies), 3),
        "database_reads": web.database_reads,
    }


def run_bench() -> Dict[str, object]:
    baseline = run_scenario(armored=False)
    armored = run_scenario(armored=True)
    for name, row in (("baseline", baseline), ("armored", armored)):
        assert row["answered"] == row["requests"], (
            f"{name}: only {row['answered']}/{row['requests']} answered"
        )
    peak_reduction = baseline["peak_requests"] / max(
        1, armored["peak_requests"]
    )
    p2a_reduction = baseline["peak_to_average"] / armored["peak_to_average"]
    assert peak_reduction >= 2.0, (
        f"armored peak load only {peak_reduction:.2f}x below baseline "
        f"(gate: >= 2x) — {baseline['peak_requests']} vs "
        f"{armored['peak_requests']} requests on the hottest server"
    )
    assert armored["p99_ms"] <= 1.1 * baseline["p99_ms"], (
        f"armored p99 {armored['p99_ms']}ms regressed past baseline "
        f"{baseline['p99_ms']}ms"
    )
    return {
        "alpha": ALPHA,
        "catalogue": CATALOGUE,
        "requests": REQUESTS,
        "num_servers": NUM_SERVERS,
        "scale_down_to": ACTIVE_AFTER,
        "replicas": REPLICAS,
        "hot_key_ttl": HOT_TTL,
        "peak_reduction": round(peak_reduction, 3),
        "peak_to_average_reduction": round(p2a_reduction, 3),
        "scenarios": {"baseline": baseline, "armored": armored},
    }


def print_report(report: Dict[str, object]) -> None:
    print(f"\nHot-key storm (Zipf a={ALPHA}, scale-down mid-storm):")
    print(fmt_row("scenario", ["peak", "p2a", "p99ms", "local", "dbread"],
                  width=10))
    for name, row in report["scenarios"].items():
        print(fmt_row(name, [
            row["peak_requests"],
            row["peak_to_average"],
            row["p99_ms"],
            row["local_hits"],
            row["database_reads"],
        ], width=10))
    print(f"peak-load reduction: {report['peak_reduction']}x "
          f"(gate >= 2x); peak-to-average reduction: "
          f"{report['peak_to_average_reduction']}x")


def check_ratchet(report: Dict[str, object]) -> int:
    """CI ratchet: armored peak-to-average must not regress >10%."""
    if not JSON_PATH.exists():
        print(f"{JSON_PATH.name} missing: commit a baseline first")
        return 1
    committed = json.loads(JSON_PATH.read_text())
    old = committed["scenarios"]["armored"]["peak_to_average"]
    new = report["scenarios"]["armored"]["peak_to_average"]
    limit = old * (1 + RATCHET_TOLERANCE)
    verdict = "OK" if new <= limit else "REGRESSED"
    print(f"ratchet: armored peak-to-average {new} vs committed {old} "
          f"(limit {limit:.4f}): {verdict}")
    return 0 if new <= limit else 1


def test_hotkey_storm_flattens_load():
    """The armored tier answers everything and flattens the storm >= 2x
    (asserted inside :func:`run_bench`)."""
    report = run_bench()
    print_report(report)
    armored = report["scenarios"]["armored"]
    assert armored["local_hits"] > 0, "hot-key cache never engaged"
    write_report(report)


def write_report(report: Dict[str, object]) -> None:
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="ratchet mode: fail if armored peak-to-average regressed "
             f">{int(100 * RATCHET_TOLERANCE)}%% vs the committed "
             "BENCH_hotkey.json (the file is not rewritten)",
    )
    args = parser.parse_args()
    report = run_bench()
    print_report(report)
    if args.check:
        return check_ratchet(report)
    write_report(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
