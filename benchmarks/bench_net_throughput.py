"""Net throughput bench — the pipelined transport's RPS gate.

Closed-loop GET throughput over loopback TCP against a live
:class:`~repro.net.server.MemcachedServer` **in its own process** (a
co-located server would share the client's core and measure GIL
contention, not the transport), A/B-ing the transport disciplines the
live tier can run:

* ``serial`` — ``pipeline=False``: one in-flight command per connection,
  the pre-pipelining discipline (a 64-key page costs 64 sequential round
  trips);
* ``pipelined`` — ``pipeline=True``: a page's gets go out as one
  coalesced write (:meth:`~repro.net.client.MemcachedClient.get_many`)
  and their replies are framed incrementally off ~one read;
* ``pooled`` — pipelined connections behind a
  :class:`~repro.net.pool.ConnectionPool`, swept across closed-loop
  worker counts (the web-tier shape: many concurrent page fetches per
  server);
* ``pipelined_nagle`` — the pipelined discipline with ``nodelay=False``
  (report-only: what leaving Nagle on costs the batched writes).

**Gate** (asserted in :func:`run_bench` and therefore in CI): pipelined
single-connection RPS at 64-key pages is at least **10x** the serial
discipline's.  Results go to ``BENCH_net.json``; ``--check`` is the CI
ratchet — it re-runs the bench and fails (exit 1) if the 64-key speedup
regressed more than 30% against the committed JSON (wall-clock RPS is
machine-dependent, the speedup *ratio* is not).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from benchmarks.conftest import fmt_row  # noqa: E402
from repro.net.client import MemcachedClient  # noqa: E402
from repro.net.pool import ConnectionPool  # noqa: E402

JSON_PATH = REPO_ROOT / "BENCH_net.json"

VALUE = b"x" * 128
PAGE_SIZES = (1, 8, 64)
#: closed-loop pages per scenario, keyed by discipline — the serial
#: discipline pays one round trip per key, so it gets a smaller budget
#: at the same statistical weight (RPS normalizes by elapsed time)
SERIAL_PAGES = {1: 400, 8: 100, 64: 25}
PIPELINED_PAGES = {1: 2000, 8: 600, 64: 200}
#: pooled sweep: concurrent closed-loop workers fetching 64-key pages
CONCURRENCY = (1, 4, 16)
POOL_TOTAL_PAGES = 240
POOL_SIZE = 4

GATE_SPEEDUP = 10.0       # pipelined vs serial at 64-key pages
RATCHET_TOLERANCE = 0.30  # --check fails beyond -30% on that speedup
#: the gated page size runs best-of-N serial/pipelined pairs — the
#: speedup ratio is stable across machines but a single serial run is
#: short enough for scheduler noise to swing it
GATED_TRIALS = 2


class _ServerProcess:
    """One cache node on its own core (``repro.net.server`` CLI)."""

    def __init__(self) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        # -c instead of -m: the package import of repro.net.server under
        # runpy would warn about the double import.
        self._proc = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.net.server import main; main()"],
            stdout=subprocess.PIPE, env=env, text=True,
        )
        assert self._proc.stdout is not None
        line = self._proc.stdout.readline()
        if not line.startswith("LISTENING "):
            self._proc.terminate()
            raise RuntimeError(f"server did not start: {line!r}")
        self.port = int(line.split()[1])

    def stop(self) -> None:
        self._proc.terminate()
        try:
            self._proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self._proc.kill()


def _keys(page: int) -> List[str]:
    return [f"page:{i}" for i in range(page)]


async def _prepopulate(port: int, page: int) -> None:
    async with MemcachedClient("127.0.0.1", port) as client:
        await client.set_multi({key: VALUE for key in _keys(page)})


async def _fetch_page(client: MemcachedClient, keys: List[str]) -> None:
    """One page fetch in the pipelined discipline: a coalesced burst of
    per-key gets, replies matched in order."""
    values = await client.get_many(keys)
    assert all(value == VALUE for value in values), "page fetch lost a value"


async def _page_scenario(
    port: int, page: int, pages: int, pipeline: bool, nodelay: bool = True
) -> float:
    """Single-connection closed loop; returns GETs per second."""
    keys = _keys(page)
    client = MemcachedClient(
        "127.0.0.1", port, pipeline=pipeline, nodelay=nodelay
    )
    await client.connect()
    try:
        await _fetch_page(client, keys)  # warm the path outside timing
        started = time.perf_counter()
        if pipeline:
            for _ in range(pages):
                await _fetch_page(client, keys)
        else:
            # The pre-pipelining discipline: one command in flight, one
            # round trip per key.
            for _ in range(pages):
                for key in keys:
                    value = await client.get(key)
                    assert value == VALUE, "page fetch lost a value"
        elapsed = time.perf_counter() - started
    finally:
        await client.close()
    return page * pages / elapsed


async def _pool_scenario(port: int, concurrency: int) -> float:
    """Pooled closed loop at 64-key pages; returns GETs per second."""
    page = 64
    keys = _keys(page)
    pages_per_worker = POOL_TOTAL_PAGES // concurrency
    pool = ConnectionPool("127.0.0.1", port, size=POOL_SIZE)

    async def worker() -> None:
        for _ in range(pages_per_worker):
            async with pool.connection() as client:
                await _fetch_page(client, keys)

    try:
        await pool.prewarm()
        started = time.perf_counter()
        await asyncio.gather(*(worker() for _ in range(concurrency)))
        elapsed = time.perf_counter() - started
    finally:
        await pool.close()
    return page * pages_per_worker * concurrency / elapsed


async def _run_all(port: int) -> Dict[str, object]:
    await _prepopulate(port, max(PAGE_SIZES))
    pages_report: Dict[str, Dict[str, float]] = {}
    for page in PAGE_SIZES:
        trials = GATED_TRIALS if page == max(PAGE_SIZES) else 1
        best: Dict[str, float] = {}
        for _ in range(trials):
            serial = await _page_scenario(
                port, page, SERIAL_PAGES[page], pipeline=False
            )
            pipelined = await _page_scenario(
                port, page, PIPELINED_PAGES[page], pipeline=True
            )
            speedup = pipelined / serial
            if not best or speedup > best["speedup"]:
                best = {
                    "serial_rps": round(serial),
                    "pipelined_rps": round(pipelined),
                    "speedup": round(speedup, 2),
                }
        pages_report[str(page)] = best
    nagle = await _page_scenario(
        port, 64, PIPELINED_PAGES[64], pipeline=True, nodelay=False,
    )
    sweep = {
        str(c): {"pooled_rps": round(await _pool_scenario(port, c))}
        for c in CONCURRENCY
    }
    return {
        "value_bytes": len(VALUE),
        "pool_size": POOL_SIZE,
        "pages": pages_report,
        "pipelined_nagle_rps_64": round(nagle),
        "concurrency": sweep,
    }


def run_bench() -> Dict[str, object]:
    server = _ServerProcess()
    try:
        report = asyncio.run(_run_all(server.port))
    finally:
        server.stop()
    speedup = report["pages"]["64"]["speedup"]
    assert speedup >= GATE_SPEEDUP, (
        f"pipelined transport only {speedup:.1f}x the serial discipline "
        f"at 64-key pages (gate: >= {GATE_SPEEDUP:.0f}x) — "
        f"{report['pages']['64']['pipelined_rps']} vs "
        f"{report['pages']['64']['serial_rps']} RPS"
    )
    return report


def print_report(report: Dict[str, object]) -> None:
    print("\nNet throughput (closed-loop GETs over loopback):")
    print(fmt_row("page", ["serial", "pipelined", "speedup"], width=12))
    for page, row in report["pages"].items():
        print(fmt_row(f"{page} keys", [
            row["serial_rps"], row["pipelined_rps"], row["speedup"],
        ], width=12))
    print(fmt_row("workers", ["pooled_rps"], width=12))
    for c, row in report["concurrency"].items():
        print(fmt_row(f"c={c}", [row["pooled_rps"]], width=12))
    print(f"Nagle on (64-key pages): {report['pipelined_nagle_rps_64']} RPS; "
          f"gate: 64-key speedup >= {GATE_SPEEDUP:.0f}x")


def check_ratchet(report: Dict[str, object]) -> int:
    """CI ratchet: the 64-key speedup must not regress >30%."""
    if not JSON_PATH.exists():
        print(f"{JSON_PATH.name} missing: commit a baseline first")
        return 1
    committed = json.loads(JSON_PATH.read_text())
    old = committed["pages"]["64"]["speedup"]
    new = report["pages"]["64"]["speedup"]
    limit = max(GATE_SPEEDUP, old * (1 - RATCHET_TOLERANCE))
    verdict = "OK" if new >= limit else "REGRESSED"
    print(f"ratchet: 64-key page speedup {new}x vs committed {old}x "
          f"(limit {limit:.2f}x): {verdict}")
    return 0 if new >= limit else 1


def write_report(report: Dict[str, object]) -> None:
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH.name}")


def test_pipelined_transport_hits_speedup_gate():
    """Pipelined+pooled RPS clears the 10x gate at 64-key pages
    (asserted inside :func:`run_bench`)."""
    report = run_bench()
    print_report(report)
    write_report(report)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="ratchet mode: fail if the 64-key page speedup regressed "
             f">{int(100 * RATCHET_TOLERANCE)}%% vs the committed "
             "BENCH_net.json (the file is not rewritten)",
    )
    args = parser.parse_args()
    report = run_bench()
    print_report(report)
    if args.check:
        return check_ratchet(report)
    write_report(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
