"""Microbenchmark — the asyncio memcached server's operation throughput.

Not a paper figure; it justifies using the net layer (repro.net) as a
functional substrate: the digest bookkeeping on every item link/unlink must
not dominate the data path.  We measure get/set round trips per second over
loopback TCP with and without a digest-heavy value mix, plus the cost of a
digest snapshot+fetch cycle.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.bloom.config import optimal_config
from repro.net.client import MemcachedClient
from repro.net.server import MemcachedServer

CFG = optimal_config(20_000)
OPS = 400


async def _roundtrips(port: int, ops: int) -> None:
    async with MemcachedClient("127.0.0.1", port) as client:
        for i in range(ops):
            await client.set(f"k{i % 64}", b"x" * 128)
            await client.get(f"k{i % 64}")


def run_roundtrips() -> None:
    async def body():
        server = MemcachedServer(bloom_config=CFG)
        await server.start()
        try:
            await _roundtrips(server.port, OPS)
        finally:
            await server.stop()

    asyncio.run(body())


def run_digest_cycle() -> None:
    async def body():
        server = MemcachedServer(bloom_config=CFG)
        await server.start()
        try:
            async with MemcachedClient("127.0.0.1", server.port) as client:
                for i in range(500):
                    await client.set(f"k{i}", b"v")
                for _ in range(5):
                    await client.snapshot_digest()
                    await client.fetch_digest(CFG.num_counters, CFG.num_hashes)
        finally:
            await server.stop()

    asyncio.run(body())


def test_net_set_get_roundtrips(benchmark):
    benchmark.pedantic(run_roundtrips, rounds=3, iterations=1)
    # 2*OPS sequential round trips per run; anything under ~5 s means the
    # digest hooks are not the bottleneck.
    assert benchmark.stats.stats.mean < 5.0


def test_net_digest_snapshot_cycle(benchmark):
    benchmark.pedantic(run_digest_cycle, rounds=3, iterations=1)
    assert benchmark.stats.stats.mean < 5.0
