"""proteus-repro — reproduction of *Proteus: Power Proportional Memory
Cache Cluster in Data Centers* (Li et al., ICDCS 2013).

The package implements the paper's two contributions and every substrate
its evaluation depends on:

* :mod:`repro.core` — the deterministic virtual-node placement
  (Algorithm 1, Theorem 1), the four Table II routing scenarios, migration
  analysis, the smooth-transition state machine (Algorithm 2 support), and
  replicated rings (Section III-E);
* :mod:`repro.bloom` — plain and counting Bloom filters plus the
  memory-optimal digest sizing of Section IV-B (Eq. 10);
* :mod:`repro.cache` / :mod:`repro.database` / :mod:`repro.web` — the
  three-tier testbed of Fig. 3, in-process;
* :mod:`repro.net` — a real asyncio memcached-protocol server/client with
  the ``SET_BLOOM_FILTER`` / ``BLOOM_FILTER`` reserved keys of
  Section V-A3, plus a chaos proxy for fault injection;
* :mod:`repro.resilience` — retry/breaker/deadline policies and the
  fault-plan vocabulary shared by the simulator and the live tier;
* :mod:`repro.sim` — the discrete-event cluster experiment that regenerates
  Figs. 9-11, and the routing/hit-ratio analyses behind Figs. 5-6;
* :mod:`repro.power` — the PDU-style power metering of Section VI-D;
* :mod:`repro.provisioning` / :mod:`repro.workload` — schedules,
  the delay-feedback loop, and Wikipedia-like workload synthesis.

Quickstart::

    from repro import ProteusRouter

    router = ProteusRouter(num_servers=10)
    server = router.route("page:Alan_Turing", num_active=7)
"""

from repro.bloom import (
    BloomConfig,
    BloomFilter,
    CountingBloomFilter,
    KeyHashes,
    optimal_config,
)
from repro.cache import CacheServer, CacheStats, KeyValueStore, PowerState
from repro.config import ClusterConfig, DigestGeometry
from repro.cache.cluster import CacheCluster
from repro.core import (
    BACKEND_NAMES,
    RING_BACKENDS,
    ROUTER_SCENARIOS,
    BatchCommand,
    CheckDigestMulti,
    CompiledRingTable,
    ConsistentRouter,
    CountMinSketch,
    FetchPath,
    FetchResult,
    FetchStats,
    HashRing,
    HotKeyArmor,
    HotKeyCache,
    MultiProbeBackend,
    MultiProbeRouter,
    NaiveRouter,
    Placement,
    PowerBackend,
    PowerRouter,
    ProteusBackend,
    ProteusRouter,
    ReadPlan,
    Registry,
    ReplicatedProteusRouter,
    ReplicatedRetrievalEngine,
    RetrievalConfig,
    RetrievalEngine,
    RingBackend,
    Router,
    ServerLoadEWMA,
    StaticRouter,
    TopKSketch,
    TransitionManager,
    VnodeBackend,
    make_backend,
    make_router,
    migration_lower_bound,
    peak_to_average,
    place_virtual_nodes,
    plan_migration,
    remap_fraction,
    scenario_routers,
    theoretical_min_vnodes,
)
from repro.database import DatabaseCluster
from repro.errors import ProteusError
from repro.net import AsyncProteusFrontend, MemcachedClient, MemcachedServer
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FaultPlan,
    FaultSchedule,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.provisioning import (
    DelayFeedbackController,
    ProvisioningActuator,
    ProvisioningSchedule,
    load_proportional_schedule,
    run_feedback_loop,
    static_schedule,
)
from repro.experiments import (
    ClusterExperiment,
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    compare_routers,
    evaluate_load_balance,
    run_scenarios,
    simulate_hit_ratio,
    sweep_cache_sizes,
)
from repro.web import ReplicatedWebServer, WebServer
from repro.workload import (
    TraceRecord,
    UserPopulation,
    ZipfSampler,
    diurnal_rate,
    generate_trace,
    load_trace,
    save_trace,
)

__version__ = "1.0.0"

__all__ = [
    "AsyncProteusFrontend",
    "BACKEND_NAMES",
    "BatchCommand",
    "BloomConfig",
    "BloomFilter",
    "CacheCluster",
    "CacheServer",
    "CacheStats",
    "CheckDigestMulti",
    "CircuitBreaker",
    "ClusterConfig",
    "ClusterExperiment",
    "CompiledRingTable",
    "ConsistentRouter",
    "CountMinSketch",
    "CountingBloomFilter",
    "DatabaseCluster",
    "Deadline",
    "DelayFeedbackController",
    "DigestGeometry",
    "ExperimentConfig",
    "ExperimentReport",
    "FaultPlan",
    "FaultSchedule",
    "FetchPath",
    "FetchResult",
    "FetchStats",
    "HashRing",
    "HotKeyArmor",
    "HotKeyCache",
    "KeyHashes",
    "KeyValueStore",
    "MemcachedClient",
    "MemcachedServer",
    "MultiProbeBackend",
    "MultiProbeRouter",
    "NaiveRouter",
    "Placement",
    "PowerBackend",
    "PowerRouter",
    "PowerState",
    "ProteusBackend",
    "ProteusError",
    "ProteusRouter",
    "ProvisioningActuator",
    "ProvisioningSchedule",
    "RING_BACKENDS",
    "ROUTER_SCENARIOS",
    "ReadPlan",
    "Registry",
    "ReplicatedProteusRouter",
    "ReplicatedRetrievalEngine",
    "ReplicatedWebServer",
    "ResiliencePolicy",
    "RetrievalConfig",
    "RetrievalEngine",
    "RetryPolicy",
    "RingBackend",
    "Router",
    "ScenarioSpec",
    "ServerLoadEWMA",
    "StaticRouter",
    "TopKSketch",
    "TraceRecord",
    "TransitionManager",
    "UserPopulation",
    "VnodeBackend",
    "WebServer",
    "ZipfSampler",
    "compare_routers",
    "diurnal_rate",
    "evaluate_load_balance",
    "generate_trace",
    "load_proportional_schedule",
    "load_trace",
    "make_backend",
    "make_router",
    "migration_lower_bound",
    "optimal_config",
    "peak_to_average",
    "place_virtual_nodes",
    "plan_migration",
    "remap_fraction",
    "run_feedback_loop",
    "run_scenarios",
    "save_trace",
    "scenario_routers",
    "simulate_hit_ratio",
    "static_schedule",
    "sweep_cache_sizes",
    "theoretical_min_vnodes",
    "__version__",
]
