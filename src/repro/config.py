"""Cluster configuration — the out-of-band state every web server shares.

The paper's objective 3 (Section I) demands that independent web servers
make *identical* routing decisions with no coordination.  Everything they
need is static configuration: the fleet (endpoints, in provisioning
order), the digest geometry, the TTL, and the replication factor.
:class:`ClusterConfig` is that document — JSON on disk, validated on load —
plus builders for the router and the live TCP frontend, so "deploy another
web server" is `ClusterConfig.load(path).build_frontend(db)`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.bloom.config import BloomConfig, optimal_config
from repro.errors import ConfigurationError

CONFIG_VERSION = 1


@dataclass(frozen=True)
class DigestGeometry:
    """The cluster-wide counting-Bloom-filter shape (Section IV-B)."""

    num_counters: int
    counter_bits: int
    num_hashes: int

    def __post_init__(self) -> None:
        if self.num_counters < 1 or self.counter_bits < 1 or self.num_hashes < 1:
            raise ConfigurationError(f"invalid digest geometry: {self}")

    @classmethod
    def from_bloom_config(cls, cfg: BloomConfig) -> "DigestGeometry":
        return cls(cfg.num_counters, cfg.counter_bits, cfg.num_hashes)

    def to_bloom_config(self) -> BloomConfig:
        """A BloomConfig carrying this geometry (bounds recomputed as 0/0 —
        geometry is authoritative once deployed)."""
        return BloomConfig(
            num_counters=self.num_counters,
            counter_bits=self.counter_bits,
            num_hashes=self.num_hashes,
            kappa=0,
            fp_bound=0.0,
            fn_bound=0.0,
        )


@dataclass
class ClusterConfig:
    """One cache cluster's shared static configuration.

    Attributes:
        endpoints: ``(host, port)`` per cache server, **in provisioning
            order** — the order is part of the contract (Section III-A).
        digest: the digest geometry all servers and web tiers share.
        ttl_seconds: the drain-window length.
        replicas: replica rings (Section III-E); 1 = unreplicated.
        ring_size: consistent-hashing key-space size.
        name: free-form deployment label.
        hot_key_cache: arm every frontend with the TTL-bounded hot-key
            cache (sketch-elected keys served locally; invalidated on
            writes through the frontend).
        d_choices: power-of-two-choices read fan-in for sketch-elected
            hot keys on replicated reads; 1 = strict ring order.
        ttl_policy: drain-window sizing policy name (``"fixed"`` keeps
            the paper's constant ``ttl_seconds``; ``"adaptive"`` sizes
            each window from observed remap-miss decay, clamped to
            ``[min_ttl_seconds, max_ttl_seconds]``).
        min_ttl_seconds / max_ttl_seconds: adaptive-policy clamp bounds
            (ignored by the fixed policy).
        ttl_target_residual: remap-miss rate fraction the adaptive
            window may leave alive when it closes.
        retry_budget_ratio: retries allowed per request (token-bucket
            :class:`~repro.resilience.RetryBudget`); 0 disables the
            budget (unbounded retries, the pre-armor behaviour).
        limiter_window: initial per-cache-server AIMD in-flight window
            (:class:`~repro.resilience.AdaptiveConcurrencyLimiter`);
            0 disables per-server limiting.
        admission_window: initial AIMD window for DB-path admission
            control (frontends shed excess misses as
            :attr:`~repro.core.retrieval.FetchPath.SHED`); 0 admits
            everything.
        max_inflight_per_conn: per-connection in-flight command window
            for the saturation fail-fast in
            :class:`~repro.net.pool.ConnectionPool`; 0 = unbounded.
    """

    endpoints: List[Tuple[str, int]]
    digest: DigestGeometry
    ttl_seconds: float = 60.0
    replicas: int = 1
    ring_size: int = 2 ** 32
    name: str = "proteus"
    hot_key_cache: bool = False
    d_choices: int = 1
    ttl_policy: str = "fixed"
    min_ttl_seconds: float = 5.0
    max_ttl_seconds: float = 300.0
    ttl_target_residual: float = 0.05
    retry_budget_ratio: float = 0.0
    limiter_window: int = 0
    admission_window: int = 0
    max_inflight_per_conn: int = 0
    version: int = field(default=CONFIG_VERSION)

    def __post_init__(self) -> None:
        if not self.endpoints:
            raise ConfigurationError("config needs at least one endpoint")
        normalized = []
        for entry in self.endpoints:
            host, port = entry
            if not isinstance(host, str) or not host:
                raise ConfigurationError(f"bad endpoint host: {entry!r}")
            port = int(port)
            if not 0 < port < 65536:
                raise ConfigurationError(f"bad endpoint port: {entry!r}")
            normalized.append((host, port))
        self.endpoints = normalized
        if self.ttl_seconds <= 0:
            raise ConfigurationError(
                f"ttl_seconds must be > 0, got {self.ttl_seconds}"
            )
        if self.replicas < 1:
            raise ConfigurationError(f"replicas must be >= 1, got {self.replicas}")
        if self.ring_size < len(self.endpoints):
            raise ConfigurationError("ring_size smaller than the fleet")
        if self.d_choices < 1:
            raise ConfigurationError(
                f"d_choices must be >= 1, got {self.d_choices}"
            )
        from repro.provisioning.ttl import TTL_POLICIES

        self.ttl_policy = TTL_POLICIES.check(self.ttl_policy)
        if self.min_ttl_seconds <= 0 or self.max_ttl_seconds < self.min_ttl_seconds:
            raise ConfigurationError(
                "need 0 < min_ttl_seconds <= max_ttl_seconds, got "
                f"({self.min_ttl_seconds}, {self.max_ttl_seconds})"
            )
        if not 0 < self.ttl_target_residual < 1:
            raise ConfigurationError(
                "ttl_target_residual must be in (0, 1), got "
                f"{self.ttl_target_residual}"
            )
        if self.retry_budget_ratio < 0:
            raise ConfigurationError(
                "retry_budget_ratio must be >= 0, got "
                f"{self.retry_budget_ratio}"
            )
        for knob in ("limiter_window", "admission_window",
                     "max_inflight_per_conn"):
            value = getattr(self, knob)
            if value < 0:
                raise ConfigurationError(
                    f"{knob} must be >= 0 (0 disables), got {value}"
                )
        if self.version != CONFIG_VERSION:
            raise ConfigurationError(
                f"unsupported config version {self.version} "
                f"(this build reads {CONFIG_VERSION})"
            )

    @property
    def num_servers(self) -> int:
        return len(self.endpoints)

    # -------------------------------------------------------------- builders

    @classmethod
    def for_fleet(
        cls,
        endpoints: List[Tuple[str, int]],
        expected_keys_per_server: int,
        **kwargs,
    ) -> "ClusterConfig":
        """Config with the Eq. 10 optimal digest for the expected key count."""
        return cls(
            endpoints=endpoints,
            digest=DigestGeometry.from_bloom_config(
                optimal_config(expected_keys_per_server)
            ),
            **kwargs,
        )

    def build_router(self):
        """The deterministic router this config prescribes."""
        if self.replicas > 1:
            from repro.core.replication import ReplicatedProteusRouter

            return ReplicatedProteusRouter(
                self.num_servers, replicas=self.replicas,
                ring_size=self.ring_size,
            )
        from repro.core.router import ProteusRouter

        return ProteusRouter(self.num_servers, ring_size=self.ring_size)

    def build_ttl_policy(self):
        """The drain-window sizing policy this config prescribes."""
        from repro.provisioning.ttl import make_ttl_policy

        if self.ttl_policy == "fixed":
            return make_ttl_policy("fixed", ttl=self.ttl_seconds)
        return make_ttl_policy(
            "adaptive",
            default_ttl=self.ttl_seconds,
            min_ttl=self.min_ttl_seconds,
            max_ttl=self.max_ttl_seconds,
            target_residual=self.ttl_target_residual,
        )

    def build_resilience(self):
        """The :class:`~repro.resilience.ResiliencePolicy` this config
        prescribes, or ``None`` when every armor knob is disabled (the
        frontend then uses its own default)."""
        if self.retry_budget_ratio <= 0 and self.limiter_window <= 0:
            return None
        import dataclasses

        from repro.resilience import ResiliencePolicy

        return dataclasses.replace(
            ResiliencePolicy.default(),
            retry_budget_ratio=self.retry_budget_ratio,
            limiter_window=self.limiter_window,
        )

    def build_admission(self):
        """The DB-path admission controller this config prescribes for a
        live frontend (``None`` when disabled)."""
        if self.admission_window <= 0:
            return None
        from repro.resilience import (
            AdaptiveConcurrencyLimiter,
            ConcurrencyAdmission,
        )

        return ConcurrencyAdmission(
            AdaptiveConcurrencyLimiter(initial=float(self.admission_window))
        )

    def build_frontend(self, database, initial_active: Optional[int] = None):
        """A live-TCP :class:`~repro.net.webtier.AsyncProteusFrontend`."""
        from repro.core.retrieval import RetrievalConfig
        from repro.net.webtier import AsyncProteusFrontend

        retrieval = None
        if self.hot_key_cache or self.d_choices > 1:
            retrieval = RetrievalConfig(
                hot_key_cache=self.hot_key_cache, d_choices=self.d_choices
            )
        return AsyncProteusFrontend(
            self.endpoints,
            self.digest.to_bloom_config(),
            database,
            initial_active=initial_active,
            config=retrieval,
            resilience=self.build_resilience(),
            max_inflight_per_conn=self.max_inflight_per_conn or None,
            admission=self.build_admission(),
        )

    # --------------------------------------------------------- serialization

    def to_json(self) -> str:
        """Stable, human-diffable JSON."""
        payload = asdict(self)
        payload["digest"] = asdict(self.digest)
        payload["endpoints"] = [list(ep) for ep in self.endpoints]
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ClusterConfig":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"config is not valid JSON: {exc}") from exc
        try:
            digest = DigestGeometry(**payload.pop("digest"))
            endpoints = [tuple(ep) for ep in payload.pop("endpoints")]
            return cls(endpoints=endpoints, digest=digest, **payload)
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(f"malformed config: {exc}") from exc

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ClusterConfig":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
