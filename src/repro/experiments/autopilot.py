"""Closed-loop autopilot: health-aware provisioning over the simulated tier.

The paper's evaluation drives the cluster with a *precomputed* ``n(t)``
schedule (Fig. 4) — the feedback loop ran once, offline, and its output was
replayed.  This experiment runs the loop **online** and closes it with the
resilience layer:

* per-slot, a :class:`~repro.provisioning.health.ClusterHealthMonitor`
  aggregates crash state, served-around-fault counters, and drain-window
  state into a :class:`~repro.provisioning.health.HealthSnapshot`;
* the :class:`~repro.provisioning.controller.DelayFeedbackController` takes
  the snapshot next to the measured delay: a killed server triggers an
  emergency scale-up (the lost machine is capacity already gone), and
  scale-down is refused while anything is unhealthy or a previous
  transition's remap misses are still decaying;
* an :class:`~repro.provisioning.ttl.AdaptiveTTLPolicy` replaces the fixed
  drain window: remap-miss decay is sampled during each drain window and
  the next window is sized from the fitted half-life.

Both halves are opt-in (:attr:`AutopilotConfig.health_feedback` /
:attr:`AutopilotConfig.adaptive_ttl`); with both off this is the paper's
open loop, which is exactly the baseline ``benchmarks/bench_autopilot.py``
compares against.

Faults come in as a :class:`~repro.resilience.FaultSchedule` — the same
scripted-outage vocabulary the live chaos harness replays — realized here
as crash/repair events via
:func:`~repro.experiments.failover.failure_events_from_schedule`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

from repro.bloom.config import BloomConfig, optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.retrieval import FetchPath
from repro.core.router import ProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.experiments.failover import failure_events_from_schedule
from repro.power.meter import PowerMeter, busy_time_probe, utilization_probe
from repro.provisioning.actuator import AppliedTransition, ProvisioningActuator
from repro.provisioning.controller import DelayFeedbackController
from repro.provisioning.health import ClusterHealthMonitor, HealthSnapshot
from repro.provisioning.ttl import AdaptiveTTLPolicy, FixedTTLPolicy
from repro.resilience import FaultSchedule
from repro.sim.events import EventLoop
from repro.sim.latency import Constant, Exponential
from repro.sim.metrics import SlottedRecorder, TimeSeries, percentile
from repro.web.frontend import WebServer
from repro.workload.synthetic import SyntheticUser, UserPopulation

__all__ = ["AutopilotConfig", "AutopilotReport", "AutopilotExperiment"]

#: recovery_slots() sentinel: healthy capacity never returned to baseline.
NEVER_RECOVERED = 10_000


@dataclass
class AutopilotConfig:
    """Knobs for one online-control run.

    The two closed-loop switches are off by default, which makes the
    default configuration the paper's open loop: delay-only control with a
    fixed drain window.

    ``delay_bound`` / ``delay_reference`` keep the paper's Section VI
    values; the control statistic fed back each slot is
    ``max(p95 measured, M/M/1 projection)`` — the projection supplies the
    feed-forward term the paper's heavily loaded testbed measured directly,
    while the measured percentile carries fault-induced degradation the
    projection cannot see.
    """

    users_per_slot: List[int] = field(default_factory=list)
    slot_seconds: float = 30.0
    num_servers: int = 8
    num_web_servers: int = 4
    num_db_shards: int = 4
    min_servers: int = 2
    per_server_rate: float = 18.0
    delay_bound: float = 0.5
    delay_reference: float = 0.4
    control_percentile: float = 95.0
    #: closed-loop switch: feed HealthSnapshots to the controller.
    health_feedback: bool = False
    #: closed-loop switch: size drain windows from remap-miss decay.
    adaptive_ttl: bool = False
    ttl_seconds: float = 60.0
    min_ttl: float = 5.0
    max_ttl: float = 120.0
    target_residual: float = 0.05
    #: seconds between remap-miss decay samples inside a drain window.
    decay_sample_seconds: float = 2.0
    faults: FaultSchedule = field(default_factory=FaultSchedule)
    catalogue_size: int = 6000
    cache_capacity_bytes: int = 4096 * 600
    item_size: int = 4096
    pages_per_user: int = 30
    think_time: float = 0.5
    zipf_alpha: float = 0.9
    db_service_mean: float = 0.050
    cache_op_latency: float = 0.001
    web_overhead: float = 0.002
    power_sample_period: float = 5.0
    bloom_config: Optional[BloomConfig] = None
    prewarm: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.users_per_slot:
            raise ConfigurationError("users_per_slot must not be empty")
        if self.slot_seconds <= 0:
            raise ConfigurationError(
                f"slot_seconds must be > 0, got {self.slot_seconds}"
            )
        if not 1 <= self.min_servers <= self.num_servers:
            raise ConfigurationError(
                f"min_servers out of range: {self.min_servers}"
            )
        if self.ttl_seconds <= 0:
            raise ConfigurationError(
                f"ttl_seconds must be > 0, got {self.ttl_seconds}"
            )
        if self.decay_sample_seconds <= 0:
            raise ConfigurationError(
                "decay_sample_seconds must be > 0, got "
                f"{self.decay_sample_seconds}"
            )
        for entry in self.faults.entries:
            if not 0 <= entry.server_id < self.num_servers:
                raise ConfigurationError(
                    f"fault targets unknown server {entry.server_id}"
                )

    @property
    def num_slots(self) -> int:
        return len(self.users_per_slot)

    @property
    def duration(self) -> float:
        return self.num_slots * self.slot_seconds


@dataclass
class AutopilotReport:
    """Everything the autopilot bench gates on, for one run."""

    config_label: str
    duration: float
    slot_seconds: float
    total_requests: int
    #: requests that completed (the sim's degraded path always answers,
    #: so served < total would mean a routing hole — the availability gate).
    served_requests: int
    #: per-slot commanded active count (controller output).
    active_counts: List[int]
    #: per-slot healthy capacity: powered, non-crashed servers inside the
    #: active mapping (draining stragglers outside it do not count —
    #: routing no longer sends them fresh load).
    healthy_counts: List[int]
    #: per-slot crashed-server sets.
    failed_sets: List[FrozenSet[int]]
    #: per-slot required capacity: servers needed to carry the slot's
    #: measured arrival rate at 90% of rated per-server load.
    required_counts: List[int]
    #: per-slot control statistic fed to the controller.
    measured_delays: List[float]
    #: per-slot arrival rate estimate (req/s).
    arrival_rates: List[float]
    #: per-slot health snapshots (empty when health_feedback was off).
    health_history: List[HealthSnapshot]
    latencies: SlottedRecorder
    transitions: List[AppliedTransition]
    energy_kwh: Dict[str, float]
    active_series: TimeSeries
    emergency_scale_ups: int
    vetoed_scale_downs: int
    #: drain windows the TTL policy actually used, in apply order.
    ttls_used: List[float] = field(default_factory=list)
    #: fitted remap-miss half-lives, one per observed drain window.
    half_lives: List[float] = field(default_factory=list)
    #: run-wide remap-miss count (old-owner hits + digest false
    #: positives) — the migration cost all transitions together incurred.
    remap_misses_total: int = 0

    @property
    def availability(self) -> float:
        """Fraction of requests answered (1.0 = no request was lost)."""
        if self.total_requests == 0:
            return 1.0
        return self.served_requests / self.total_requests

    def latency_percentile(self, pct: float = 99.0) -> float:
        """Run-wide latency percentile (seconds)."""
        values = [
            v for slot in self.latencies.slots()
            for v in self.latencies.samples(slot)
        ]
        return percentile(values, pct) if values else 0.0

    def underprovisioned_slots(
        self, fault_at: float, horizon_slots: Optional[int] = None
    ) -> int:
        """Slots after the fault with healthy capacity below requirement.

        Counts the slots in ``(fault_slot, fault_slot + horizon]`` where
        the healthy in-mapping capacity could not carry the slot's
        measured load at rated per-server throughput — the window in which
        the next fault, or the load itself, turns into delay violations.
        Zero means the controller replaced the lost capacity before the
        first post-fault boundary.  This is the post-fault recovery metric
        the autopilot bench gates on: strictly fewer under-provisioned
        slots closed-loop than open-loop.
        """
        fault_slot = int(fault_at // self.slot_seconds)
        if fault_slot >= len(self.healthy_counts):
            raise ConfigurationError(
                f"fault_at {fault_at} is outside the run"
            )
        end = len(self.healthy_counts)
        if horizon_slots is not None:
            end = min(end, fault_slot + 1 + horizon_slots)
        return sum(
            1
            for slot in range(fault_slot + 1, end)
            if self.healthy_counts[slot] < self.required_counts[slot]
        )

    def recovery_slots(self, fault_at: float) -> int:
        """Slots from the fault until healthy capacity meets requirement
        again (:data:`NEVER_RECOVERED` when it never does inside the run).

        The first post-fault boundary that already satisfies the
        requirement scores 1 — the emergency-scale-up best case.
        """
        fault_slot = int(fault_at // self.slot_seconds)
        if fault_slot >= len(self.healthy_counts):
            raise ConfigurationError(
                f"fault_at {fault_at} is outside the run"
            )
        for offset, slot in enumerate(
            range(fault_slot + 1, len(self.healthy_counts)), start=1
        ):
            if self.healthy_counts[slot] >= self.required_counts[slot]:
                return offset
        return NEVER_RECOVERED

    def to_dict(self) -> dict:
        """JSON-serializable summary (archived by the bench)."""
        return {
            "config": self.config_label,
            "duration": self.duration,
            "slot_seconds": self.slot_seconds,
            "total_requests": self.total_requests,
            "served_requests": self.served_requests,
            "availability": self.availability,
            "p99_latency": self.latency_percentile(99.0),
            "active_counts": list(self.active_counts),
            "healthy_counts": list(self.healthy_counts),
            "required_counts": list(self.required_counts),
            "failed_sets": [sorted(s) for s in self.failed_sets],
            "measured_delays": list(self.measured_delays),
            "arrival_rates": list(self.arrival_rates),
            "energy_kwh": dict(self.energy_kwh),
            "transitions": [
                {"when": t.when, "n_old": t.n_old, "n_new": t.n_new,
                 "ttl": t.ttl}
                for t in self.transitions
            ],
            "ttls_used": list(self.ttls_used),
            "half_lives": list(self.half_lives),
            "emergency_scale_ups": self.emergency_scale_ups,
            "vetoed_scale_downs": self.vetoed_scale_downs,
            "remap_misses_total": self.remap_misses_total,
        }


class AutopilotExperiment:
    """Online provisioning control over the simulated 3-tier testbed.

    Unlike :class:`~repro.experiments.cluster.ClusterExperiment`, which
    replays a precomputed schedule, the controller here decides at every
    slot boundary from the *measured* slot — and, when the closed loop is
    armed, from the slot's health snapshot.
    """

    def __init__(self, config: AutopilotConfig) -> None:
        self.config = config
        cfg = config
        router = ProteusRouter(cfg.num_servers)
        bloom = cfg.bloom_config or optimal_config(
            max(1024, cfg.cache_capacity_bytes // cfg.item_size)
        )
        initial = self._initial_active()
        self.cache = CacheCluster(
            router,
            capacity_bytes=cfg.cache_capacity_bytes,
            initial_active=initial,
            ttl=cfg.ttl_seconds,
            bloom_config=bloom,
        )
        self.database = DatabaseCluster(
            cfg.num_db_shards,
            service_model=Exponential(cfg.db_service_mean),
            seed=cfg.seed,
        )
        self.webs: List[WebServer] = [
            WebServer(
                i,
                self.cache,
                self.database,
                cache_latency=Constant(cfg.cache_op_latency),
                web_overhead=Constant(cfg.web_overhead),
                seed=cfg.seed,
            )
            for i in range(cfg.num_web_servers)
        ]
        self.population = UserPopulation(
            catalogue_size=cfg.catalogue_size,
            pages_per_user=cfg.pages_per_user,
            think_time=cfg.think_time,
            alpha=cfg.zipf_alpha,
            seed=cfg.seed,
        )
        self.controller = DelayFeedbackController(
            num_servers=cfg.num_servers,
            delay_bound=cfg.delay_bound,
            delay_reference=cfg.delay_reference,
            min_servers=cfg.min_servers,
            per_server_rate=cfg.per_server_rate,
        )
        # Start sized to the first slot's load, as the paper's loop had
        # converged before its recorded day began (run_feedback_loop idiom).
        self.controller._n = initial
        self.controller.history[:] = [initial]
        self.ttl_policy = (
            AdaptiveTTLPolicy(
                default_ttl=cfg.ttl_seconds,
                min_ttl=cfg.min_ttl,
                max_ttl=cfg.max_ttl,
                target_residual=cfg.target_residual,
            )
            if cfg.adaptive_ttl
            else FixedTTLPolicy(cfg.ttl_seconds)
        )
        self.actuator = ProvisioningActuator(
            self.cache, smooth=True, ttl_policy=self.ttl_policy
        )
        self.monitor = ClusterHealthMonitor.for_simulation(
            self.cache, self.webs
        )
        self.loop = EventLoop()
        self.meter = PowerMeter(cfg.power_sample_period)
        self._wire_power_channels()
        self.latencies = SlottedRecorder(cfg.slot_seconds)
        self.active_series = TimeSeries()
        self._retired_ids: set = set()
        self._rng = random.Random(cfg.seed ^ 0xBEEF)
        self.total_requests = 0
        self.served_requests = 0
        self._slot_requests = 0
        # per-slot records, filled at each slot boundary
        self._active_counts: List[int] = []
        self._healthy_counts: List[int] = []
        self._failed_sets: List[FrozenSet[int]] = []
        self._required_counts: List[int] = []
        self._measured: List[float] = []
        self._rates: List[float] = []
        self._ttls_used: List[float] = []
        self._half_lives: List[float] = []
        # in-flight decay sampling state for the open drain window
        self._decay_samples: List = []
        self._decay_last_remap = 0

    # ------------------------------------------------------------- wiring

    def _initial_active(self) -> int:
        cfg = self.config
        rate = self._expected_rate(cfg.users_per_slot[0])
        required = math.ceil(rate / (0.9 * cfg.per_server_rate))
        return min(cfg.num_servers, max(cfg.min_servers, required))

    def _expected_rate(self, users: int) -> float:
        """Closed-loop arrival-rate estimate: users / (think + service)."""
        cfg = self.config
        per_request = cfg.think_time + cfg.web_overhead + 2 * cfg.cache_op_latency
        return users / per_request if per_request > 0 else 0.0

    def _wire_power_channels(self) -> None:
        cfg = self.config
        for server in self.cache.servers:
            self.meter.add_channel(
                name=f"cache-{server.server_id}",
                tier="cache",
                probe=utilization_probe(
                    requests_counter=lambda s=server: s.stats.requests,
                    powered=lambda s=server: s.state.serves_requests,
                    op_cost=cfg.cache_op_latency,
                ),
            )
        for web in self.webs:
            self.meter.add_channel(
                name=f"web-{web.server_id}",
                tier="web",
                probe=utilization_probe(
                    requests_counter=lambda w=web: w.stats.total,
                    powered=lambda: True,
                    op_cost=cfg.web_overhead + 2 * cfg.cache_op_latency,
                ),
            )
        for shard in self.database.shards:
            self.meter.add_channel(
                name=f"db-{shard.shard_id}",
                tier="database",
                probe=busy_time_probe(
                    busy_time=lambda s=shard: s.queue.busy_time,
                    powered=lambda: True,
                ),
            )

    # ------------------------------------------------------------- events

    def _user_request(self, user: SyntheticUser) -> None:
        if user.user_id in self._retired_ids:
            return
        key = user.next_key()
        web = self.webs[self._rng.randrange(len(self.webs))]
        result = web.fetch(key, self.loop.now)
        self.latencies.record(self.loop.now, result.latency)
        self.total_requests += 1
        self.served_requests += 1
        self._slot_requests += 1
        self.loop.schedule_at(
            result.completed + user.next_think(), self._user_request, user
        )

    def _resize_population(self, target: int) -> None:
        delta = self.population.resize_to(target)
        for user in delta.retired:
            self._retired_ids.add(user.user_id)
        for user in delta.spawned:
            first = self.loop.now + self._rng.uniform(0.0, user.think_time or 0.1)
            self.loop.schedule_at(first, self._user_request, user)

    def _sample_power(self) -> None:
        self.meter.sample(self.loop.now)
        self.active_series.append(
            self.loop.now, float(len(self.cache.powered_servers()))
        )
        next_due = self.loop.now + self.config.power_sample_period
        if next_due < self.config.duration:
            self.loop.schedule_at(next_due, self._sample_power)

    # ----------------------------------------------------- remap-miss decay

    def _remap_total(self) -> int:
        """Cumulative remap-miss count over all web servers."""
        return sum(
            web.stats.counts[FetchPath.HIT_OLD]
            + web.stats.counts[FetchPath.FALSE_POSITIVE_DB]
            for web in self.webs
        )

    def _begin_decay_sampling(self, transition) -> None:
        """Arm per-interval remap-miss sampling over one drain window."""
        self._decay_samples = []
        self._decay_last_remap = self._remap_total()
        interval = self.config.decay_sample_seconds
        deadline = transition.deadline
        tick = self.loop.now + interval
        while tick <= deadline:
            self.loop.schedule_at(
                tick, self._decay_tick, tick - transition.started_at
            )
            tick += interval
        self.loop.schedule_at(deadline + 1e-9, self._finish_decay_sampling)

    def _decay_tick(self, offset: float) -> None:
        total = self._remap_total()
        self._decay_samples.append(
            (offset, float(total - self._decay_last_remap))
        )
        self._decay_last_remap = total

    def _finish_decay_sampling(self) -> None:
        if self._decay_samples:
            half_life = self.ttl_policy.observe_decay(self._decay_samples)
            if half_life is not None:
                self._half_lives.append(half_life)
        self._decay_samples = []

    def _healthy_capacity(self) -> int:
        """Powered, non-crashed servers inside the active mapping — the
        servers actually absorbing fresh load right now."""
        failed = self.cache.failed_servers()
        return sum(
            1
            for sid in range(self.cache.active_count)
            if sid not in failed
            and self.cache.server(sid).state.serves_requests
        )

    # ------------------------------------------------------- control slots

    def _control_tick(self, slot: int) -> None:
        """Slot boundary: measure the finished slot, decide, actuate."""
        cfg = self.config
        now = self.loop.now
        # Close any drain window whose TTL passed inside the slot.
        self.cache.finalize_expired(now)
        measured_slot = self.latencies.slot_of(now - cfg.slot_seconds / 2)
        if self.latencies.count(measured_slot):
            observed = self.latencies.pct(measured_slot, cfg.control_percentile)
        else:
            observed = 0.0
        rate = self._slot_requests / cfg.slot_seconds
        self._slot_requests = 0
        projected = self.controller._projected_delay(rate, self.controller.current)
        # The projection supplies the feed-forward signal (saturated M/M/1
        # projects infinity; cap it so the proportional step stays bounded),
        # the measurement carries fault-induced degradation.
        measured = min(max(observed, projected), cfg.delay_bound * 4)
        health = self.monitor.observe(now) if cfg.health_feedback else None
        n_next = self.controller.update(measured, rate, health=health)
        self._active_counts.append(n_next)
        self._healthy_counts.append(self._healthy_capacity())
        self._failed_sets.append(self.cache.failed_servers())
        self._required_counts.append(
            min(
                cfg.num_servers,
                max(
                    cfg.min_servers,
                    math.ceil(rate / (0.9 * cfg.per_server_rate)),
                ),
            )
        )
        self._measured.append(measured)
        self._rates.append(rate)
        if (
            n_next != self.cache.active_count
            and not self.cache.transitions.in_transition(now)
        ):
            record = self.actuator.apply(n_next, now)
            if record is not None and record.ttl is not None:
                self._ttls_used.append(record.ttl)
                transition = self.cache.transitions.current(now)
                if transition is not None:
                    # Arm the power-off finalization and, when learning,
                    # the decay sampling for this window.
                    self.loop.schedule_at(
                        transition.deadline + 1e-9,
                        self.cache.finalize_expired,
                        transition.deadline + 1e-9,
                    )
                    if cfg.adaptive_ttl:
                        self._begin_decay_sampling(transition)

    # ---------------------------------------------------------------- run

    def _prewarm(self) -> None:
        """Fill caches with the initial users' page sets (no DB timing)."""
        n_active = self.cache.active_count
        distinct = list(
            dict.fromkeys(
                key for user in self.population.active for key in user.pages
            )
        )
        owners = self.cache.router.route_many(distinct, n_active)
        for key, server in zip(distinct, owners):
            target = self.cache.server(server)
            if target.state.serves_requests:
                value = self.database.shard_for(key).lookup(key)
                target.set(key, value, now=0.0, size=self.config.item_size)

    def run(self) -> AutopilotReport:
        """Execute the run; returns the report."""
        cfg = self.config
        for slot, target in enumerate(cfg.users_per_slot):
            when = slot * cfg.slot_seconds
            if slot == 0:
                self._resize_population(target)
                if cfg.prewarm:
                    self._prewarm()
            else:
                self.loop.schedule_at(when, self._resize_population, target)
        for slot in range(1, cfg.num_slots + 1):
            self.loop.schedule_at(
                slot * cfg.slot_seconds - 1e-6, self._control_tick, slot
            )
        for event in failure_events_from_schedule(cfg.faults):
            if event.when >= cfg.duration:
                continue
            self.loop.schedule_at(
                event.when, self.cache.fail_server, event.server_id, event.when
            )
            if event.repair_at is not None and event.repair_at < cfg.duration:
                self.loop.schedule_at(
                    event.repair_at,
                    self.cache.repair_server,
                    event.server_id,
                    event.repair_at,
                )
        self.loop.schedule_at(0.0, self._sample_power)
        self.loop.run_until(cfg.duration)

        energy = {"total": self.meter.energy_kwh()}
        for tier in self.meter.tiers():
            energy[tier] = self.meter.energy_kwh(tier)
        label = (
            "closed_loop"
            if (cfg.health_feedback or cfg.adaptive_ttl)
            else "open_loop"
        )
        return AutopilotReport(
            config_label=label,
            duration=cfg.duration,
            slot_seconds=cfg.slot_seconds,
            total_requests=self.total_requests,
            served_requests=self.served_requests,
            active_counts=self._active_counts,
            healthy_counts=self._healthy_counts,
            failed_sets=self._failed_sets,
            required_counts=self._required_counts,
            measured_delays=self._measured,
            arrival_rates=self._rates,
            health_history=list(self.monitor.history),
            latencies=self.latencies,
            transitions=list(self.actuator.applied),
            energy_kwh=energy,
            active_series=self.active_series,
            emergency_scale_ups=self.controller.emergency_scale_ups,
            vetoed_scale_downs=self.controller.vetoed_scale_downs,
            ttls_used=self._ttls_used,
            half_lives=self._half_lives,
            remap_misses_total=self._remap_total(),
        )
