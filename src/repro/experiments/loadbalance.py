"""Routing-only load-balance evaluation (paper Fig. 5).

Fig. 5 does not need the full cluster: the paper replays the real Wikipedia
trace through each scenario's *routing function* under the recorded
provisioning schedule and, per time slot, plots ``min(load)/max(load)`` over
the active servers.  This module does exactly that — route every trace
record, bucket per (slot, server), reduce to the ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.router import Router, StaticRouter
from repro.errors import ConfigurationError
from repro.provisioning.policies import ProvisioningSchedule
from repro.sim.metrics import min_max_ratio
from repro.workload.trace import TraceRecord


@dataclass
class LoadBalanceResult:
    """Per-slot load distribution for one router under one schedule."""

    router_name: str
    slot_seconds: float
    #: per slot: requests handled by each server id that saw traffic
    slot_loads: List[Dict[int, int]]

    def ratios(self) -> List[float]:
        """Fig. 5 metric per slot: min/max over servers *expected* active.

        Servers that were active but received zero requests count as zero
        load (that is the point of the metric — an idle active server is an
        imbalance), so the ratio uses the active-set size recorded at
        evaluation time via the ``_active`` sentinel key.
        """
        out: List[float] = []
        for loads in self.slot_loads:
            active = loads.get(_ACTIVE_SENTINEL)
            if active is None:
                raise ConfigurationError("slot missing active-count sentinel")
            per_server = [
                loads.get(server, 0) for server in range(active)
            ]
            out.append(min_max_ratio(per_server))
        return out

    def worst_ratio(self) -> float:
        """The minimum (worst) slot ratio over the run."""
        return min(self.ratios())

    def mean_ratio(self) -> float:
        """Average slot ratio over the run."""
        ratios = self.ratios()
        return sum(ratios) / len(ratios)


#: Sentinel key inside a slot's load dict holding the active count.
_ACTIVE_SENTINEL = -1


def evaluate_load_balance(
    router: Router,
    trace: Sequence[TraceRecord],
    schedule: ProvisioningSchedule,
) -> LoadBalanceResult:
    """Route *trace* under *schedule* and collect per-slot per-server loads.

    The Static scenario routes over all ``N`` servers regardless of the
    schedule (Table II), which :class:`StaticRouter` already encodes by
    ignoring ``num_active``; its ratio is computed over all ``N``.
    """
    if not trace:
        raise ConfigurationError("empty trace")
    num_slots = schedule.num_slots
    slot_loads: List[Dict[int, int]] = [dict() for _ in range(num_slots)]
    is_static = isinstance(router, StaticRouter)
    for slot in range(num_slots):
        active = router.num_servers if is_static else schedule.counts[slot]
        slot_loads[slot][_ACTIVE_SENTINEL] = active
    # Group the trace per slot, then answer each slot's keys with one
    # vectorized route_many batch (identical decisions to per-record route).
    slot_keys: List[List[str]] = [[] for _ in range(num_slots)]
    for record in trace:
        slot_keys[schedule.slot_of(record.time)].append(record.key)
    for slot, keys in enumerate(slot_keys):
        if not keys:
            continue
        active = slot_loads[slot][_ACTIVE_SENTINEL]
        loads = slot_loads[slot]
        for server in router.route_many(keys, active):
            loads[server] = loads.get(server, 0) + 1
    return LoadBalanceResult(
        router_name=router.name,
        slot_seconds=schedule.slot_seconds,
        slot_loads=slot_loads,
    )


def compare_routers(
    routers: Sequence[Router],
    trace: Sequence[TraceRecord],
    schedule: ProvisioningSchedule,
) -> Dict[str, LoadBalanceResult]:
    """Fig. 5 in one call: every router over the same trace and schedule."""
    results: Dict[str, LoadBalanceResult] = {}
    for router in routers:
        result = evaluate_load_balance(router, trace, schedule)
        name = result.router_name
        # Disambiguate multiple Consistent variants.
        suffix = 2
        while name in results:
            name = f"{result.router_name}#{suffix}"
            suffix += 1
        results[name] = result
    return results
