"""Experiment harnesses that regenerate the paper's tables and figures.

These modules sit *above* every tier (core, bloom, cache, database, web,
sim, power, provisioning, workload) and wire them into the paper's three
measurement setups: the full closed-loop cluster run (Figs. 9-11), the
routing-only load-balance replay (Fig. 5), and the cache-size hit-ratio
sweep (Fig. 6).
"""

from repro.experiments.autopilot import (
    AutopilotConfig,
    AutopilotExperiment,
    AutopilotReport,
)
from repro.experiments.cluster import (
    ClusterExperiment,
    ExperimentConfig,
    ExperimentReport,
    ScenarioSpec,
    run_scenarios,
)
from repro.experiments.failover import (
    FailoverConfig,
    FailoverExperiment,
    FailoverReport,
    FailureEvent,
)
from repro.experiments.hitratio import (
    HitRatioPoint,
    sharded_hit_ratio,
    simulate_hit_ratio,
    sweep_cache_sizes,
)
from repro.experiments.loadbalance import (
    LoadBalanceResult,
    compare_routers,
    evaluate_load_balance,
)

__all__ = [
    "AutopilotConfig",
    "AutopilotExperiment",
    "AutopilotReport",
    "ClusterExperiment",
    "ExperimentConfig",
    "ExperimentReport",
    "FailoverConfig",
    "FailoverExperiment",
    "FailoverReport",
    "FailureEvent",
    "HitRatioPoint",
    "LoadBalanceResult",
    "ScenarioSpec",
    "compare_routers",
    "evaluate_load_balance",
    "run_scenarios",
    "sharded_hit_ratio",
    "simulate_hit_ratio",
    "sweep_cache_sizes",
]
