"""Failure-injection experiment: crashes under load, with and without replicas.

Extends the paper's Section III-E design into a measurable experiment: a
closed-loop population drives a replicated cache tier while a crash/repair
schedule runs; the report shows the database-fallback rate over time — the
spike at each crash, its height as a function of the replication factor
(Eq. 3), and the recovery after repair.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.bloom.config import BloomConfig, optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.replication import ReplicatedProteusRouter
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.resilience import FaultSchedule
from repro.sim.events import EventLoop
from repro.sim.metrics import SlottedRecorder, TimeSeries
from repro.web.replicated import ReplicatedWebServer
from repro.workload.synthetic import UserPopulation


@dataclass(frozen=True)
class FailureEvent:
    """One injected fault: a crash at *when*, optionally repaired later."""

    when: float
    server_id: int
    repair_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.when < 0:
            raise ConfigurationError(f"when must be >= 0, got {self.when}")
        if self.repair_at is not None and self.repair_at <= self.when:
            raise ConfigurationError("repair_at must be after the crash")


def failure_events_from_schedule(schedule: FaultSchedule) -> List[FailureEvent]:
    """Convert a shared :class:`~repro.resilience.FaultSchedule` to the
    simulator's crash/repair events.

    Only the ``kills_server`` plans map — a crash is the simulator's whole
    fault vocabulary; delay/reset/partial-write plans have no sim
    equivalent and are skipped.  This is the bridge that lets a chaos test
    hand the *same scripted outage* to both substrates and compare their
    degraded-path accounting.
    """
    events = []
    for entry in schedule.entries:
        if entry.plan.kills_server:
            events.append(
                FailureEvent(
                    when=entry.at,
                    server_id=entry.server_id,
                    repair_at=entry.clear_at,
                )
            )
    return events


@dataclass
class FailoverConfig:
    """Knobs for one failure-injection run."""

    duration: float = 120.0
    num_servers: int = 8
    replicas: int = 2
    num_users: int = 80
    catalogue_size: int = 6000
    cache_capacity_bytes: int = 4096 * 2000
    pages_per_user: int = 30
    think_time: float = 0.5
    #: drain-window length for smooth transitions (flows to the cache tier
    #: like :attr:`ExperimentConfig.ttl`; previously hardcoded at 60 s).
    ttl_seconds: float = 60.0
    failures: List[FailureEvent] = field(default_factory=list)
    slot_seconds: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ttl_seconds <= 0:
            raise ConfigurationError(
                f"ttl_seconds must be > 0, got {self.ttl_seconds}"
            )
        for event in self.failures:
            if not 0 <= event.server_id < self.num_servers:
                raise ConfigurationError(
                    f"failure targets unknown server {event.server_id}"
                )
            if event.when >= self.duration:
                raise ConfigurationError("failure scheduled after the run ends")


@dataclass
class FailoverReport:
    """Measurements of one run."""

    replicas: int
    total_requests: int
    db_reads: int
    failovers: int
    #: per-slot fraction of requests that fell through to the database
    db_fraction: TimeSeries
    #: per-slot failover counts
    failover_series: TimeSeries

    @property
    def overall_db_fraction(self) -> float:
        return self.db_reads / self.total_requests if self.total_requests else 0.0

    def peak_db_fraction(self) -> float:
        """Worst slot — the crash spike height."""
        return max(self.db_fraction.values) if len(self.db_fraction) else 0.0


class FailoverExperiment:
    """Closed-loop load + a crash/repair schedule over a replicated tier."""

    def __init__(self, config: FailoverConfig) -> None:
        self.config = config
        router = ReplicatedProteusRouter(
            config.num_servers, replicas=config.replicas, ring_size=2 ** 24
        )
        bloom: BloomConfig = optimal_config(
            max(1024, config.cache_capacity_bytes // 4096)
        )
        self.cache = CacheCluster(
            router,
            capacity_bytes=config.cache_capacity_bytes,
            ttl=config.ttl_seconds,
            bloom_config=bloom,
        )
        self.database = DatabaseCluster(4, seed=config.seed)
        self.web = ReplicatedWebServer(0, self.cache, self.database,
                                       seed=config.seed)
        self.population = UserPopulation(
            config.catalogue_size,
            pages_per_user=config.pages_per_user,
            think_time=config.think_time,
            seed=config.seed,
        )
        self.loop = EventLoop()
        self._rng = random.Random(config.seed ^ 0xFA11)
        self._requests = SlottedRecorder(config.slot_seconds)
        self._db_hits = SlottedRecorder(config.slot_seconds)
        self._failover_hits = SlottedRecorder(config.slot_seconds)
        self.total_requests = 0

    def _user_request(self, user) -> None:
        key = user.next_key()
        failovers_before = self.web.failovers
        result = self.web.fetch(key, self.loop.now)
        self.total_requests += 1
        self._requests.record(self.loop.now, 1.0)
        self._db_hits.record(
            self.loop.now, 1.0 if result.touched_database else 0.0
        )
        self._failover_hits.record(
            self.loop.now, float(self.web.failovers - failovers_before)
        )
        self.loop.schedule_at(
            result.completed + user.next_think(), self._user_request, user
        )

    def run(self) -> FailoverReport:
        """Execute the run; returns the report."""
        config = self.config
        self.population.resize_to(config.num_users)
        for user in self.population.active:
            first = self._rng.uniform(0.0, max(0.1, user.think_time))
            self.loop.schedule_at(first, self._user_request, user)
        for event in config.failures:
            self.loop.schedule_at(
                event.when, self.cache.fail_server, event.server_id, event.when
            )
            if event.repair_at is not None and event.repair_at < config.duration:
                self.loop.schedule_at(
                    event.repair_at,
                    self.cache.repair_server,
                    event.server_id,
                    event.repair_at,
                )
        self.loop.run_until(config.duration)

        db_fraction = TimeSeries()
        for slot in self._requests.slots():
            requests = self._requests.count(slot)
            db = sum(self._db_hits.samples(slot))
            midpoint = (slot + 0.5) * config.slot_seconds
            db_fraction.append(midpoint, db / requests if requests else 0.0)
        failover_series = self._failover_hits.series("sum")
        return FailoverReport(
            replicas=config.replicas,
            total_requests=self.total_requests,
            db_reads=self.web.database_reads,
            failovers=self.web.failovers,
            db_fraction=db_fraction,
            failover_series=failover_series,
        )
