"""Cache-size vs hit-ratio simulation (paper Fig. 6).

The paper replays the Wikipedia trace against memcached instances of
different memory sizes and reports the hit ratio: "when each Memcached
server uses 1GB memory (with 4KB data per page), the hit ratio reaches
above 80%".  We replay a trace through a single LRU-bounded
:class:`~repro.cache.store.KeyValueStore` per cache size — the per-server
view is equivalent because routing partitions keys, and hit ratio composes
over partitions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.cache.eviction import make_policy
from repro.cache.store import KeyValueStore
from repro.core.router import Router
from repro.errors import ConfigurationError
from repro.workload.trace import TraceRecord


@dataclass(frozen=True)
class HitRatioPoint:
    """One Fig. 6 sample: cache capacity and the measured hit ratio."""

    capacity_bytes: int
    hit_ratio: float
    distinct_keys: int
    evictions: int


def simulate_hit_ratio(
    trace: Sequence[TraceRecord],
    capacity_bytes: int,
    item_size: int = 4096,
    eviction: str = "lru",
    warmup_fraction: float = 0.1,
) -> HitRatioPoint:
    """Replay *trace* through one bounded cache; count hits after warm-up.

    Args:
        trace: time-sorted requests.
        capacity_bytes: cache memory (Fig. 6 sweeps this).
        item_size: bytes per cached object (paper: 4 KB pages).
        eviction: eviction policy name.
        warmup_fraction: leading fraction of the trace excluded from the
            reported ratio (cold-start fill distorts small caches less this
            way; the paper's long trace makes its cold start negligible).
    """
    if not trace:
        raise ConfigurationError("empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ConfigurationError(
            f"warmup_fraction must be in [0, 1), got {warmup_fraction}"
        )
    store = KeyValueStore(
        capacity_bytes=capacity_bytes,
        policy=make_policy(eviction),
        default_item_size=item_size,
    )
    warmup_end = int(len(trace) * warmup_fraction)
    hits = 0
    measured = 0
    seen = set()
    for index, record in enumerate(trace):
        value = store.get(record.key, record.time)
        if value is None:
            store.set(record.key, True, now=record.time, size=item_size)
        if index >= warmup_end:
            measured += 1
            if value is not None:
                hits += 1
        seen.add(record.key)
    return HitRatioPoint(
        capacity_bytes=capacity_bytes,
        hit_ratio=hits / measured if measured else 0.0,
        distinct_keys=len(seen),
        evictions=store.stats.evictions,
    )


def sweep_cache_sizes(
    trace: Sequence[TraceRecord],
    capacities: Sequence[int],
    item_size: int = 4096,
    eviction: str = "lru",
) -> List[HitRatioPoint]:
    """Fig. 6: hit ratio at each capacity (fresh cache per point)."""
    return [
        simulate_hit_ratio(trace, capacity, item_size=item_size, eviction=eviction)
        for capacity in capacities
    ]


def sharded_hit_ratio(
    trace: Sequence[TraceRecord],
    router: Router,
    num_active: int,
    capacity_bytes_per_server: int,
    item_size: int = 4096,
) -> float:
    """Hit ratio of a *routed* cluster (validates the composition argument).

    Routes each request to its server's private store; the aggregate ratio
    should track :func:`simulate_hit_ratio` at the summed capacity, which a
    test asserts.
    """
    stores = {
        server: KeyValueStore(
            capacity_bytes=capacity_bytes_per_server,
            default_item_size=item_size,
        )
        for server in range(num_active)
    }
    hits = 0
    for record in trace:
        server = router.route(record.key, num_active)
        store = stores[server]
        if store.get(record.key, record.time) is not None:
            hits += 1
        else:
            store.set(record.key, True, now=record.time, size=item_size)
    return hits / len(trace) if trace else 0.0
