"""The full 3-tier cluster experiment (paper Figs. 9, 10, 11).

Wires the whole testbed of Fig. 3 in simulation: closed-loop synthetic
users (the RBE tier) drive web servers, which execute Algorithm 2 against
the cache tier and the sharded database; a provisioning actuator replays a
fixed ``n(t)`` schedule; a PDU-style meter samples power every 15 s.

One :class:`ClusterExperiment` runs one Table II scenario.  The paper's
methodology is preserved exactly: *the same* schedule, data, and workload
seeds are applied to all four scenarios, so the only varying factors are
the load-distribution algorithm and the transition behaviour.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Dict, List, Optional

from repro.bloom.config import BloomConfig, optimal_config
from repro.cache.cluster import CacheCluster
from repro.core.ring import RING_BACKENDS
from repro.core.router import (
    ConsistentRouter,
    NaiveRouter,
    ProteusRouter,
    Router,
    StaticRouter,
    make_router,
)
from repro.database.cluster import DatabaseCluster
from repro.errors import ConfigurationError
from repro.power.meter import PowerMeter, busy_time_probe, utilization_probe
from repro.provisioning.actuator import AppliedTransition, ProvisioningActuator
from repro.provisioning.policies import ProvisioningSchedule, static_schedule
from repro.sim.events import EventLoop
from repro.sim.latency import Constant, Exponential
from repro.sim.metrics import SlottedRecorder, TimeSeries
from repro.core.retrieval import FetchPath, RetrievalConfig
from repro.web.frontend import WebServer
from repro.workload.synthetic import SyntheticUser, UserPopulation


@dataclass(frozen=True)
class ScenarioSpec:
    """One Table II scenario: router family + provisioning behaviour.

    ``coalesce_misses`` is a per-scenario override of the engine's dog-pile
    protection: ``None`` (the default) defers to
    :attr:`ExperimentConfig.coalesce_misses`, so ablations can flip the flag
    for one scenario without forking the shared config.
    """

    name: str
    router_factory: Callable[[int], Router]
    smooth: bool
    dynamic: bool
    coalesce_misses: Optional[bool] = None
    #: ring backend the router routes with ("proteus" / "multiprobe" /
    #: "power"); None for the non-ring scenarios (Static / Naive /
    #: Consistent).  Informational — the factory already binds it.
    ring_backend: Optional[str] = None

    def with_coalescing(self, enabled: bool = True) -> "ScenarioSpec":
        """This scenario with dog-pile coalescing forced on (or off)."""
        suffix = "+coalesce" if enabled else "-coalesce"
        name = self.name if self.name.endswith(suffix) else self.name + suffix
        return replace(self, name=name, coalesce_misses=enabled)

    @staticmethod
    def static() -> "ScenarioSpec":
        """All servers on, hash+modulo."""
        return ScenarioSpec("Static", StaticRouter, smooth=False, dynamic=False)

    @staticmethod
    def naive() -> "ScenarioSpec":
        """Dynamic provisioning, hash+modulo, abrupt transitions."""
        return ScenarioSpec("Naive", NaiveRouter, smooth=False, dynamic=True)

    @staticmethod
    def consistent() -> "ScenarioSpec":
        """Dynamic provisioning, n^2/2 random virtual nodes, abrupt."""
        return ScenarioSpec(
            "Consistent",
            ConsistentRouter.quadratic_variant,
            smooth=False,
            dynamic=True,
        )

    @staticmethod
    def proteus(ring_backend: str = "proteus") -> "ScenarioSpec":
        """Dynamic provisioning, smooth transitions, pluggable placement.

        ``ring_backend`` selects the routing scheme behind the smooth-
        transition machinery: ``"proteus"`` (Algorithm 1, the paper's
        scenario), ``"multiprobe"`` or ``"power"`` (the O(1) alternatives);
        non-default backends are named ``Proteus[<backend>]`` so reports
        from a backend ablation don't collide.
        """
        ring_backend = RING_BACKENDS.check(ring_backend)
        name = (
            "Proteus"
            if ring_backend == "proteus"
            else f"Proteus[{ring_backend}]"
        )
        return ScenarioSpec(
            name,
            partial(make_router, ring_backend),
            smooth=True,
            dynamic=True,
            ring_backend=ring_backend,
        )

    @staticmethod
    def all_four(ring_backend: str = "proteus") -> List["ScenarioSpec"]:
        """The paper's presentation order."""
        return [
            ScenarioSpec.static(),
            ScenarioSpec.naive(),
            ScenarioSpec.consistent(),
            ScenarioSpec.proteus(ring_backend=ring_backend),
        ]


@dataclass
class ExperimentConfig:
    """Shared knobs for one experiment run (paper Section V defaults, scaled).

    The paper's testbed: 10 web servers, 10 cache servers, 7 DB shards,
    think time 0.5 s, 50-page user sets.  Durations and rates are scaled so
    a full 4-scenario comparison runs in minutes of wall-clock; every knob
    is explicit so benches can scale up.
    """

    schedule: ProvisioningSchedule
    users_per_slot: List[int]
    num_cache_servers: int = 10
    num_web_servers: int = 10
    num_db_shards: int = 7
    catalogue_size: int = 20_000
    cache_capacity_bytes: int = 4096 * 2000  # 2000 pages per server
    item_size: int = 4096
    pages_per_user: int = 50
    think_time: float = 0.5
    zipf_alpha: float = 0.9
    ttl: float = 30.0
    db_service_mean: float = 0.050
    cache_op_latency: float = 0.001
    web_overhead: float = 0.002
    power_sample_period: float = 15.0
    plot_slots: int = 48
    bloom_config: Optional[BloomConfig] = None
    seed: int = 0
    #: pre-populate caches with the initial users' page sets at t=0 (the
    #: paper's runs start against a warm tier; a cold-start flood would put
    #: the same spike into *every* scenario and mask the transition signal).
    prewarm: bool = True
    #: latency samples before this time are not recorded (residual warm-up).
    warmup_seconds: float = 0.0
    #: install a BackgroundMigrator on every smooth transition (the
    #: push-assisted extension; only affects the Proteus scenario).
    push_migration: bool = False
    #: dog-pile coalescing on every web server (the retrieval engine's
    #: miss-storm protection; off in the paper's evaluation — the Fig. 9
    #: spike depends on the dog pile being possible).
    coalesce_misses: bool = False
    #: ring backend for the smooth-transition scenario when specs are not
    #: given explicitly ("proteus" / "multiprobe" / "power").
    ring_backend: str = "proteus"
    #: arm every web server's frontend-local hot-key cache (the sketch
    #: elects hot keys online; local hits skip the cache tier entirely).
    hot_key_cache: bool = False
    #: power-of-two-choices read fan-in for hot keys (replicated reads).
    d_choices: int = 1

    def __post_init__(self) -> None:
        self.ring_backend = RING_BACKENDS.check(self.ring_backend)
        if len(self.users_per_slot) != self.schedule.num_slots:
            raise ConfigurationError(
                f"users_per_slot has {len(self.users_per_slot)} entries, "
                f"schedule has {self.schedule.num_slots} slots"
            )
        if max(self.schedule.counts) > self.num_cache_servers:
            raise ConfigurationError(
                "schedule asks for more cache servers than the fleet has"
            )
        if self.plot_slots < 1:
            raise ConfigurationError(
                f"plot_slots must be >= 1, got {self.plot_slots}"
            )

    @property
    def duration(self) -> float:
        return self.schedule.duration


@dataclass
class ExperimentReport:
    """Everything the Figs. 9-11 benches read off one scenario run."""

    scenario: str
    duration: float
    latencies: SlottedRecorder
    power_series: Dict[str, TimeSeries]
    energy_kwh: Dict[str, float]
    active_series: TimeSeries
    transitions: List[AppliedTransition]
    fetch_paths: Dict[str, int]
    total_requests: int
    db_requests: int
    hit_ratio: float

    def latency_percentiles(self, pct: float = 99.9) -> TimeSeries:
        """Per-plot-slot latency percentile (the Fig. 9 curves)."""
        return self.latencies.series("pct", pct_rank=pct)

    def peak_latency(self, pct: float = 99.9) -> float:
        """Worst per-slot percentile over the run (the spike height)."""
        series = self.latency_percentiles(pct)
        return max(series.values) if len(series) else 0.0

    def median_slot_latency(self, pct: float = 99.9) -> float:
        """Median across slots of the per-slot percentile (the baseline)."""
        series = self.latency_percentiles(pct)
        if not len(series):
            return 0.0
        ordered = sorted(series.values)
        return ordered[len(ordered) // 2]

    def spike_ratio(self, pct: float = 99.9) -> float:
        """Peak over baseline — ~1 means no transition spike (Proteus)."""
        baseline = self.median_slot_latency(pct)
        return self.peak_latency(pct) / baseline if baseline > 0 else 0.0

    def to_dict(self, pct: float = 99.9) -> dict:
        """A JSON-serializable summary (archived by benches and the CLI).

        Keeps the derived series (latency percentiles per plot slot, power
        per tier, active counts), not the raw samples.
        """
        latency = self.latency_percentiles(pct)
        return {
            "scenario": self.scenario,
            "duration": self.duration,
            "total_requests": self.total_requests,
            "db_requests": self.db_requests,
            "hit_ratio": self.hit_ratio,
            "fetch_paths": dict(self.fetch_paths),
            "energy_kwh": dict(self.energy_kwh),
            "transitions": [
                {"when": t.when, "n_old": t.n_old, "n_new": t.n_new,
                 "smooth": t.smooth}
                for t in self.transitions
            ],
            "latency_pct": pct,
            "latency_series": {
                "times": list(latency.times),
                "values": list(latency.values),
            },
            "power_series": {
                tier: {"times": list(series.times),
                       "values": list(series.values)}
                for tier, series in self.power_series.items()
            },
            "active_series": {
                "times": list(self.active_series.times),
                "values": list(self.active_series.values),
            },
        }

    def save(self, path, pct: float = 99.9) -> None:
        """Write :meth:`to_dict` as JSON."""
        import json
        from pathlib import Path

        Path(path).write_text(
            json.dumps(self.to_dict(pct), indent=2) + "\n", encoding="utf-8"
        )


class ClusterExperiment:
    """Builds and runs one scenario end to end."""

    def __init__(self, spec: ScenarioSpec, config: ExperimentConfig) -> None:
        self.spec = spec
        self.config = config
        cfg = config
        router = spec.router_factory(cfg.num_cache_servers)
        if spec.dynamic:
            schedule = cfg.schedule
            initial_active = schedule.counts[0]
        else:
            schedule = static_schedule(
                cfg.num_cache_servers,
                cfg.schedule.num_slots,
                cfg.schedule.slot_seconds,
            )
            initial_active = cfg.num_cache_servers
        self.schedule = schedule
        bloom = cfg.bloom_config or optimal_config(
            max(1024, cfg.cache_capacity_bytes // cfg.item_size)
        )
        self.cache = CacheCluster(
            router,
            capacity_bytes=cfg.cache_capacity_bytes,
            initial_active=initial_active,
            ttl=cfg.ttl,
            bloom_config=bloom,
        )
        self.database = DatabaseCluster(
            cfg.num_db_shards,
            service_model=Exponential(cfg.db_service_mean),
            seed=cfg.seed,
        )
        coalesce = (
            spec.coalesce_misses
            if spec.coalesce_misses is not None
            else cfg.coalesce_misses
        )
        retrieval = RetrievalConfig(
            coalesce_misses=coalesce,
            hot_key_cache=cfg.hot_key_cache,
            d_choices=cfg.d_choices,
        )
        self.webs: List[WebServer] = [
            WebServer(
                i,
                self.cache,
                self.database,
                cache_latency=Constant(cfg.cache_op_latency),
                web_overhead=Constant(cfg.web_overhead),
                seed=cfg.seed,
                config=retrieval,
            )
            for i in range(cfg.num_web_servers)
        ]
        self.population = UserPopulation(
            catalogue_size=cfg.catalogue_size,
            pages_per_user=cfg.pages_per_user,
            think_time=cfg.think_time,
            alpha=cfg.zipf_alpha,
            seed=cfg.seed,
        )
        self.actuator = ProvisioningActuator(
            self.cache,
            smooth=spec.smooth,
            push_migration=cfg.push_migration,
        )
        self.loop = EventLoop()
        self.meter = PowerMeter(cfg.power_sample_period)
        self._wire_power_channels()
        plot_width = (cfg.duration - cfg.warmup_seconds) / cfg.plot_slots
        self.latencies = SlottedRecorder(plot_width, start=cfg.warmup_seconds)
        self.active_series = TimeSeries()
        self._retired_ids: set = set()
        self._rng = random.Random(cfg.seed ^ 0xBEEF)
        self.total_requests = 0

    # ------------------------------------------------------------- wiring

    def _wire_power_channels(self) -> None:
        cfg = self.config
        for server in self.cache.servers:
            self.meter.add_channel(
                name=f"cache-{server.server_id}",
                tier="cache",
                probe=utilization_probe(
                    requests_counter=lambda s=server: s.stats.requests,
                    powered=lambda s=server: s.state.serves_requests,
                    op_cost=cfg.cache_op_latency,
                ),
            )
        for web in self.webs:
            self.meter.add_channel(
                name=f"web-{web.server_id}",
                tier="web",
                probe=utilization_probe(
                    requests_counter=lambda w=web: w.stats.total,
                    powered=lambda: True,
                    op_cost=cfg.web_overhead + 2 * cfg.cache_op_latency,
                ),
            )
        for shard in self.database.shards:
            self.meter.add_channel(
                name=f"db-{shard.shard_id}",
                tier="database",
                probe=busy_time_probe(
                    busy_time=lambda s=shard: s.queue.busy_time,
                    powered=lambda: True,
                ),
            )

    # ------------------------------------------------------------- events

    def _user_request(self, user: SyntheticUser) -> None:
        if user.user_id in self._retired_ids:
            return
        key = user.next_key()
        web = self.webs[self._rng.randrange(len(self.webs))]
        result = web.fetch(key, self.loop.now)
        if self.loop.now >= self.config.warmup_seconds:
            self.latencies.record(self.loop.now, result.latency)
        self.total_requests += 1
        self.loop.schedule_at(
            result.completed + user.next_think(), self._user_request, user
        )

    def _resize_population(self, target: int) -> None:
        delta = self.population.resize_to(target)
        for user in delta.retired:
            self._retired_ids.add(user.user_id)
        for user in delta.spawned:
            first = self.loop.now + self._rng.uniform(0.0, user.think_time or 0.1)
            self.loop.schedule_at(first, self._user_request, user)

    def _sample_power(self) -> None:
        self.meter.sample(self.loop.now)
        self.active_series.append(
            self.loop.now, float(len(self.cache.powered_servers()))
        )
        next_due = self.loop.now + self.config.power_sample_period
        if next_due < self.config.duration:
            self.loop.schedule_at(next_due, self._sample_power)

    # ---------------------------------------------------------------- run

    def _prewarm(self) -> None:
        """Fill caches with the initial users' page sets (no DB timing).

        Mimics starting the measurement against an already-warm tier: each
        page is installed at its *routed* owner under the initial mapping,
        with values taken from the authoritative store directly.
        """
        n_active = self.cache.active_count
        distinct = list(
            dict.fromkeys(
                key for user in self.population.active for key in user.pages
            )
        )
        # One vectorized routing pass over the whole warm set instead of
        # one hash + ring walk per page.
        owners = self.cache.router.route_many(distinct, n_active)
        for key, server in zip(distinct, owners):
            target = self.cache.server(server)
            if target.state.serves_requests:
                value = self.database.shard_for(key).lookup(key)
                target.set(key, value, now=0.0, size=self.config.item_size)

    def run(self) -> ExperimentReport:
        """Execute the scenario; returns the measurement report."""
        cfg = self.config
        if self.spec.dynamic:
            self.actuator.install(cfg.schedule, self.loop)
        for slot, target in enumerate(cfg.users_per_slot):
            when = slot * cfg.schedule.slot_seconds
            if slot == 0:
                self._resize_population(target)
                if cfg.prewarm:
                    self._prewarm()
            else:
                self.loop.schedule_at(when, self._resize_population, target)
        self.loop.schedule_at(0.0, self._sample_power)
        self.loop.run_until(cfg.duration)

        fetch_paths = {path.value: 0 for path in FetchPath}
        for web in self.webs:
            for path, count in web.stats.counts.items():
                fetch_paths[path.value] += count
        energy = {"total": self.meter.energy_kwh()}
        for tier in self.meter.tiers():
            energy[tier] = self.meter.energy_kwh(tier)
        power_series = {"total": self.meter.total_series}
        power_series.update(self.meter.tier_series)
        return ExperimentReport(
            scenario=self.spec.name,
            duration=cfg.duration,
            latencies=self.latencies,
            power_series=power_series,
            energy_kwh=energy,
            active_series=self.active_series,
            transitions=list(self.actuator.applied),
            fetch_paths=fetch_paths,
            total_requests=self.total_requests,
            db_requests=self.database.total_requests(),
            hit_ratio=self.cache.total_hit_ratio(),
        )


def run_scenarios(
    config: ExperimentConfig, specs: Optional[List[ScenarioSpec]] = None
) -> Dict[str, ExperimentReport]:
    """Run several scenarios under the identical config (the paper's method).

    When *specs* is omitted, the default four scenarios route their smooth
    member with :attr:`ExperimentConfig.ring_backend`.
    """
    reports: Dict[str, ExperimentReport] = {}
    for spec in specs or ScenarioSpec.all_four(ring_backend=config.ring_backend):
        reports[spec.name] = ClusterExperiment(spec, config).run()
    return reports
