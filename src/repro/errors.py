"""Exception hierarchy for the Proteus reproduction.

All library-raised exceptions derive from :class:`ProteusError` so callers can
catch everything from this package with one handler while still being able to
discriminate between configuration mistakes, runtime protocol violations, and
capacity problems.
"""

from __future__ import annotations


class ProteusError(Exception):
    """Base class for every exception raised by this package."""


class ConfigurationError(ProteusError):
    """A component was constructed or configured with invalid parameters."""


class PlacementError(ProteusError):
    """Virtual-node placement could not satisfy the balance condition.

    Raised when Algorithm 1 cannot borrow a feasible host range, which the
    paper proves never happens for valid inputs; seeing this exception means
    the inputs violated a precondition (e.g. non-positive key-space size).
    """


class RoutingError(ProteusError):
    """A request could not be mapped to any active cache server."""


class TransitionError(ProteusError):
    """A smooth-provisioning transition was driven incorrectly.

    Examples: starting a transition while another one for the same server is
    still in its TTL drain window, or committing a transition that was never
    started.
    """


class CacheError(ProteusError):
    """Base class for cache-server errors."""


class CacheKeyError(CacheError, KeyError):
    """The requested key is not present in the cache."""


class CapacityError(CacheError):
    """An item cannot fit in the cache even after eviction."""


class DigestError(ProteusError):
    """The counting-Bloom-filter digest was used inconsistently.

    Raised, for instance, when deleting a key that was never inserted —
    the paper notes this "will never happen" when the digest is driven only
    by item link/unlink, so we surface it loudly instead of corrupting
    counters silently.
    """


class DigestBroadcastError(TransitionError):
    """The digest broadcast that arms a transition failed on some servers.

    Carries ``failures`` — a map from server id to the exception that made
    that server's snapshot/fetch fail — so callers can retry, exclude the
    dead servers, or surface the detail.  The transition is *not* armed when
    this is raised: routing epochs are untouched and a later ``scale_to``
    may retry from scratch.
    """

    def __init__(self, message: str, failures=None) -> None:
        super().__init__(message)
        #: server id -> exception for every server whose digest calls failed
        self.failures = dict(failures or {})


class ProtocolError(ProteusError):
    """A malformed memcached-protocol request or response was seen."""


class TransportError(ProteusError):
    """A network operation against a cache server failed in transit.

    Covers connection resets, unexpected EOF mid-reply, and per-operation
    timeouts — the *transient* fault class: the request may be retried on a
    fresh connection, as opposed to :class:`ProtocolError` proper (the bytes
    arrived but were nonsense) or :class:`ConfigurationError` (retrying
    cannot help).
    """


class DeadlineExceeded(ProteusError):
    """A request's time budget ran out before the operation completed."""


class OverloadError(ProteusError):
    """Load was shed somewhere along the request path.

    The *never-retry* fault class: a shed means some layer deliberately
    refused work it could not absorb, so retrying immediately would feed
    the very overload that caused the refusal (the retry-storm
    amplification loop).  :meth:`repro.resilience.RetryPolicy.is_transient`
    therefore always answers ``False`` for this family, regardless of how
    the transient tuple is configured.
    """


class ServerBusyError(OverloadError):
    """The server answered ``SERVER_ERROR busy`` — it shed the command.

    Unlike :class:`ProtocolError`, the connection is still perfectly
    framed (the server emitted a well-formed error line in the command's
    reply slot), so the stream is *not* poisoned and later pipelined
    commands on the same connection may still succeed.
    """


class ClientOverloadError(OverloadError):
    """A local bound refused the command before it was ever written.

    Raised when a :class:`~repro.net.client.MemcachedClient` already has
    its configured window of unanswered commands queued, or when every
    pooled connection is at its window and the request's deadline cannot
    afford to queue behind them.
    """


class SimulationError(ProteusError):
    """The discrete-event simulation was driven into an invalid state."""


class ProvisioningError(ProteusError):
    """A provisioning schedule or actuator operation is invalid."""
