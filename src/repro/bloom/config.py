"""Counting-Bloom-filter sizing (paper Section IV-B).

Given the expected number of in-cache keys ``kappa``, the number of hash
functions ``h``, and bounds on the false-positive and false-negative rates
``(pp, pn)``, compute the memory-minimal configuration ``(l, b)``:

* false positive rate  ``Gp(l)   = (1 - e^(-kappa*h/l))^h``          (Eq. 4)
* false negative bound ``Gn(l,b) = l * (e*kappa*h / (2^b * l))^(2^b)`` (Eq. 5)
* objective: minimize ``l*b``  s.t.  ``Gp(l) <= pp`` and ``Gn(l,b) <= pn``
  (Eq. 6)

The paper shows (Eqs. 7-9) that at fixed ``l*b`` the false-negative bound
improves faster by shrinking ``l`` than by shrinking ``b``, so the optimum
sits at the *smallest feasible* ``l`` (from the false-positive constraint)
with the smallest integer ``b`` that then satisfies the false-negative
constraint.  Eq. 10 gives the closed form via the Lambert W function:

    l = -kappa*h / ln(1 - pp^(1/h))
    b = log2( beta * e^{ W(-ln(gamma) / beta) } ),   beta = e*kappa*h/l,
                                                     gamma = pn/l

(The paper prints ``b = ln(...)``; dimensional analysis of Eq. 5 — solve
``x*ln(beta/x) = ln(gamma)`` for ``x = 2^b`` — shows the logarithm must be
base 2.  We implement the corrected form and cross-check it against integer
enumeration, which the paper itself recommends "in practice".)

The worked example of Section IV-B — ``kappa=1e4, h=4, pp=pn=1e-4`` yielding
``l = 4e5, b = 3`` and about 150 KB per digest — is verified in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Widest counter we will ever consider; real deployments use b <= 8.
MAX_COUNTER_BITS = 16


def false_positive_rate(num_counters: int, kappa: int, num_hashes: int) -> float:
    """Eq. 4: ``Gp(l) = (1 - e^(-kappa*h/l))^h``."""
    if num_counters < 1:
        raise ConfigurationError(f"num_counters must be >= 1, got {num_counters}")
    if kappa < 0:
        raise ConfigurationError(f"kappa must be >= 0, got {kappa}")
    if kappa == 0:
        return 0.0
    # -expm1(-x) instead of 1-exp(-x): avoids cancellation for tiny x.
    return (-math.expm1(-kappa * num_hashes / num_counters)) ** num_hashes


def false_negative_bound(
    num_counters: int, counter_bits: int, kappa: int, num_hashes: int
) -> float:
    """Eq. 5: ``Gn(l, b) = l * (e*kappa*h / (2^b * l))^(2^b)``.

    This is the union bound on the probability that *any* counter overflows a
    ``b``-bit width after ``kappa`` insertions; overflow (then underflow) is
    the only source of false negatives in Proteus.
    """
    if num_counters < 1:
        raise ConfigurationError(f"num_counters must be >= 1, got {num_counters}")
    if counter_bits < 1:
        raise ConfigurationError(f"counter_bits must be >= 1, got {counter_bits}")
    if kappa == 0:
        return 0.0
    width = 2 ** counter_bits
    base = math.e * kappa * num_hashes / (width * num_counters)
    try:
        return num_counters * base ** width
    except OverflowError:
        return math.inf


def minimal_counters(kappa: int, num_hashes: int, pp: float) -> int:
    """Smallest ``l`` with ``Gp(l) <= pp``: ``l = ceil(-kappa*h / ln(1 - pp^(1/h)))``."""
    if not 0.0 < pp < 1.0:
        raise ConfigurationError(f"pp must be in (0, 1), got {pp}")
    if kappa < 1:
        raise ConfigurationError(f"kappa must be >= 1, got {kappa}")
    if num_hashes < 1:
        raise ConfigurationError(f"num_hashes must be >= 1, got {num_hashes}")
    root = pp ** (1.0 / num_hashes)
    # log1p keeps precision when root is tiny (very strict pp bounds).
    return math.ceil(-kappa * num_hashes / math.log1p(-root))


def counter_bits_closed_form(
    num_counters: int, kappa: int, num_hashes: int, pn: float
) -> float:
    """Real-valued ``b`` from the (corrected) Eq. 10 Lambert-W closed form.

    Returns the continuous solution of ``Gn(l, b) = pn``; callers round up to
    the next integer.  Requires scipy for the Lambert W function.
    """
    from scipy.special import lambertw

    if not 0.0 < pn < 1.0:
        raise ConfigurationError(f"pn must be in (0, 1), got {pn}")
    beta = math.e * kappa * num_hashes / num_counters
    gamma = pn / num_counters
    arg = -math.log(gamma) / beta
    w = float(lambertw(arg).real)
    x = beta * math.exp(w)  # x = 2^b
    return math.log2(x)


def counter_bits_enumerated(
    num_counters: int, kappa: int, num_hashes: int, pn: float
) -> int:
    """Smallest integer ``b`` with ``Gn(l, b) <= pn`` (the paper's practical route)."""
    if not 0.0 < pn < 1.0:
        raise ConfigurationError(f"pn must be in (0, 1), got {pn}")
    for bits in range(1, MAX_COUNTER_BITS + 1):
        if false_negative_bound(num_counters, bits, kappa, num_hashes) <= pn:
            return bits
    raise ConfigurationError(
        f"no counter width <= {MAX_COUNTER_BITS} bits meets pn={pn} "
        f"with l={num_counters}, kappa={kappa}, h={num_hashes}"
    )


@dataclass(frozen=True)
class BloomConfig:
    """A sized counting-Bloom-filter configuration.

    Attributes:
        num_counters: ``l`` — number of counters.
        counter_bits: ``b`` — bits per counter.
        num_hashes: ``h`` — probe functions.
        kappa: design insertion count the bounds were computed for.
        fp_bound: achieved false-positive bound ``Gp(l)``.
        fn_bound: achieved false-negative bound ``Gn(l, b)``.
    """

    num_counters: int
    counter_bits: int
    num_hashes: int
    kappa: int
    fp_bound: float
    fn_bound: float

    @property
    def memory_bits(self) -> int:
        """Objective value ``l*b``."""
        return self.num_counters * self.counter_bits

    @property
    def memory_bytes(self) -> int:
        """Digest memory in bytes (the paper quotes ~150 KB for the example)."""
        return (self.memory_bits + 7) // 8

    def build(self, strict: bool = True):
        """Instantiate a :class:`~repro.bloom.counting.CountingBloomFilter`."""
        from repro.bloom.counting import CountingBloomFilter

        return CountingBloomFilter(
            self.num_counters, self.counter_bits, self.num_hashes, strict=strict
        )


def optimal_config(
    kappa: int, num_hashes: int = 4, pp: float = 1e-4, pn: float = 1e-4
) -> BloomConfig:
    """Solve Eq. 6: the memory-minimal ``(l, b)`` for the given bounds.

    Per the paper's argument (Eqs. 7-9), pick the smallest ``l`` satisfying
    the false-positive bound, then the smallest integer ``b`` satisfying the
    false-negative bound at that ``l``.
    """
    num_counters = minimal_counters(kappa, num_hashes, pp)
    counter_bits = counter_bits_enumerated(num_counters, kappa, num_hashes, pn)
    return BloomConfig(
        num_counters=num_counters,
        counter_bits=counter_bits,
        num_hashes=num_hashes,
        kappa=kappa,
        fp_bound=false_positive_rate(num_counters, kappa, num_hashes),
        fn_bound=false_negative_bound(num_counters, counter_bits, kappa, num_hashes),
    )
