"""Bloom filters and the Proteus digest sizing math (paper Section IV)."""

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import (
    BloomConfig,
    counter_bits_closed_form,
    counter_bits_enumerated,
    false_negative_bound,
    false_positive_rate,
    minimal_counters,
    optimal_config,
)
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.hashing import (
    DoubleHashFamily,
    KeyHashes,
    digest_bases_many,
    ring_position,
    ring_positions_many,
    stable_hash64,
    stable_hash64_many,
)

__all__ = [
    "BloomFilter",
    "BloomConfig",
    "CountingBloomFilter",
    "DoubleHashFamily",
    "KeyHashes",
    "digest_bases_many",
    "ring_positions_many",
    "stable_hash64_many",
    "counter_bits_closed_form",
    "counter_bits_enumerated",
    "false_negative_bound",
    "false_positive_rate",
    "minimal_counters",
    "optimal_config",
    "ring_position",
    "stable_hash64",
]
