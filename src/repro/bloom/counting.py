"""Counting Bloom filter — the per-server cache digest (Section IV-A).

Each cache server maintains one counting Bloom filter mirroring its in-cache
key set: inserting a key increments ``h`` counters, deleting decrements them.
Counters are ``b`` bits wide; a counter that would exceed ``2^b - 1``
*saturates* and the event is recorded, because a later decrement of a
saturated counter can drive it below the true count and produce false
negatives — the only false-negative source in the paper's setting
(Section IV-B: "counter overflow ... is the only reason of false negatives").

Deleting a key that was never inserted raises :class:`~repro.errors.DigestError`
in strict mode: the paper argues this never happens because deletions are
driven solely by memcached item-unlink events, so we treat it as a bug
rather than corrupting the counters.

Batch operations (:meth:`CountingBloomFilter.add_many`,
:meth:`~CountingBloomFilter.remove_many`,
:meth:`~CountingBloomFilter.contains_many`) hash every key in one vectorized
pass and apply all counter deltas with one ``np.bincount``.  Saturating unit
increments and zero-clamped unit decrements commute, so the per-counter
results — including the saturation/overflow accounting — are exactly what
the scalar loop produces; :meth:`remove_many` is additionally *atomic* in
strict mode (a failing batch raises without mutating any counter).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.bloom import BloomFilter
from repro.bloom.hashing import DoubleHashFamily, Key, KeyHashes
from repro.errors import DigestError


class CountingBloomFilter:
    """Counting Bloom filter with ``num_counters`` saturating ``counter_bits``-bit counters.

    Args:
        num_counters: ``l`` in the paper — number of counters.
        counter_bits: ``b`` in the paper — bits per counter (counters saturate
            at ``2^b - 1``).
        num_hashes: ``h`` in the paper — probe functions per key.
        strict: raise :class:`DigestError` when removing a key whose counters
            indicate it is absent; if False, clamp at zero (lenient mode for
            reconstructing digests from lossy streams).
    """

    __slots__ = (
        "num_counters",
        "counter_bits",
        "num_hashes",
        "strict",
        "_max",
        "_counters",
        "_family",
        "count",
        "overflow_events",
    )

    def __init__(
        self,
        num_counters: int,
        counter_bits: int = 4,
        num_hashes: int = 4,
        strict: bool = True,
    ) -> None:
        if num_counters < 1:
            raise ValueError(f"num_counters must be >= 1, got {num_counters}")
        if counter_bits < 1:
            raise ValueError(f"counter_bits must be >= 1, got {counter_bits}")
        self.num_counters = num_counters
        self.counter_bits = counter_bits
        self.num_hashes = num_hashes
        self.strict = strict
        self._max = (1 << counter_bits) - 1
        # One python int per counter; bytearray when counters fit in 8 bits
        # keeps the common configurations (b <= 8) compact.
        self._counters = bytearray(num_counters) if counter_bits <= 8 else [0] * num_counters
        self._family = DoubleHashFamily(num_hashes, num_counters)
        #: net number of keys currently represented (inserts minus removes)
        self.count = 0
        #: how many counter increments hit saturation (each is a potential
        #: future false negative)
        self.overflow_events = 0

    # ------------------------------------------------------------------ ops

    def add(self, key: Key, hashes: Optional[KeyHashes] = None) -> None:
        """Insert *key*, incrementing its ``h`` counters (saturating)."""
        counters = self._counters
        max_val = self._max
        for idx in self._family.iter_indexes(key, hashes):
            current = counters[idx]
            if current >= max_val:
                self.overflow_events += 1
            else:
                counters[idx] = current + 1
        self.count += 1

    def remove(self, key: Key, hashes: Optional[KeyHashes] = None) -> None:
        """Delete *key*, decrementing its ``h`` counters.

        Raises:
            DigestError: in strict mode, when any counter for *key* is already
                zero (deleting an absent element).
        """
        counters = self._counters
        indexes = self._family.indexes(key, hashes)
        if self.strict and any(counters[idx] == 0 for idx in indexes):
            raise DigestError(f"removing key absent from digest: {key!r}")
        for idx in indexes:
            if counters[idx] > 0:
                counters[idx] -= 1
        self.count = max(0, self.count - 1)

    def update(self, keys: Iterable[Key]) -> None:
        """Insert every key in *keys*."""
        self.add_many(list(keys))

    # ------------------------------------------------------------ batch ops

    def _counter_view(self) -> Optional[np.ndarray]:
        """Writable uint8 view of the counter array, or ``None`` for ``b > 8``."""
        if isinstance(self._counters, bytearray):
            return np.frombuffer(self._counters, dtype=np.uint8)
        return None

    def add_many(
        self,
        keys: Sequence[Key],
        bases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Insert a key batch: one hash pass, one ``np.bincount`` of deltas.

        Saturating unit increments commute, so for a counter at ``c``
        receiving ``k`` increments the final value is ``min(2^b-1, c+k)``
        and exactly ``max(0, c+k-(2^b-1))`` of them overflow — identical
        counters, ``count``, and ``overflow_events`` to the scalar loop,
        in any order.
        """
        keys = list(keys)
        if not keys:
            return
        view = self._counter_view()
        if view is None:  # wide counters: python-int storage, scalar loop
            for key in keys:
                self.add(key)
            return
        indexes = self._family.indexes_many(keys, bases)
        delta = np.bincount(indexes.ravel(), minlength=self.num_counters)
        raised = view.astype(np.int64) + delta
        overflow = raised - self._max
        self.overflow_events += int(overflow[overflow > 0].sum())
        np.minimum(raised, self._max, out=raised)
        view[:] = raised.astype(np.uint8)
        self.count += len(keys)

    def remove_many(
        self,
        keys: Sequence[Key],
        bases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        """Delete a key batch; atomic in strict mode.

        On success the counters and ``count`` equal those of calling
        :meth:`remove` per key.  In strict mode a batch that would delete an
        absent key raises :class:`DigestError` naming the first offending
        key *without mutating anything* (the scalar loop would stop midway
        with earlier removes applied; batch semantics are all-or-nothing).
        """
        keys = list(keys)
        if not keys:
            return
        view = self._counter_view()
        if view is None:
            self._remove_replay(keys, None)
            return
        indexes = self._family.indexes_many(keys, bases)
        # A key probing the same counter twice (double-hash collision) is
        # check-once / clamp-per-probe in the scalar path, which bincount
        # deltas cannot express — replay those batches key by key.
        sorted_rows = np.sort(indexes, axis=1)
        has_within_key_dup = bool((sorted_rows[:, 1:] == sorted_rows[:, :-1]).any())
        if self.strict and has_within_key_dup:
            self._remove_replay(keys, indexes)
            return
        delta = np.bincount(indexes.ravel(), minlength=self.num_counters)
        lowered = view.astype(np.int64) - delta
        if self.strict and (lowered < 0).any():
            self._remove_replay(keys, indexes)  # re-raises, naming the key
            raise AssertionError("strict replay must have raised")
        np.maximum(lowered, 0, out=lowered)
        view[:] = lowered.astype(np.uint8)
        self.count = max(0, self.count - len(keys))

    def _remove_replay(
        self, keys: List[Key], indexes: Optional[np.ndarray]
    ) -> None:
        """Sequential-semantics removal on a copy, committed atomically."""
        counters = self._counters[:] if not isinstance(self._counters, bytearray) else bytearray(self._counters)
        rows = (
            (self._family.indexes(key) for key in keys)
            if indexes is None
            else (row.tolist() for row in indexes)
        )
        for key, row in zip(keys, rows):
            if self.strict and any(counters[idx] == 0 for idx in row):
                raise DigestError(f"removing key absent from digest: {key!r}")
            for idx in row:
                if counters[idx] > 0:
                    counters[idx] -= 1
        self._counters = counters
        self.count = max(0, self.count - len(keys))

    def contains_many(
        self,
        keys: Sequence[Key],
        bases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> List[bool]:
        """Vectorized membership: element ``i`` is ``contains(keys[i])``."""
        keys = list(keys)
        if not keys:
            return []
        view = self._counter_view()
        if view is None:
            return [key in self for key in keys]
        indexes = self._family.indexes_many(keys, bases)
        return (view[indexes] > 0).all(axis=1).tolist()

    def __contains__(self, key: Key) -> bool:
        counters = self._counters
        return all(counters[idx] > 0 for idx in self._family.iter_indexes(key))

    def contains(self, key: Key, hashes: Optional[KeyHashes] = None) -> bool:
        """Membership query.

        May return false positives (hash collisions) and — after counter
        overflow followed by deletions — false negatives.
        """
        if hashes is None:
            return key in self
        counters = self._counters
        return all(
            counters[idx] > 0 for idx in self._family.iter_indexes(key, hashes)
        )

    def clear(self) -> None:
        """Reset every counter to zero (server flush)."""
        if isinstance(self._counters, bytearray):
            self._counters = bytearray(self.num_counters)
        else:
            self._counters = [0] * self.num_counters
        self.count = 0
        self.overflow_events = 0

    # -------------------------------------------------------------- export

    def snapshot(self) -> BloomFilter:
        """Collapse to a plain Bloom filter (the ``SET_BLOOM_FILTER`` snapshot).

        Web servers only need membership queries during a transition, so the
        broadcast payload is a bit per counter instead of ``b`` bits.
        """
        bf = BloomFilter(self.num_counters, self.num_hashes)
        view = self._counter_view()
        if view is None:
            bits = bf._bits
            for idx, value in enumerate(self._counters):
                if value > 0:
                    bits[idx >> 3] |= 1 << (idx & 7)
        else:
            packed = np.packbits(view > 0, bitorder="little")
            bf._bits = bytearray(packed.tobytes())
        bf.count = self.count
        return bf

    def counter_value(self, index: int) -> int:
        """Raw counter value at *index* (diagnostics and tests)."""
        return self._counters[index]

    def max_counter(self) -> int:
        """Largest counter value currently held."""
        view = self._counter_view()
        if view is not None:
            return int(view.max()) if self.num_counters else 0
        return max(self._counters) if self.num_counters else 0

    def size_bytes(self) -> int:
        """Approximate memory footprint of the counter array: ``l*b/8``."""
        return (self.num_counters * self.counter_bits + 7) // 8

    def saturated_fraction(self) -> float:
        """Fraction of counters currently pinned at ``2^b - 1``."""
        view = self._counter_view()
        if view is not None:
            return int(np.count_nonzero(view >= self._max)) / self.num_counters
        max_val = self._max
        saturated = sum(1 for value in self._counters if value >= max_val)
        return saturated / self.num_counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CountingBloomFilter(l={self.num_counters}, b={self.counter_bits}, "
            f"h={self.num_hashes}, count={self.count})"
        )
