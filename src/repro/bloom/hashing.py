"""Hash-function families for Bloom filters and consistent hashing.

The paper uses "4 non-encryption hash functions" (Section VI-B).  We provide a
double-hashing family: two independent 64-bit base hashes ``h1`` and ``h2``
derived from blake2b, combined as ``h1 + i * h2`` to synthesize any number of
index functions (Kirsch & Mitzenmacher, 2006, show this preserves Bloom-filter
asymptotics).  blake2b with distinct salts is overkill speed-wise for a real
memcached but is deterministic across processes and platforms, which the
paper's consistency objective (Section I, objective 3: decisions must agree
across all web servers) makes mandatory.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, List, Union

Key = Union[str, bytes]

_MASK64 = (1 << 64) - 1


def _as_bytes(key: Key) -> bytes:
    """Normalize a key to bytes (UTF-8 for text keys)."""
    if isinstance(key, bytes):
        return key
    return key.encode("utf-8")


def stable_hash64(key: Key, salt: int = 0) -> int:
    """Return a deterministic 64-bit hash of *key*.

    Unlike the built-in :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED``, so every web server computes the same value — the
    consistency requirement of Section I.

    Args:
        key: text or bytes key.
        salt: selects an independent function from the family.
    """
    digest = hashlib.blake2b(
        _as_bytes(key), digest_size=8, salt=salt.to_bytes(8, "little")
    ).digest()
    return int.from_bytes(digest, "little")


class DoubleHashFamily:
    """A family of ``h`` index functions over ``[0, size)`` via double hashing.

    ``index_i(key) = (h1(key) + i * h2(key)) mod size`` with ``h2`` forced odd
    so that for power-of-two sizes the stride is invertible and the ``h``
    probe positions are distinct with high probability.
    """

    def __init__(self, num_hashes: int, size: int) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.num_hashes = num_hashes
        self.size = size

    def indexes(self, key: Key) -> List[int]:
        """Return the ``num_hashes`` probe positions for *key*."""
        h1 = stable_hash64(key, salt=0x51)
        h2 = stable_hash64(key, salt=0x52) | 1
        size = self.size
        return [((h1 + i * h2) & _MASK64) % size for i in range(self.num_hashes)]

    def iter_indexes(self, key: Key) -> Iterator[int]:
        """Lazily yield probe positions (same values as :meth:`indexes`)."""
        h1 = stable_hash64(key, salt=0x51)
        h2 = stable_hash64(key, salt=0x52) | 1
        size = self.size
        for i in range(self.num_hashes):
            yield ((h1 + i * h2) & _MASK64) % size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DoubleHashFamily(num_hashes={self.num_hashes}, size={self.size})"


def ring_position(key: Key, ring_size: int, replica: int = 0) -> int:
    """Hash *key* onto a consistent-hashing ring of ``ring_size`` positions.

    ``replica`` selects an independent ring (Section III-E fault tolerance
    uses ``r`` rings with ``r`` different hash functions).
    """
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    return stable_hash64(key, salt=0x100 + replica) % ring_size
