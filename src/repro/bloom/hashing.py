"""Hash-function families for Bloom filters and consistent hashing.

The paper uses "4 non-encryption hash functions" (Section VI-B).  We provide a
double-hashing family: two independent 64-bit base hashes ``h1`` and ``h2``
derived from blake2b, combined as ``h1 + i * h2`` to synthesize any number of
index functions (Kirsch & Mitzenmacher, 2006, show this preserves Bloom-filter
asymptotics).  blake2b with distinct salts is overkill speed-wise for a real
memcached but is deterministic across processes and platforms, which the
paper's consistency objective (Section I, objective 3: decisions must agree
across all web servers) makes mandatory.

Hot-path layout (Section I, objective 3 — the decision runs on every web
request):

* :func:`stable_hash64` hashes through a per-salt *template* blake2b object
  that is built once and ``copy()``-ed per key — the salted parameter block
  is parsed once instead of on every call, which roughly halves the cost of
  a hash while producing bit-identical digests.
* Every ``(key, salt)`` result is memoized in a bounded LRU
  (:data:`_HASH_MEMO_SIZE` entries).  The hash is a pure function, so the
  memo cannot change any decision; it turns the steady-state cost of
  routing a hot key into a dict hit.  Zipf-like web traffic keeps the memo
  hit rate high — the same skew that makes a memory cache pay off at all.
* :func:`stable_hash64_many` hashes a whole key batch into one ``numpy``
  ``uint64`` array through the same memo.
* :class:`KeyHashes` memoizes the blake2b bases one retrieval needs — the
  modulo-hash base, the ring base per replica, and the digest double-hash
  pair — so routing under two epochs plus all digest probes cost at most
  one blake2b per base instead of rehashing the key at every step.
"""

from __future__ import annotations

import hashlib
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

Key = Union[str, bytes]

_MASK64 = (1 << 64) - 1

#: Entries in the salted-hash memo.  Web traffic routes the same hot keys
#: over and over (that is what makes a memory cache worth running), so the
#: steady-state cost of a routing decision is one dict hit, not one blake2b.
_HASH_MEMO_SIZE = 1 << 16

#: Salt of the digest double-hash base ``h1`` (see :class:`DoubleHashFamily`).
DIGEST_SALT_H1 = 0x51
#: Salt of the digest double-hash base ``h2``.
DIGEST_SALT_H2 = 0x52
#: Salt of ring replica 0 (see :func:`ring_position`).
RING_SALT_BASE = 0x100


def _as_bytes(key: Key) -> bytes:
    """Normalize a key to bytes (UTF-8 for text keys)."""
    if isinstance(key, bytes):
        return key
    return key.encode("utf-8")


#: Per-salt blake2b templates; ``template.copy()`` is ~2x cheaper than
#: re-parsing the salted parameter block in the constructor, and the digest
#: is bit-identical, so every historical routing decision is preserved.
_TEMPLATES: Dict[int, "hashlib._Hash"] = {}


def _template(salt: int):
    template = _TEMPLATES.get(salt)
    if template is None:
        template = hashlib.blake2b(
            digest_size=8, salt=salt.to_bytes(8, "little")
        )
        _TEMPLATES[salt] = template
    return template


@lru_cache(maxsize=_HASH_MEMO_SIZE)
def _hash64_memo(key: Key, salt: int) -> int:
    digest = _template(salt).copy()
    digest.update(_as_bytes(key))
    return int.from_bytes(digest.digest(), "little")


def stable_hash64(key: Key, salt: int = 0) -> int:
    """Return a deterministic 64-bit hash of *key*.

    Unlike the built-in :func:`hash`, the result does not depend on
    ``PYTHONHASHSEED``, so every web server computes the same value — the
    consistency requirement of Section I.

    The hash is a pure function of ``(key, salt)``, so results are memoized
    in a bounded LRU: repeat routings of a hot key (the common case for a
    memory-cache web tier) cost a dict hit instead of a blake2b.

    Args:
        key: text or bytes key.
        salt: selects an independent function from the family.
    """
    return _hash64_memo(key, salt)


def stable_hash64_many(keys: Sequence[Key], salt: int = 0) -> np.ndarray:
    """Vectorized :func:`stable_hash64`: one ``uint64`` per key.

    Value ``i`` equals ``stable_hash64(keys[i], salt)`` exactly.  Hashes go
    through the same salted-hash memo as the scalar form, so a batch over a
    warm working set is one dict hit per key and a cold batch fills the memo
    for every later scalar or batch call.
    """
    memo = _hash64_memo
    return np.fromiter(
        (memo(key, salt) for key in keys), dtype=np.uint64, count=len(keys)
    )


class KeyHashes:
    """The blake2b bases one retrieval needs, computed at most once each.

    Algorithm 2 hashes the *same* key repeatedly: routing under the new
    epoch, routing under the old epoch, and the ``h`` digest probes all
    start from a salted blake2b of the key.  A :class:`KeyHashes` is built
    once per fetch and threaded through the engine and its commands, so
    each base is computed lazily on first use and reused after that —
    values are bit-identical to calling :func:`stable_hash64` directly.
    """

    __slots__ = ("key", "_base", "_rings", "_digest")

    def __init__(
        self,
        key: Key,
        digest_bases: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.key = key
        self._base: Optional[int] = None
        self._rings: Optional[Dict[int, int]] = None
        self._digest = digest_bases

    @property
    def base64(self) -> int:
        """``stable_hash64(key)`` — the modulo-router base (salt 0)."""
        if self._base is None:
            self._base = stable_hash64(self.key)
        return self._base

    def ring_position(self, ring_size: int, replica: int = 0) -> int:
        """:func:`ring_position` with the replica base hashed only once."""
        rings = self._rings
        if rings is None:
            rings = self._rings = {}
        base = rings.get(replica)
        if base is None:
            base = rings[replica] = stable_hash64(
                self.key, salt=RING_SALT_BASE + replica
            )
        return base % ring_size

    def digest_bases(self) -> Tuple[int, int]:
        """The double-hash pair ``(h1, h2)`` shared by every digest probe."""
        if self._digest is None:
            self._digest = (
                stable_hash64(self.key, salt=DIGEST_SALT_H1),
                stable_hash64(self.key, salt=DIGEST_SALT_H2) | 1,
            )
        return self._digest

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyHashes({self.key!r})"


def digest_bases_many(keys: Sequence[Key]) -> Tuple[np.ndarray, np.ndarray]:
    """Batched double-hash bases: ``(h1[], h2[])`` for a whole key set."""
    h1 = stable_hash64_many(keys, salt=DIGEST_SALT_H1)
    h2 = stable_hash64_many(keys, salt=DIGEST_SALT_H2) | np.uint64(1)
    return h1, h2


class DoubleHashFamily:
    """A family of ``h`` index functions over ``[0, size)`` via double hashing.

    ``index_i(key) = (h1(key) + i * h2(key)) mod size`` with ``h2`` forced odd
    so that for power-of-two sizes the stride is invertible and the ``h``
    probe positions are distinct with high probability.
    """

    def __init__(self, num_hashes: int, size: int) -> None:
        if num_hashes < 1:
            raise ValueError(f"num_hashes must be >= 1, got {num_hashes}")
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.num_hashes = num_hashes
        self.size = size

    def _bases(
        self, key: Key, hashes: Optional[KeyHashes] = None
    ) -> Tuple[int, int]:
        """The ``(h1, h2)`` pair — reused from *hashes* when provided."""
        if hashes is not None:
            return hashes.digest_bases()
        return (
            stable_hash64(key, salt=DIGEST_SALT_H1),
            stable_hash64(key, salt=DIGEST_SALT_H2) | 1,
        )

    def indexes(
        self, key: Key, hashes: Optional[KeyHashes] = None
    ) -> List[int]:
        """Return the ``num_hashes`` probe positions for *key*."""
        h1, h2 = self._bases(key, hashes)
        size = self.size
        return [((h1 + i * h2) & _MASK64) % size for i in range(self.num_hashes)]

    def iter_indexes(
        self, key: Key, hashes: Optional[KeyHashes] = None
    ) -> Iterator[int]:
        """Iterate the probe positions (same values as :meth:`indexes`)."""
        return iter(self.indexes(key, hashes))

    def indexes_many(
        self,
        keys: Sequence[Key],
        bases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> np.ndarray:
        """Probe positions for a key batch: shape ``(len(keys), num_hashes)``.

        Row ``i`` equals ``indexes(keys[i])`` exactly — ``uint64`` wrap-around
        in numpy matches the scalar ``& _MASK64``.  Pass *bases* (from
        :func:`digest_bases_many`) to reuse already-computed hashes.
        """
        if bases is None:
            bases = digest_bases_many(keys)
        h1, h2 = bases
        strides = np.arange(self.num_hashes, dtype=np.uint64)
        mixed = h1[:, None] + strides[None, :] * h2[:, None]
        return (mixed % np.uint64(self.size)).astype(np.int64)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DoubleHashFamily(num_hashes={self.num_hashes}, size={self.size})"


def ring_position(key: Key, ring_size: int, replica: int = 0) -> int:
    """Hash *key* onto a consistent-hashing ring of ``ring_size`` positions.

    ``replica`` selects an independent ring (Section III-E fault tolerance
    uses ``r`` rings with ``r`` different hash functions).
    """
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    return stable_hash64(key, salt=RING_SALT_BASE + replica) % ring_size


def ring_positions_many(
    keys: Sequence[Key], ring_size: int, replica: int = 0
) -> np.ndarray:
    """Vectorized :func:`ring_position` over a key batch (``int64`` array)."""
    if ring_size < 1:
        raise ValueError(f"ring_size must be >= 1, got {ring_size}")
    hashes = stable_hash64_many(keys, salt=RING_SALT_BASE + replica)
    return (hashes % np.uint64(ring_size)).astype(np.int64)
