"""Plain (non-counting) Bloom filter.

Supports insertion and membership queries with false positives but no
deletions.  The paper's digests are *counting* Bloom filters
(:mod:`repro.bloom.counting`); this plain variant exists because the
``SET_BLOOM_FILTER`` snapshot that a cache server broadcasts to web servers
(Section V-A3) only needs membership queries — web servers never delete —
so snapshotting a counting filter down to a bit array shrinks the broadcast
by a factor of ``b``.

Batch operations (:meth:`BloomFilter.add_many`,
:meth:`BloomFilter.contains_many`) compute all probe indexes in one
vectorized double-hash pass and touch the bit array with ``numpy`` fancy
indexing; results are bit-identical to the scalar loop.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bloom.hashing import DoubleHashFamily, Key, KeyHashes


class BloomFilter:
    """A fixed-size Bloom filter over ``num_bits`` bits with ``num_hashes`` probes.

    The theoretical false-positive rate after inserting ``kappa`` keys is
    ``(1 - e^(-kappa*h/l))^h`` (paper Eq. 4 with ``l = num_bits``).
    """

    __slots__ = ("num_bits", "num_hashes", "_bits", "_family", "count")

    def __init__(self, num_bits: int, num_hashes: int = 4) -> None:
        if num_bits < 1:
            raise ValueError(f"num_bits must be >= 1, got {num_bits}")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._family = DoubleHashFamily(num_hashes, num_bits)
        self._bits = bytearray((num_bits + 7) // 8)
        #: number of keys inserted so far (not deduplicated)
        self.count = 0

    def add(self, key: Key, hashes: Optional[KeyHashes] = None) -> None:
        """Insert *key* (pass *hashes* to reuse an existing double-hash pair)."""
        for idx in self._family.iter_indexes(key, hashes):
            self._bits[idx >> 3] |= 1 << (idx & 7)
        self.count += 1

    def add_many(self, keys: Sequence[Key]) -> None:
        """Insert a whole key batch — one hash pass, one fancy-index store.

        Identical final bits and count to calling :meth:`add` per key.
        """
        keys = list(keys)
        if not keys:
            return
        indexes = self._family.indexes_many(keys).ravel()
        view = np.frombuffer(self._bits, dtype=np.uint8)
        np.bitwise_or.at(
            view, indexes >> 3, (1 << (indexes & 7)).astype(np.uint8)
        )
        self.count += len(keys)

    def update(self, keys: Iterable[Key]) -> None:
        """Insert every key in *keys*."""
        self.add_many(list(keys))

    def __contains__(self, key: Key) -> bool:
        return all(
            self._bits[idx >> 3] & (1 << (idx & 7))
            for idx in self._family.iter_indexes(key)
        )

    def contains(self, key: Key, hashes: Optional[KeyHashes] = None) -> bool:
        """Membership query; may return false positives, never false negatives."""
        if hashes is None:
            return key in self
        return all(
            self._bits[idx >> 3] & (1 << (idx & 7))
            for idx in self._family.iter_indexes(key, hashes)
        )

    def contains_many(
        self,
        keys: Sequence[Key],
        bases: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> List[bool]:
        """Vectorized membership: element ``i`` is ``contains(keys[i])``.

        Pass *bases* (from :func:`~repro.bloom.hashing.digest_bases_many`)
        to reuse already-computed double-hash pairs.
        """
        keys = list(keys)
        if not keys:
            return []
        indexes = self._family.indexes_many(keys, bases)
        view = np.frombuffer(self._bits, dtype=np.uint8)
        hit = (view[indexes >> 3] & (1 << (indexes & 7)).astype(np.uint8)) != 0
        return hit.all(axis=1).tolist()

    def expected_false_positive_rate(self, kappa: Optional[int] = None) -> float:
        """Paper Eq. 4: ``(1 - e^(-kappa*h/l))^h``.

        Args:
            kappa: number of distinct inserted keys; defaults to the insert
                counter (an overestimate when keys repeat).
        """
        import math

        k = self.count if kappa is None else kappa
        return (1.0 - math.exp(-k * self.num_hashes / self.num_bits)) ** self.num_hashes

    def fill_ratio(self) -> float:
        """Fraction of bits set to 1."""
        view = np.frombuffer(self._bits, dtype=np.uint8)
        ones = int(np.unpackbits(view).sum())
        return ones / self.num_bits

    def size_bytes(self) -> int:
        """Memory used by the bit array (what a digest broadcast costs)."""
        return len(self._bits)

    def to_bytes(self) -> bytes:
        """Serialize the bit array (e.g. for the ``BLOOM_FILTER`` reserved key)."""
        return bytes(self._bits)

    @classmethod
    def from_bytes(
        cls, payload: bytes, num_bits: int, num_hashes: int = 4
    ) -> "BloomFilter":
        """Deserialize a bit array produced by :meth:`to_bytes`."""
        expected = (num_bits + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"payload has {len(payload)} bytes, expected {expected} "
                f"for num_bits={num_bits}"
            )
        bf = cls(num_bits, num_hashes)
        bf._bits = bytearray(payload)
        return bf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"count={self.count})"
        )
