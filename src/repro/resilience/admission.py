"""DB-path admission control for the retrieval engines (priority tiers).

Under overload the retrieval path splits into two priority tiers:

* **Always served** — local/hot-key hits and cache-tier hits.  They cost
  microseconds, complete before any database decision is made, and
  shedding them would save nothing.
* **Sheddable** — database-path work (misses, false positives, remap
  misses during a transition).  Each DB read occupies a backend queue
  slot for milliseconds; past saturation, admitting more of them only
  grows the queue and blows *every* request's latency (the Fig. 9
  mechanism).  Refusing the excess keeps the admitted requests fast.

An admission controller is consulted by
:class:`~repro.core.retrieval.RetrievalEngine` immediately before it
would yield ``ReadDatabase``; a refusal turns the outcome into
``FetchPath.SHED`` (value ``None`` — *not served*, unlike
``DEGRADED_DB``, which is served correctly at extra latency cost).  The
driver reports each DB read's completion back via :meth:`db_finished`.

Two implementations keep the sim and the live tier in parity:

* :class:`ConcurrencyAdmission` — wraps an
  :class:`~repro.resilience.budget.AdaptiveConcurrencyLimiter`; depth is
  real in-flight DB reads.  The live frontend's model.
* :class:`VirtualQueueAdmission` — tracks virtual completion times; the
  queue depth at ``now`` is the number of admitted reads that have not
  yet completed on the virtual clock.  The simulator's model, mirroring
  the sim database's FIFO service queue without touching it.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.resilience.budget import AdaptiveConcurrencyLimiter

__all__ = [
    "AdmissionController",
    "ConcurrencyAdmission",
    "VirtualQueueAdmission",
]


class AdmissionController:
    """Base: admit/refuse DB-path work, with shed accounting.

    Subclasses implement :meth:`_admit`; this base keeps the counters
    every driver and health monitor reads.
    """

    def __init__(self) -> None:
        #: DB reads admitted / refused (lifetime)
        self.admitted = 0
        self.shed = 0

    def admit_db(self, now: Optional[float] = None) -> bool:
        """May one database read start at *now*?  A refusal is final for
        this request — the engine sheds it, it does not queue."""
        if self._admit(now):
            self.admitted += 1
            return True
        self.shed += 1
        return False

    def db_finished(
        self, now: Optional[float] = None, completed: Optional[float] = None
    ) -> None:
        """One admitted read finished (*completed* = its virtual
        completion time, where the driver knows one)."""

    def depth(self, now: Optional[float] = None) -> float:
        """Outstanding admitted DB work — the queue-depth gauge health
        snapshots record."""
        return 0.0

    def _admit(self, now: Optional[float]) -> bool:
        raise NotImplementedError


class ConcurrencyAdmission(AdmissionController):
    """Admission bounded by an AIMD in-flight window (live tier).

    ``admit_db`` acquires a limiter slot; ``db_finished`` releases it and
    feeds the AIMD loop (success grows the window, an ``ok=False``
    completion — deadline blown, DB error — cuts it).
    """

    def __init__(self, limiter: Optional[AdaptiveConcurrencyLimiter] = None) -> None:
        super().__init__()
        self.limiter = limiter or AdaptiveConcurrencyLimiter()

    def _admit(self, now: Optional[float]) -> bool:
        return self.limiter.try_acquire(now)

    def db_finished(
        self,
        now: Optional[float] = None,
        completed: Optional[float] = None,
        ok: bool = True,
    ) -> None:
        self.limiter.release()
        if ok:
            self.limiter.on_success(now)
        else:
            self.limiter.on_overload(now)

    def depth(self, now: Optional[float] = None) -> float:
        return float(self.limiter.inflight)


class VirtualQueueAdmission(AdmissionController):
    """Admission bounded by virtual outstanding completions (simulator).

    The sim database answers each read with a *completion time* on the
    virtual clock; a read is outstanding while ``completion > now``.
    Admission refuses when ``max_depth`` reads are already outstanding —
    the same decision :class:`ConcurrencyAdmission` makes from real
    in-flight counts, computed without wall time so the sim-vs-live
    parity suites extend to overload.

    Args:
        max_depth: outstanding DB reads allowed before shedding.
    """

    def __init__(self, max_depth: int = 16) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        super().__init__()
        self.max_depth = max_depth
        self._completions: List[float] = []  # min-heap of completion times
        # Admitted reads whose completion time has not been reported yet.
        # Without this, every key of one batch would pass the depth check
        # before the first read's ``db_finished`` lands — the bound must
        # hold *within* a batch, not just between requests.
        self._pending = 0

    def _prune(self, now: float) -> None:
        while self._completions and self._completions[0] <= now:
            heapq.heappop(self._completions)

    def _admit(self, now: Optional[float]) -> bool:
        if now is None:
            return True  # inert without a virtual clock
        self._prune(now)
        if len(self._completions) + self._pending >= self.max_depth:
            return False
        self._pending += 1
        return True

    def db_finished(
        self, now: Optional[float] = None, completed: Optional[float] = None
    ) -> None:
        self._pending = max(0, self._pending - 1)
        if completed is not None:
            heapq.heappush(self._completions, completed)

    def depth(self, now: Optional[float] = None) -> float:
        if now is not None:
            self._prune(now)
        return float(len(self._completions) + self._pending)
