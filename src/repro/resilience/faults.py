"""The shared fault vocabulary: declarative plans both substrates speak.

A :class:`FaultPlan` says *what is wrong* with the path to one cache server
— refuse connections, reset mid-stream with some probability, delay
responses, blackhole them, truncate writes — without saying *how* the
wrongness is realized.  The live tier realizes a plan with
:class:`repro.net.chaosproxy.ChaosProxy` (an actual TCP proxy injecting the
faults); the simulator realizes the subset it can express by crashing /
repairing servers in :class:`repro.experiments.failover.FailoverExperiment`.
Because both read the same :class:`FaultSchedule`, an integration test and
a simulation run can be handed *the same scripted outage* and their
degraded-path accounting compared.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["FaultPlan", "ScheduledFault", "FaultSchedule"]


@dataclass(frozen=True)
class FaultPlan:
    """What is injected on the path to one server.  All faults compose.

    Attributes:
        reject_connections: refuse every new connection (hard-down server).
        blackhole: accept traffic but never forward a response — the
            hung-server case; only a per-op timeout gets a client out.
        reset_probability: per-response-chunk probability of an abrupt
            connection reset.
        partial_write_probability: per-response-chunk probability of
            forwarding only a prefix of the chunk and then resetting —
            the mid-reply desync case.
        delay: fixed extra latency per response chunk, seconds.
        delay_jitter: uniform extra delay in ``[0, delay_jitter]``.
        drop_syn: connect-phase fault: the dial is swallowed — the TCP
            handshake completes (userspace cannot suppress the kernel's
            accept) but the session is never bridged and never answers, so
            the client sees exactly what a dropped SYN looks like one layer
            up: a "connected" socket that produces nothing until its
            connect/op timeout fires.
        connect_delay: connect-phase fault: the accepted connection is held
            this many seconds before the upstream bridge comes up (the
            slow-accept / overloaded-listener case); requests sent in the
            window stall but are eventually answered.
        drop_request_probability: per-request-chunk probability of silently
            dropping the client -> server chunk (request-direction loss:
            the server never sees the command, the client times out waiting
            for a reply that was never going to come).
        seed: PRNG seed for the probabilistic faults.
    """

    reject_connections: bool = False
    blackhole: bool = False
    reset_probability: float = 0.0
    partial_write_probability: float = 0.0
    delay: float = 0.0
    delay_jitter: float = 0.0
    drop_syn: bool = False
    connect_delay: float = 0.0
    drop_request_probability: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "reset_probability",
            "partial_write_probability",
            "drop_request_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if self.delay < 0 or self.delay_jitter < 0 or self.connect_delay < 0:
            raise ConfigurationError("delays must be >= 0")

    # ------------------------------------------------------------- queries

    @property
    def is_benign(self) -> bool:
        """True when the plan injects nothing at all."""
        return (
            not self.reject_connections
            and not self.blackhole
            and not self.drop_syn
            and self.reset_probability == 0.0
            and self.partial_write_probability == 0.0
            and self.delay == 0.0
            and self.delay_jitter == 0.0
            and self.connect_delay == 0.0
            and self.drop_request_probability == 0.0
        )

    @property
    def kills_server(self) -> bool:
        """True when the plan makes the server effectively unreachable —
        the subset of faults the simulator expresses as a crash."""
        return self.reject_connections or self.blackhole or self.drop_syn

    # ---------------------------------------------------------- factories

    @classmethod
    def none(cls) -> "FaultPlan":
        """The no-fault plan (pass-through proxy)."""
        return cls()

    @classmethod
    def killed(cls) -> "FaultPlan":
        """A hard-down server: every connection refused."""
        return cls(reject_connections=True)

    @classmethod
    def slow(cls, delay: float, jitter: float = 0.0) -> "FaultPlan":
        """A healthy but slow server."""
        return cls(delay=delay, delay_jitter=jitter)

    @classmethod
    def flaky(cls, reset_probability: float, seed: int = 0) -> "FaultPlan":
        """A server whose connections reset at random."""
        return cls(reset_probability=reset_probability, seed=seed)

    @classmethod
    def syn_dropped(cls) -> "FaultPlan":
        """Dials hang instead of failing fast (firewalled/partitioned path)."""
        return cls(drop_syn=True)

    @classmethod
    def slow_accept(cls, connect_delay: float) -> "FaultPlan":
        """An overloaded listener: connections come up late but do work."""
        return cls(connect_delay=connect_delay)

    @classmethod
    def lossy_requests(cls, probability: float, seed: int = 0) -> "FaultPlan":
        """Request-direction loss: commands vanish before the server."""
        return cls(drop_request_probability=probability, seed=seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan with a different PRNG seed."""
        return replace(self, seed=seed)


@dataclass(frozen=True)
class ScheduledFault:
    """Apply *plan* to *server_id* at time *at*; clear it at *clear_at*."""

    at: float
    server_id: int
    plan: FaultPlan
    clear_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError(f"at must be >= 0, got {self.at}")
        if self.clear_at is not None and self.clear_at <= self.at:
            raise ConfigurationError("clear_at must be after at")

    def active(self, now: float) -> bool:
        """True while this entry's plan is in force at time *now*."""
        if now < self.at:
            return False
        return self.clear_at is None or now < self.clear_at


@dataclass
class FaultSchedule:
    """A scripted outage: scheduled fault entries over one cluster.

    The one fault timeline both substrates consume: the live chaos harness
    replays it by re-planning proxies at each entry's ``at`` / ``clear_at``;
    the simulator converts the ``kills_server`` entries to crash/repair
    events via :meth:`repro.experiments.failover.failure_events_from_schedule`.
    """

    entries: List[ScheduledFault] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.entries = sorted(self.entries, key=lambda entry: entry.at)

    def add(
        self,
        at: float,
        server_id: int,
        plan: FaultPlan,
        clear_at: Optional[float] = None,
    ) -> "FaultSchedule":
        """Append an entry (chainable)."""
        self.entries.append(ScheduledFault(at, server_id, plan, clear_at))
        self.entries.sort(key=lambda entry: entry.at)
        return self

    def plans_at(self, now: float) -> Dict[int, FaultPlan]:
        """The plan in force per server at time *now* (later entries win);
        servers with no active entry are absent (i.e. fault-free)."""
        plans: Dict[int, FaultPlan] = {}
        for entry in self.entries:
            if entry.active(now):
                plans[entry.server_id] = entry.plan
        return plans

    def change_points(self) -> List[float]:
        """Every time the in-force plan set changes (sorted, distinct)."""
        points = set()
        for entry in self.entries:
            points.add(entry.at)
            if entry.clear_at is not None:
                points.add(entry.clear_at)
        return sorted(points)

    def servers(self) -> List[int]:
        """Every server id the schedule touches (sorted, distinct)."""
        return sorted({entry.server_id for entry in self.entries})
