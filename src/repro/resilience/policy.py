"""The bundled fault-tolerance policy a driver wires through its RPCs.

One :class:`ResiliencePolicy` object carries everything the live frontend
(or any future driver) needs to run a cache RPC the fault-tolerant way:
the retry policy, the per-server circuit-breaker parameters, the per-op
timeout handed to clients, and the per-request deadline budget.  Keeping
it one object means a test, a benchmark, and a deployment configure fault
handling with a single argument — and the sim tier can instantiate the
same policy against its virtual clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.resilience.breaker import BreakerSnapshot, CircuitBreaker
from repro.resilience.budget import AdaptiveConcurrencyLimiter, RetryBudget
from repro.resilience.deadline import Deadline
from repro.resilience.retry import RetryPolicy

__all__ = ["ResiliencePolicy"]


@dataclass
class ResiliencePolicy:
    """Retry + breaker + deadline parameters, bundled.

    Args:
        retry: backoff/classification policy for cache RPCs.
        breaker_failures: consecutive failures that open a server's circuit.
        breaker_reset: seconds an open circuit refuses traffic before
            admitting half-open probes.
        breaker_probes: trial requests admitted per half-open window.
        op_timeout: per-operation timeout handed to each
            :class:`~repro.net.client.MemcachedClient` (``None``: no
            timeout — a hung server then blocks until TCP gives up).
        request_budget: per-``fetch`` deadline budget in seconds (``None``:
            unlimited).  When the budget is spent, remaining cache RPCs are
            skipped and the request degrades to the database immediately.
        degrade_to_database: when True (the default, and the Proteus
            behaviour), a cache RPC that exhausts its retries answers the
            engine with ``SERVER_UNAVAILABLE`` so Algorithm 2 serves around
            the fault; when False the final error propagates to the caller.
        retry_budget_ratio: retries allowed per recent request, shared
            across every retry loop the driver runs (0.0 disables the
            budget — the pre-overload-armor behaviour).
        retry_budget_min_rate: trickle reserve (retries/second) so
            low-volume clients keep a minimal allowance when the budget
            is armed.
        limiter_window: starting AIMD in-flight window per server (0
            disables adaptive concurrency limiting).
        limiter_backoff: multiplicative-decrease factor applied to the
            window on a deadline/timeout/shed signal.
    """

    retry: RetryPolicy = None  # type: ignore[assignment]
    breaker_failures: int = 3
    breaker_reset: float = 1.0
    breaker_probes: int = 1
    op_timeout: Optional[float] = None
    request_budget: Optional[float] = None
    degrade_to_database: bool = True
    retry_budget_ratio: float = 0.0
    retry_budget_min_rate: float = 1.0
    limiter_window: int = 0
    limiter_backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.retry is None:
            self.retry = RetryPolicy()

    @classmethod
    def default(cls) -> "ResiliencePolicy":
        """The conservative always-on policy: one quick retry, small
        breaker, no timeouts/budgets (no behaviour change on healthy
        clusters beyond bookkeeping)."""
        return cls(retry=RetryPolicy(max_attempts=2, base_delay=0.005))

    @classmethod
    def aggressive(cls, op_timeout: float = 0.25) -> "ResiliencePolicy":
        """Fail-fast settings for chaos tests and latency-sensitive runs."""
        return cls(
            retry=RetryPolicy(max_attempts=3, base_delay=0.005, max_delay=0.05),
            breaker_failures=2,
            breaker_reset=0.5,
            op_timeout=op_timeout,
            request_budget=max(1.0, 8 * op_timeout),
        )

    @classmethod
    def overload_armor(cls, op_timeout: float = 0.25) -> "ResiliencePolicy":
        """The :meth:`aggressive` profile with the overload armor on:
        a 0.2 retry budget and an adaptive per-server window, for
        5x-offered-load territory where unbudgeted retries amplify."""
        policy = cls.aggressive(op_timeout=op_timeout)
        policy.retry_budget_ratio = 0.2
        policy.limiter_window = 64
        return policy

    # ----------------------------------------------------------- factories

    def new_breaker(
        self, clock: Callable[[], float] = time.monotonic
    ) -> CircuitBreaker:
        """A fresh per-server breaker bound to *clock*."""
        return CircuitBreaker(
            failure_threshold=self.breaker_failures,
            reset_timeout=self.breaker_reset,
            half_open_probes=self.breaker_probes,
            clock=clock,
        )

    def new_deadline(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Deadline:
        """A fresh per-request deadline bound to *clock* (may be unlimited)."""
        return Deadline(self.request_budget, clock=clock)

    def new_retry_budget(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Optional[RetryBudget]:
        """The driver-wide retry budget, or ``None`` when disabled.

        One budget per driver (NOT per server): a storm against one
        server must not be fundable from another server's quiet traffic
        being absent — the cap is on the driver's total retry volume.
        """
        if self.retry_budget_ratio <= 0.0:
            return None
        return RetryBudget(
            ratio=self.retry_budget_ratio,
            min_retries_per_second=self.retry_budget_min_rate,
            clock=clock,
        )

    def new_limiter(
        self, clock: Callable[[], float] = time.monotonic
    ) -> Optional[AdaptiveConcurrencyLimiter]:
        """A fresh per-server AIMD window, or ``None`` when disabled."""
        if self.limiter_window <= 0:
            return None
        return AdaptiveConcurrencyLimiter(
            initial=float(self.limiter_window),
            max_limit=float(max(1024, self.limiter_window)),
            backoff=self.limiter_backoff,
            clock=clock,
        )

    # -------------------------------------------------------- introspection

    @staticmethod
    def health(
        breakers: Iterable[CircuitBreaker], now: Optional[float] = None
    ) -> Dict[int, BreakerSnapshot]:
        """Read-only health of a fleet of per-server breakers.

        Returns ``server_id -> BreakerSnapshot`` (ids are the iteration
        positions, matching the provisioning-order indexing every driver
        uses).  This is the sanctioned introspection path for monitors:
        no caller should reach into a breaker's private fields.
        """
        return {
            server_id: breaker.snapshot(now)
            for server_id, breaker in enumerate(breakers)
        }
