"""Per-request time budgets (the deadline half of fail-fast retrieval).

Proteus promises that provisioning transitions never serve a delay spike
(Section IV): a request that cannot be answered from cache in time must
fall through to the database, not hang on a dead socket.  A
:class:`Deadline` is the bookkeeping for that promise — one budget per
request, consulted before every retry attempt and every backoff sleep, so
a retry loop can stop *before* it would blow the budget instead of after.

Clock-injectable: the live tier passes ``time.monotonic``, the simulator
and the unit tests pass a fake, so expiry is deterministic under test.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import DeadlineExceeded

__all__ = ["Deadline"]


class Deadline:
    """A fixed time budget measured against an injectable clock.

    Args:
        budget: seconds allowed, from *start*.  ``None`` means unlimited —
            every query answers "plenty of time left", so callers need no
            special-casing for the no-deadline configuration.
        clock: time source (``time.monotonic`` by default).
        start: budget start; the clock's current reading by default.
    """

    def __init__(
        self,
        budget: Optional[float],
        clock: Callable[[], float] = time.monotonic,
        start: Optional[float] = None,
    ) -> None:
        if budget is not None and budget < 0:
            raise ValueError(f"budget must be >= 0, got {budget}")
        self._clock = clock
        self.budget = budget
        self.start = clock() if start is None else start

    @classmethod
    def after(
        cls, budget: Optional[float], clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline *budget* seconds from the clock's current reading."""
        return cls(budget, clock=clock)

    @property
    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` for an unlimited budget."""
        if self.budget is None:
            return None
        return self.start + self.budget

    def remaining(self, now: Optional[float] = None) -> float:
        """Seconds left (clamped at 0); ``inf`` for an unlimited budget."""
        if self.budget is None:
            return float("inf")
        if now is None:
            now = self._clock()
        return max(0.0, self.start + self.budget - now)

    def expired(self, now: Optional[float] = None) -> bool:
        """True once the budget is spent."""
        return self.remaining(now) <= 0.0 and self.budget is not None

    def allows(self, duration: float, now: Optional[float] = None) -> bool:
        """True when *duration* more seconds fit inside the budget.

        The retry loop's pre-sleep check: a backoff sleep that would end
        past the deadline is pointless — fail over now instead.
        """
        return self.remaining(now) >= duration

    def check(self, what: str = "request") -> None:
        """Raise :class:`~repro.errors.DeadlineExceeded` if expired."""
        if self.expired():
            raise DeadlineExceeded(
                f"{what} exceeded its {self.budget:.3f}s budget"
            )

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return f"Deadline(budget={self.budget!r}, remaining={self.remaining():.3f})"
