"""Fault-tolerance building blocks shared by the sim and live substrates.

The failure-path counterpart of :mod:`repro.core.retrieval`: pure-Python,
clock-injectable policies — :class:`Deadline` budgets,
:class:`RetryPolicy` backoff with seeded jitter, per-server
:class:`CircuitBreaker` admission — plus the declarative
:class:`FaultPlan` / :class:`FaultSchedule` vocabulary that scripts an
outage identically for the chaos proxy (live) and the failover experiment
(sim).  No I/O happens here; drivers decide when to sleep and what counts
as "now".
"""

from repro.resilience.breaker import BreakerSnapshot, BreakerState, CircuitBreaker
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultPlan, FaultSchedule, ScheduledFault
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import TRANSIENT_ERRORS, RetryPolicy

__all__ = [
    "BreakerSnapshot",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultSchedule",
    "ResiliencePolicy",
    "RetryPolicy",
    "ScheduledFault",
    "TRANSIENT_ERRORS",
]
