"""Fault-tolerance building blocks shared by the sim and live substrates.

The failure-path counterpart of :mod:`repro.core.retrieval`: pure-Python,
clock-injectable policies — :class:`Deadline` budgets,
:class:`RetryPolicy` backoff with seeded jitter, per-server
:class:`CircuitBreaker` admission, :class:`RetryBudget` /
:class:`AdaptiveConcurrencyLimiter` overload armor, DB-path admission
controllers — plus the declarative :class:`FaultPlan` /
:class:`FaultSchedule` vocabulary that scripts an outage identically for
the chaos proxy (live) and the failover experiment (sim).  No I/O happens
here; drivers decide when to sleep and what counts as "now".
"""

from repro.resilience.admission import (
    AdmissionController,
    ConcurrencyAdmission,
    VirtualQueueAdmission,
)
from repro.resilience.breaker import BreakerSnapshot, BreakerState, CircuitBreaker
from repro.resilience.budget import AdaptiveConcurrencyLimiter, RetryBudget
from repro.resilience.deadline import Deadline
from repro.resilience.faults import FaultPlan, FaultSchedule, ScheduledFault
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.retry import NEVER_RETRY, TRANSIENT_ERRORS, RetryPolicy

__all__ = [
    "AdaptiveConcurrencyLimiter",
    "AdmissionController",
    "BreakerSnapshot",
    "BreakerState",
    "CircuitBreaker",
    "ConcurrencyAdmission",
    "Deadline",
    "FaultPlan",
    "FaultSchedule",
    "NEVER_RETRY",
    "ResiliencePolicy",
    "RetryBudget",
    "RetryPolicy",
    "ScheduledFault",
    "TRANSIENT_ERRORS",
    "VirtualQueueAdmission",
]
