"""Per-server circuit breaker (closed / open / half-open with probes).

When a cache server dies, every request routed to it would otherwise pay
the full connect-timeout + retry cost before degrading to the database —
exactly the delay spike Proteus exists to avoid.  The breaker makes the
fault *cheap*: after ``failure_threshold`` consecutive failures the circuit
opens and requests skip the server outright (the driver answers the engine
with ``SERVER_UNAVAILABLE`` and Algorithm 2 degrades to the database
immediately).  After ``reset_timeout`` seconds the breaker admits up to
``half_open_probes`` trial requests; one success closes the circuit, one
failure re-opens it for another timeout.

Clock-injectable and purely synchronous: every method takes an optional
explicit ``now`` so the simulator and the unit tests drive state
transitions deterministically; the live tier lets it read the frontend's
monotonic clock.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["BreakerState", "BreakerSnapshot", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Where the circuit is in its trip/recovery cycle."""

    #: normal service, failures counted
    CLOSED = "closed"
    #: tripped: requests are refused without touching the server
    OPEN = "open"
    #: reset_timeout elapsed: a bounded number of probe requests may pass
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerSnapshot:
    """Read-only view of one breaker's trip/recovery state.

    The introspection surface health monitors consume instead of reaching
    into the breaker's private fields: the state after any due
    OPEN -> HALF_OPEN promotion, when the circuit opened (``None`` while
    closed), and the failure/trip/rejection counters at snapshot time.
    """

    state: BreakerState
    open_since: Optional[float]
    consecutive_failures: int
    trips: int
    rejections: int

    @property
    def is_open(self) -> bool:
        """True while the circuit refuses regular traffic (OPEN only —
        HALF_OPEN is already probing its way back)."""
        return self.state is BreakerState.OPEN

    @property
    def is_closed(self) -> bool:
        return self.state is BreakerState.CLOSED


class CircuitBreaker:
    """Consecutive-failure breaker guarding one cache server.

    Args:
        failure_threshold: consecutive failures that trip the circuit.
        reset_timeout: seconds an open circuit stays closed to traffic
            before admitting probes.
        half_open_probes: trial requests admitted per half-open window.
        clock: fallback time source when a method is called without an
            explicit ``now``.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        #: lifetime trip count (diagnostics / reports)
        self.trips = 0
        #: requests refused while the circuit was open
        self.rejections = 0

    # --------------------------------------------------------------- state

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def state(self, now: Optional[float] = None) -> BreakerState:
        """Current state, advancing OPEN -> HALF_OPEN on timeout expiry."""
        if (
            self._state is BreakerState.OPEN
            and self._now(now) - self._opened_at >= self.reset_timeout
        ):
            self._state = BreakerState.HALF_OPEN
            self._probes_in_flight = 0
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def snapshot(self, now: Optional[float] = None) -> BreakerSnapshot:
        """The breaker's current state as a frozen, read-only record.

        Advances a due OPEN -> HALF_OPEN promotion first (same clock rules
        as :meth:`state`), so a snapshot taken after ``reset_timeout`` shows
        HALF_OPEN, not a stale OPEN.  ``open_since`` is the last trip time
        while the circuit is OPEN or HALF_OPEN, ``None`` when CLOSED.
        """
        state = self.state(now)
        return BreakerSnapshot(
            state=state,
            open_since=None if state is BreakerState.CLOSED else self._opened_at,
            consecutive_failures=self._consecutive_failures,
            trips=self.trips,
            rejections=self.rejections,
        )

    # ----------------------------------------------------------- admission

    def allow(self, now: Optional[float] = None) -> bool:
        """May a request be sent to the guarded server right now?

        CLOSED: always.  OPEN: never (counted in ``rejections``).
        HALF_OPEN: up to ``half_open_probes`` concurrent trial requests;
        the rest are refused until a probe reports back.
        """
        state = self.state(now)
        if state is BreakerState.CLOSED:
            return True
        if state is BreakerState.OPEN:
            self.rejections += 1
            return False
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        self.rejections += 1
        return False

    # ------------------------------------------------------------ outcomes

    def record_success(self, now: Optional[float] = None) -> None:
        """An admitted request completed: close the circuit."""
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._probes_in_flight = 0

    def record_failure(self, now: Optional[float] = None) -> None:
        """An admitted request failed: count it, trip/re-trip if due."""
        moment = self._now(now)
        state = self.state(moment)
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN:
            # The probe failed: straight back to OPEN for another window.
            self._trip(moment)
        elif (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip(moment)

    def _trip(self, now: float) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._probes_in_flight = 0
        self.trips += 1

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"CircuitBreaker(state={self._state.value}, "
            f"failures={self._consecutive_failures}, trips={self.trips})"
        )
