"""Retry policy: capped exponential backoff with seeded jitter.

One :class:`RetryPolicy` answers two questions for a driver:

* *Should this error be retried at all?*  Transient transport faults
  (resets, timeouts, EOF mid-reply, garbled replies on a poisoned stream)
  are retried on a fresh connection; configuration and transition errors
  are fatal — retrying cannot change the answer.
* *How long to wait between attempts?*  Capped exponential backoff with
  proportional jitter, drawn from a seeded PRNG so tests (and the sim
  substrate) see a deterministic delay sequence.

The policy is pure data + arithmetic: it never sleeps and never touches a
clock.  Drivers own the sleeping (``asyncio.sleep`` on the live tier, a
virtual-clock advance in the simulator), which is what keeps the fault
behaviour testable without wall time.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple, Type

from repro.errors import OverloadError, ProtocolError, TransportError

__all__ = ["RetryPolicy", "TRANSIENT_ERRORS", "NEVER_RETRY"]

#: The default transient fault class: errors a fresh connection + retry can
#: plausibly cure.  ``ProtocolError`` is included because the hardened
#: client poisons and replaces the connection after one, so the retry runs
#: against a clean stream; ``OSError`` covers refused/reset connections and
#: (via ``TimeoutError``) per-op timeouts.
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    TransportError,
    ProtocolError,
    ConnectionError,
    OSError,
    asyncio.TimeoutError,
    asyncio.IncompleteReadError,
)

#: Never retried, no matter how ``transient`` is configured.
#: ``CancelledError`` is a *request to stop* (it subclasses
#: ``BaseException`` precisely so handlers don't swallow it) and a retry
#: would defeat the cancellation; ``OverloadError`` is a *shed* — some
#: layer refused work it could not absorb, and an immediate retry feeds
#: the very overload that caused the refusal (storm amplification).
NEVER_RETRY: Tuple[Type[BaseException], ...] = (
    asyncio.CancelledError,
    OverloadError,
)


@dataclass
class RetryPolicy:
    """Capped exponential backoff with seeded proportional jitter.

    Attempt *i* (0-based) is followed, when it fails transiently and
    another attempt remains, by a sleep of::

        min(max_delay, base_delay * multiplier**i) * (1 ± jitter)

    where the jitter factor is drawn uniformly from ``[1-jitter, 1+jitter]``
    by a PRNG seeded with ``seed`` — one fresh PRNG per :meth:`delays`
    call, so every retry sequence is reproducible.

    Args:
        max_attempts: total tries including the first (1 = no retries).
        base_delay: backoff before the first retry, seconds.
        multiplier: exponential growth factor per retry.
        max_delay: backoff cap, seconds.
        jitter: proportional jitter fraction in ``[0, 1]``.
        seed: PRNG seed for the jitter stream.
        transient: exception classes worth retrying (anything else is
            fatal and must propagate immediately).
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.2
    seed: int = 0
    transient: Tuple[Type[BaseException], ...] = field(
        default=TRANSIENT_ERRORS
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    # ------------------------------------------------------- classification

    def is_transient(self, error: BaseException) -> bool:
        """True when *error* is worth a retry on a fresh connection.

        ``NEVER_RETRY`` errors (cancellation, shed replies) answer
        ``False`` unconditionally — even a custom ``transient`` tuple
        cannot opt them back in.
        """
        if isinstance(error, NEVER_RETRY):
            return False
        return isinstance(error, self.transient)

    # ------------------------------------------------------------- backoff

    def backoff(self, attempt: int, rng: Optional[random.Random] = None) -> float:
        """The (jittered) sleep after failed attempt *attempt* (0-based)."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if self.jitter == 0.0:
            return base
        rng = rng if rng is not None else random.Random(self.seed)
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))

    def delays(self, rng: Optional[random.Random] = None) -> Iterator[float]:
        """The full backoff sequence: ``max_attempts - 1`` sleeps.

        With no *rng* given, a fresh ``random.Random(seed)`` is used, so two
        calls yield identical sequences — the property the seeded-jitter
        tests pin.
        """
        rng = rng if rng is not None else random.Random(self.seed)
        for attempt in range(self.max_attempts - 1):
            yield self.backoff(attempt, rng)

    def total_backoff(self) -> float:
        """Worst-case total sleep time (jitter at +jitter on every retry)."""
        return sum(
            min(self.max_delay, self.base_delay * self.multiplier ** i)
            * (1.0 + self.jitter)
            for i in range(self.max_attempts - 1)
        )
