"""Retry budgets and adaptive concurrency windows (overload armor).

Proteus runs the cache tier at the knee of the provisioning curve, so
overload is the *normal* failure mode: a scale-down shifts remap misses
onto the DB path, and a flash crowd arriving mid-transition pushes the
tier past saturation.  Backoff alone does not save a fleet from that —
when every client retries, the retries *are* the overload (the
metastable retry-storm collapse).  Two mechanisms break the loop:

* :class:`RetryBudget` — a token bucket that caps retries at a
  configurable fraction of *recent* request volume.  Each recorded
  request deposits ``ratio`` tokens; each granted retry withdraws one;
  the balance decays exponentially so a quiet period forgets old
  traffic.  Fleet-wide, retries can therefore never exceed
  ``ratio × offered load`` (plus a small floor for lone clients), which
  bounds amplification at ``1 + ratio`` no matter how badly the tier is
  failing.
* :class:`AdaptiveConcurrencyLimiter` — an AIMD window on in-flight
  work, the TCP congestion-avoidance shape applied to RPCs: successes
  grow the window additively (~ +1 per window of successes), a
  deadline/timeout/shed signal shrinks it multiplicatively, and a
  cooldown makes one burst of timeouts cost one cut instead of one cut
  per timeout.  The window converges to what the backend actually
  sustains, without configuration.

Both are clock-injectable exactly like
:class:`~repro.resilience.breaker.CircuitBreaker`: every method takes an
optional explicit ``now``, the constructor takes a fallback ``clock``,
so the simulator and the unit tests drive them deterministically while
the live tier reads monotonic time.  Purely synchronous, no sleeping —
drivers own the waiting.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Optional

__all__ = ["RetryBudget", "AdaptiveConcurrencyLimiter"]


class RetryBudget:
    """Token bucket capping retries at a fraction of recent requests.

    Every first attempt calls :meth:`record_request` (depositing
    ``ratio`` tokens, up to ``burst``); every retry must win
    :meth:`allow_retry` (withdrawing one token).  The balance decays
    with half-life ``halflife`` so "recent volume" means the last few
    half-lives, not all of history.  A small reserve accrues at
    ``min_retries_per_second`` so a client trickling single requests can
    still retry occasionally — without it, ``ratio < 1`` would starve
    low-rate traffic forever.

    Args:
        ratio: tokens deposited per recorded request — the steady-state
            retries-per-request cap.  Finagle ships 0.2; so do we.
        min_retries_per_second: reserve accrual rate, so idle or
            low-volume clients keep a minimal retry allowance.
        burst: balance cap, bounding how many retries a long quiet
            stretch can bank for one thundering moment.
        halflife: seconds for half the balance to decay — the width of
            the "recent volume" window.
        clock: fallback time source when a method is called without an
            explicit ``now``.
    """

    def __init__(
        self,
        ratio: float = 0.2,
        min_retries_per_second: float = 1.0,
        burst: float = 100.0,
        halflife: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 <= ratio <= 1.0:
            raise ValueError(f"ratio must be in [0, 1], got {ratio}")
        if min_retries_per_second < 0:
            raise ValueError(
                "min_retries_per_second must be >= 0, "
                f"got {min_retries_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if halflife <= 0:
            raise ValueError(f"halflife must be > 0, got {halflife}")
        self.ratio = ratio
        self.min_retries_per_second = min_retries_per_second
        self.burst = burst
        self.halflife = halflife
        self._clock = clock
        self._balance = 0.0
        self._reserve = 0.0
        self._last = clock()
        #: retries granted / refused (lifetime, for reports)
        self.granted = 0
        self.denied = 0
        #: requests recorded (lifetime)
        self.requests = 0

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def _advance(self, now: float) -> None:
        """Decay the balance and accrue the reserve up to *now*."""
        elapsed = now - self._last
        if elapsed <= 0:
            return
        self._balance *= 0.5 ** (elapsed / self.halflife)
        self._reserve = min(
            1.0, self._reserve + elapsed * self.min_retries_per_second
        )
        self._last = now

    def record_request(self, n: int = 1, now: Optional[float] = None) -> None:
        """Deposit for *n* first attempts (NOT retries) just issued."""
        self._advance(self._now(now))
        self.requests += n
        self._balance = min(self.burst, self._balance + self.ratio * n)

    def allow_retry(self, now: Optional[float] = None) -> bool:
        """Withdraw one retry token; ``False`` means *do not retry*.

        Spends the deposited balance first, then the trickle reserve.
        A refusal is final for this attempt — callers must fail over
        (degrade to the database), not wait and ask again.
        """
        self._advance(self._now(now))
        if self._balance >= 1.0:
            self._balance -= 1.0
            self.granted += 1
            return True
        if self._reserve >= 1.0:
            self._reserve -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def balance(self, now: Optional[float] = None) -> float:
        """Current (decayed) token balance — diagnostics only."""
        self._advance(self._now(now))
        return self._balance

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"RetryBudget(ratio={self.ratio}, balance={self._balance:.2f}, "
            f"granted={self.granted}, denied={self.denied})"
        )


class AdaptiveConcurrencyLimiter:
    """AIMD in-flight window: grow on success, cut on overload signals.

    The window is a float so additive increase can be fractional
    (``increase / limit`` per success ≈ +1 per window of successes, the
    congestion-avoidance slope); admission compares integral in-flight
    count against ``floor`` of it.  Overload signals (deadline blown,
    op timeout, server shed) multiply the window by ``backoff``, but at
    most once per ``cooldown`` seconds — all the timeouts of one stalled
    window arrive together and must count as *one* congestion event, or
    the window collapses to the floor on every blip.

    Args:
        initial: starting window.
        min_limit / max_limit: clamp bounds for the window.
        increase: additive-increase numerator (+``increase/limit`` per
            success).
        backoff: multiplicative-decrease factor in ``(0, 1)``.
        cooldown: seconds after a cut during which further overload
            signals are absorbed silently.
        clock: fallback time source when a method is called without an
            explicit ``now``.
    """

    def __init__(
        self,
        initial: float = 16.0,
        min_limit: float = 1.0,
        max_limit: float = 1024.0,
        increase: float = 1.0,
        backoff: float = 0.5,
        cooldown: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_limit < 1:
            raise ValueError(f"min_limit must be >= 1, got {min_limit}")
        if max_limit < min_limit:
            raise ValueError(
                f"max_limit must be >= min_limit, got {max_limit} < {min_limit}"
            )
        if not min_limit <= initial <= max_limit:
            raise ValueError(
                f"initial must be in [{min_limit}, {max_limit}], got {initial}"
            )
        if increase <= 0:
            raise ValueError(f"increase must be > 0, got {increase}")
        if not 0.0 < backoff < 1.0:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.increase = increase
        self.backoff = backoff
        self.cooldown = cooldown
        self._clock = clock
        self._limit = float(initial)
        self._last_cut = -math.inf
        #: current in-flight count (callers pair try_acquire/release)
        self.inflight = 0
        #: admissions refused because the window was full
        self.shed = 0
        #: multiplicative cuts taken (cooldown-absorbed signals excluded)
        self.cuts = 0
        #: highest in-flight count ever admitted
        self.peak_inflight = 0

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    @property
    def limit(self) -> float:
        """The current (fractional) window."""
        return self._limit

    @property
    def window(self) -> int:
        """The integral admission window (``floor(limit)``, >= 1)."""
        return max(1, int(self._limit))

    # ----------------------------------------------------------- admission

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Admit one unit of in-flight work, or refuse (counted in
        ``shed``).  Pair every ``True`` with exactly one :meth:`release`."""
        if self.inflight < self.window:
            self.inflight += 1
            if self.inflight > self.peak_inflight:
                self.peak_inflight = self.inflight
            return True
        self.shed += 1
        return False

    def release(self) -> None:
        """Return one admitted unit (clamped — never goes negative)."""
        self.inflight = max(0, self.inflight - 1)

    # ------------------------------------------------------------ feedback

    def on_success(self, now: Optional[float] = None) -> None:
        """An admitted unit completed cleanly: additive increase."""
        self._limit = min(
            self.max_limit, self._limit + self.increase / max(1.0, self._limit)
        )

    def on_overload(self, now: Optional[float] = None) -> None:
        """A deadline/timeout/shed signal: multiplicative decrease.

        At most one cut per ``cooldown`` window — signals inside the
        cooldown are echoes of the same congestion event.
        """
        moment = self._now(now)
        if moment - self._last_cut < self.cooldown:
            return
        self._last_cut = moment
        self._limit = max(self.min_limit, self._limit * self.backoff)
        self.cuts += 1

    def __repr__(self) -> str:  # pragma: no cover - diagnostics only
        return (
            f"AdaptiveConcurrencyLimiter(limit={self._limit:.1f}, "
            f"inflight={self.inflight}, shed={self.shed}, cuts={self.cuts})"
        )
