"""An asyncio web tier driving Algorithm 2 against live memcached servers.

Completes the runnable substrate: where :mod:`repro.web.frontend` executes
the retrieval engine inside the simulator, :class:`AsyncProteusFrontend`
executes the *same* engine — the sans-IO
:class:`~repro.core.retrieval.RetrievalEngine` — over real TCP against
:class:`~repro.net.server.MemcachedServer` (or stock memcached, for the
standard commands) endpoints:

* routing by the deterministic Proteus placement;
* smooth scale-down/up: ``get SET_BLOOM_FILTER`` + ``get BLOOM_FILTER`` on
  every old owner (the digest broadcast, over the wire), then Algorithm 2
  per request until the TTL deadline passes — tracked by the same
  :class:`~repro.core.transition.TransitionManager` the simulator uses;
* dog-pile coalescing (``coalesce_misses=True``): concurrent misses for one
  key await the leader's DB fetch on an :class:`asyncio.Future` instead of
  issuing duplicate reads;
* the backing database is an async callable, so tests plug in a dict and a
  deployment plugs in a real pool.

Per-endpoint locks serialize protocol exchanges on each connection, so one
frontend may serve concurrent ``fetch`` tasks (required for coalescing to
ever trigger); run several instances to scale beyond one connection per
cache server.
"""

from __future__ import annotations

import asyncio
import time
from typing import (
    Awaitable,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import BloomConfig
from repro.core.retrieval import (
    CheckDigest,
    Command,
    FetchPath,
    FetchResult,
    FetchStats,
    ProbeCache,
    ProbeCacheMulti,
    ReadDatabase,
    RetrievalConfig,
    RetrievalConfigMixin,
    RetrievalEngine,
    WaitForLeader,
    WriteBack,
    WriteBackMulti,
)
from repro.core.router import ProteusRouter
from repro.core.transition import Transition, TransitionManager
from repro.errors import ConfigurationError, TransitionError
from repro.net.client import MemcachedClient

#: async database fetch: key -> value bytes (authoritative, never misses)
DatabaseFetch = Callable[[str], Awaitable[bytes]]


class AsyncProteusFrontend(RetrievalConfigMixin):
    """Algorithm 2 over TCP memcached endpoints.

    Args:
        endpoints: ``(host, port)`` per cache server, in provisioning order.
        bloom_config: the cluster-wide digest geometry (web servers know it
            out of band, as in the paper).
        database: async authoritative fetch.
        initial_active: ``n(0)``.
        clock: time source for TTL deadlines (injectable in tests).
        coalesce_misses: dog-pile protection (see
            :class:`~repro.core.retrieval.RetrievalConfig`).
        config: full engine options (overrides *coalesce_misses*); shared
            config surface via :class:`RetrievalConfigMixin`.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        bloom_config: BloomConfig,
        database: DatabaseFetch,
        initial_active: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        coalesce_misses: bool = False,
        config: Optional[RetrievalConfig] = None,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("need at least one cache endpoint")
        self.endpoints = list(endpoints)
        self.bloom_config = bloom_config
        self.database = database
        self.router = ProteusRouter(len(self.endpoints))
        self.engine = RetrievalEngine(
            self.router, coalesce_misses=coalesce_misses, config=config
        )
        self._clock = clock
        self._clients: List[Optional[MemcachedClient]] = [None] * len(endpoints)
        self._locks = [asyncio.Lock() for _ in endpoints]
        active = len(self.endpoints) if initial_active is None else initial_active
        if not 1 <= active <= len(self.endpoints):
            raise ConfigurationError(f"initial_active out of range: {active}")
        self._manager = TransitionManager(active)
        #: key -> future resolved when the leader's write-back lands
        self._inflight: Dict[str, asyncio.Future] = {}

    # ------------------------------------------------------------- facade

    @property
    def n_active(self) -> int:
        """The committed active count (the new mapping's ``n``)."""
        return self._manager.active_count

    @property
    def stats(self) -> FetchStats:
        """Per-path counters (owned by the engine), same
        :class:`FetchPath` keys as the simulator's."""
        return self.engine.stats

    # ----------------------------------------------------------- lifecycle

    async def connect(self) -> "AsyncProteusFrontend":
        """Open one connection per endpoint."""
        for index, (host, port) in enumerate(self.endpoints):
            if self._clients[index] is None:
                self._clients[index] = await MemcachedClient(host, port).connect()
        return self

    async def close(self) -> None:
        for index, client in enumerate(self._clients):
            if client is not None:
                await client.close()
                self._clients[index] = None

    async def __aenter__(self) -> "AsyncProteusFrontend":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _client(self, server_id: int) -> MemcachedClient:
        client = self._clients[server_id]
        if client is None:
            raise ConfigurationError(
                f"no connection to cache server {server_id}; call connect()"
            )
        return client

    async def _get(self, server_id: int, key: str) -> Optional[bytes]:
        client = self._client(server_id)
        async with self._locks[server_id]:
            return await client.get(key)

    async def _set(self, server_id: int, key: str, value: bytes) -> None:
        client = self._client(server_id)
        async with self._locks[server_id]:
            await client.set(key, value)

    async def _get_multi(
        self, server_id: int, keys: Sequence[str]
    ) -> Dict[str, bytes]:
        client = self._client(server_id)
        async with self._locks[server_id]:
            return await client.get_multi(keys)

    async def _set_multi(self, server_id: int, items) -> None:
        client = self._client(server_id)
        async with self._locks[server_id]:
            await client.set_multi(items)

    # ----------------------------------------------------------- transitions

    def _current_transition(self) -> Optional[Transition]:
        return self._manager.current(self._clock())

    async def scale_to(self, n_new: int, ttl: float) -> Transition:
        """Begin a smooth transition: broadcast digests, flip routing.

        The caller is responsible for actually powering servers up/down at
        the deadline (the actuator's job); the frontend only needs the
        routing epochs and the digests.
        """
        if not 1 <= n_new <= len(self.endpoints):
            raise TransitionError(f"n_new out of range: {n_new}")
        now = self._clock()
        if self._manager.in_transition(now):
            raise TransitionError("previous drain window still open")
        if n_new == self.n_active:
            raise TransitionError("already at the requested size")
        n_old = self.n_active
        digests: Dict[int, BloomFilter] = {}
        for server_id in range(n_old):
            client = self._client(server_id)
            async with self._locks[server_id]:
                await client.snapshot_digest()
                digests[server_id] = await client.fetch_digest(
                    self.bloom_config.num_counters, self.bloom_config.num_hashes
                )
        self._manager.ttl = ttl
        return self._manager.begin(n_new, now, digests=digests)

    # ------------------------------------------------------------ Algorithm 2

    async def fetch(self, key: str) -> FetchResult:
        """Retrieve *key*; returns the unified
        :class:`~repro.core.retrieval.FetchResult` — the same type the
        simulated tier returns, timed against this frontend's clock.

        ``result.path`` is a :class:`~repro.core.retrieval.FetchPath` — a
        ``str`` subclass, so comparisons against the wire labels
        (``"hit_new"``, ...) keep working.  The historical
        ``value, path = await frontend.fetch(key)`` tuple unpacking still
        works via a deprecation shim on :class:`FetchResult`.
        """
        started = self._clock()
        epochs = self._manager.routing_counts(started)
        steps = self.engine.retrieve(key, epochs)
        result = None
        leader: Optional[asyncio.Future] = None
        try:
            while True:
                command = steps.send(result)
                if isinstance(command, ProbeCache):
                    result = await self._get(command.server_id, key)
                elif isinstance(command, CheckDigest):
                    transition = epochs.transition
                    result = transition is not None and transition.digest_hit(
                        command.server_id, key, command.hashes
                    )
                elif isinstance(command, WaitForLeader):
                    pending = self._inflight.get(key)
                    if pending is None:
                        result = False
                    else:
                        await asyncio.shield(pending)
                        result = True
                elif isinstance(command, ReadDatabase):
                    if command.announce_leader and key not in self._inflight:
                        leader = asyncio.get_running_loop().create_future()
                        self._inflight[key] = leader
                    result = await self.database(key)
                elif isinstance(command, WriteBack):
                    await self._set(command.server_id, key, command.value)
                    result = None
                else:  # pragma: no cover - exhaustive over Command
                    raise ConfigurationError(
                        f"unknown engine command: {command!r}"
                    )
        except StopIteration as stop:
            outcome = stop.value
        finally:
            if leader is not None:
                # Resolve only after the write-back landed (or the fetch
                # failed), so followers re-probing the new owner find it.
                if self._inflight.get(key) is leader:
                    del self._inflight[key]
                if not leader.done():
                    leader.set_result(None)
        return FetchResult(
            key=key, value=outcome.value, path=outcome.path,
            started=started, completed=self._clock(),
            new_server=outcome.new_server, old_server=outcome.old_server,
        )

    async def fetch_many(self, keys: Iterable[str]) -> Dict[str, FetchResult]:
        """Retrieve a whole key set with at most one ``get_multi`` round
        trip per probed server per routing epoch.

        Drives :meth:`RetrievalEngine.retrieve_many`: each round's commands
        execute concurrently (``asyncio.gather``), so probes of different
        servers overlap the way spymemcached pipelines a page's lookups.
        Values, paths, and :class:`FetchStats` counts are identical to
        awaiting :meth:`fetch` once per key.
        """
        started = self._clock()
        epochs = self._manager.routing_counts(started)
        steps = self.engine.retrieve_many(keys, epochs)
        answers = None
        leaders: Dict[str, asyncio.Future] = {}
        try:
            while True:
                round_ = steps.send(answers)
                answers = tuple(
                    await asyncio.gather(
                        *(
                            self._execute_batched(command, epochs, leaders)
                            for command in round_
                        )
                    )
                )
        except StopIteration as stop:
            outcomes = stop.value
        finally:
            for key, leader in leaders.items():
                if self._inflight.get(key) is leader:
                    del self._inflight[key]
                if not leader.done():
                    leader.set_result(None)
        completed = self._clock()
        return {
            key: FetchResult(
                key=key, value=outcome.value, path=outcome.path,
                started=started, completed=completed,
                new_server=outcome.new_server, old_server=outcome.old_server,
            )
            for key, outcome in outcomes.items()
        }

    async def _execute_batched(
        self,
        command: Command,
        epochs,
        leaders: Dict[str, asyncio.Future],
    ):
        """Perform one batched-round command (rounds run under gather)."""
        if isinstance(command, ProbeCacheMulti):
            return await self._get_multi(command.server_id, command.keys)
        if isinstance(command, WriteBackMulti):
            await self._set_multi(command.server_id, command.items)
            return None
        if isinstance(command, CheckDigest):
            transition = epochs.transition
            return transition is not None and transition.digest_hit(
                command.server_id, command.key, command.hashes
            )
        if isinstance(command, WaitForLeader):
            pending = self._inflight.get(command.key)
            if pending is None:
                return False
            await asyncio.shield(pending)
            return True
        if isinstance(command, ReadDatabase):
            key = command.key
            if command.announce_leader and key not in self._inflight:
                leader = asyncio.get_running_loop().create_future()
                self._inflight[key] = leader
                leaders[key] = leader
            return await self.database(key)
        raise ConfigurationError(f"unknown batched command: {command!r}")

    async def put(self, key: str, value: bytes) -> None:
        """Write-through to the authoritative owner under the new mapping."""
        await self._set(self.router.route(key, self.n_active), key, value)
