"""An asyncio web tier driving Algorithm 2 against live memcached servers.

Completes the runnable substrate: where :mod:`repro.web.frontend` executes
the retrieval engine inside the simulator, :class:`AsyncProteusFrontend`
executes the *same* engine — the sans-IO
:class:`~repro.core.retrieval.RetrievalEngine` — over real TCP against
:class:`~repro.net.server.MemcachedServer` (or stock memcached, for the
standard commands) endpoints:

* routing by the deterministic Proteus placement;
* smooth scale-down/up: ``get SET_BLOOM_FILTER`` + ``get BLOOM_FILTER`` on
  every old owner (the digest broadcast, over the wire), then Algorithm 2
  per request until the TTL deadline passes — tracked by the same
  :class:`~repro.core.transition.TransitionManager` the simulator uses;
* dog-pile coalescing (``coalesce_misses=True``): concurrent misses for one
  key await the leader's DB fetch on an :class:`asyncio.Future` instead of
  issuing duplicate reads;
* the backing database is an async callable, so tests plug in a dict and a
  deployment plugs in a real pool.

Each endpoint is fronted by a :class:`~repro.net.pool.ConnectionPool` of
pipelined :class:`~repro.net.client.MemcachedClient` connections
(``pool_size`` per server, lazily dialled): concurrent ``fetch`` /
``fetch_many`` tasks to the same server no longer serialize on one
stream — commands pipeline within each connection and spread across the
pool, the way the paper's web tier pools its spymemcached connections.
``pipeline=False`` restores the strict one-in-flight discipline per
connection (the A/B baseline the net throughput bench measures).

Fault tolerance
---------------

Every cache RPC runs through :meth:`AsyncProteusFrontend._cache_rpc`,
which layers the :mod:`repro.resilience` policies around the socket work:

* a per-server :class:`~repro.resilience.CircuitBreaker` refuses the RPC
  outright while the server's circuit is open (no connect-timeout tax on
  every request to a dead server);
* transient transport faults are retried with the policy's seeded
  backoff, against the auto-reconnecting client;
* a per-request :class:`~repro.resilience.Deadline` bounds the total time
  spent on cache-side recovery — a sleep that would overrun the budget is
  skipped and the request fails over immediately.

When the policy's ``degrade_to_database`` flag is set (the default), an
RPC that cannot be completed answers the engine with
``SERVER_UNAVAILABLE`` instead of raising, and Algorithm 2 degrades: a
dead new owner forces a database read (``FetchPath.DEGRADED_DB``), a dead
old owner skips the migration probe, and a failed write-back is recorded
but never fails the fetch.  The caller always gets a correct value;
``stats.degraded`` says what it cost.
"""

from __future__ import annotations

import asyncio
import time
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import BloomConfig
from repro.core.retrieval import (
    BatchCommand,
    CheckDigest,
    Command,
    FetchPath,
    FetchResult,
    FetchStats,
    ProbeCache,
    ReadDatabase,
    RetrievalConfig,
    RetrievalConfigMixin,
    RetrievalEngine,
    SERVER_UNAVAILABLE,
    WaitForLeader,
    WriteBack,
)
from repro.core.router import ProteusRouter
from repro.core.transition import Transition, TransitionManager
from repro.errors import (
    ClientOverloadError,
    ConfigurationError,
    DeadlineExceeded,
    DigestBroadcastError,
    OverloadError,
    ServerBusyError,
    TransitionError,
    TransportError,
)
from repro.net.pool import ConnectionPool
from repro.resilience import (
    AdaptiveConcurrencyLimiter,
    CircuitBreaker,
    Deadline,
    ResiliencePolicy,
    RetryBudget,
)

#: async database fetch: key -> value bytes (authoritative, never misses)
DatabaseFetch = Callable[[str], Awaitable[bytes]]


def _is_timeout(error: BaseException) -> bool:
    """True when *error* is (or was caused by) an operation timeout —
    the congestion signal the AIMD limiter shrinks on.  Refused
    connections are a liveness problem (the breaker's job), not a
    window problem, so they deliberately do not count."""
    seen = set()
    current: Optional[BaseException] = error
    while current is not None and id(current) not in seen:
        if isinstance(current, asyncio.TimeoutError):
            return True
        seen.add(id(current))
        current = current.__cause__
    return False


class AsyncProteusFrontend(RetrievalConfigMixin):
    """Algorithm 2 over TCP memcached endpoints.

    Args:
        endpoints: ``(host, port)`` per cache server, in provisioning order.
        bloom_config: the cluster-wide digest geometry (web servers know it
            out of band, as in the paper).
        database: async authoritative fetch.
        initial_active: ``n(0)``.
        clock: time source for TTL deadlines (injectable in tests).
        coalesce_misses: dog-pile protection (see
            :class:`~repro.core.retrieval.RetrievalConfig`).
        config: full engine options (overrides *coalesce_misses*); shared
            config surface via :class:`RetrievalConfigMixin`.
        resilience: retry/breaker/deadline policy for cache RPCs;
            :meth:`ResiliencePolicy.default` when omitted.
        pool_size: pipelined connections per cache server (the paper's
            web tier pools its spymemcached connections the same way).
        pipeline: allow many in-flight commands per connection (default);
            ``False`` is the pre-pipelining one-exchange-at-a-time
            baseline.
        nodelay: set ``TCP_NODELAY`` on every cache connection.
        max_inflight_per_conn: per-connection in-flight window handed to
            every pool (see
            :class:`~repro.net.pool.ConnectionPool`); with a request
            deadline attached, a fully saturated pool fails fast instead
            of queueing.  ``None`` keeps the unbounded pre-armor
            behaviour.
        admission: DB-path admission controller (typically a
            :class:`~repro.resilience.ConcurrencyAdmission`) wired into
            the engine; ``None`` admits everything.  Shed DB work
            answers ``None`` with :attr:`FetchPath.SHED` — hits are
            always served.
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        bloom_config: BloomConfig,
        database: DatabaseFetch,
        initial_active: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        coalesce_misses: bool = False,
        config: Optional[RetrievalConfig] = None,
        resilience: Optional[ResiliencePolicy] = None,
        pool_size: int = 4,
        pipeline: bool = True,
        nodelay: bool = True,
        max_inflight_per_conn: Optional[int] = None,
        admission=None,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("need at least one cache endpoint")
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be >= 1: {pool_size}")
        self.endpoints = list(endpoints)
        self.bloom_config = bloom_config
        self.database = database
        self.router = ProteusRouter(len(self.endpoints))
        self.engine = RetrievalEngine(
            self.router, coalesce_misses=coalesce_misses, config=config
        )
        self._clock = clock
        self.pool_size = pool_size
        self.pipeline = pipeline
        self.nodelay = nodelay
        self.pools: List[Optional[ConnectionPool]] = [None] * len(endpoints)
        self._started = False
        active = len(self.endpoints) if initial_active is None else initial_active
        if not 1 <= active <= len(self.endpoints):
            raise ConfigurationError(f"initial_active out of range: {active}")
        self._manager = TransitionManager(active)
        #: key -> future resolved when the leader's write-back lands
        self._inflight: Dict[str, asyncio.Future] = {}
        self.resilience = resilience or ResiliencePolicy.default()
        self.max_inflight_per_conn = max_inflight_per_conn
        self.engine.admission = admission
        #: one breaker per cache server, sharing this frontend's clock
        self.breakers: List[CircuitBreaker] = [
            self.resilience.new_breaker(clock) for _ in endpoints
        ]
        #: one retry budget for the whole frontend (``None`` when the
        #: policy's ``retry_budget_ratio`` is 0): the cap is on *total*
        #: retry volume, so a storm cannot multiply across servers
        self.retry_budget: Optional[RetryBudget] = (
            self.resilience.new_retry_budget(clock)
        )
        #: per-server AIMD in-flight windows (``None`` entries when the
        #: policy's ``limiter_window`` is 0)
        self.limiters: List[Optional[AdaptiveConcurrencyLimiter]] = [
            self.resilience.new_limiter(clock) for _ in endpoints
        ]
        #: cache RPCs answered with ``SERVER_UNAVAILABLE`` (degraded)
        self.unavailable_rpcs = 0
        #: transient cache-RPC failures observed (pre-retry, per attempt)
        self.transient_failures = 0
        #: cache RPCs refused by overload armor (limiter window full,
        #: server busy reply, saturated pool) — never retried
        self.shed_rpcs = 0
        #: retries skipped because the budget was spent
        self.budget_denied_retries = 0

    # ------------------------------------------------------------- facade

    @property
    def n_active(self) -> int:
        """The committed active count (the new mapping's ``n``)."""
        return self._manager.active_count

    @property
    def stats(self) -> FetchStats:
        """Per-path counters (owned by the engine), same
        :class:`FetchPath` keys as the simulator's."""
        return self.engine.stats

    @property
    def admission(self):
        """The engine's DB-path admission controller (may be ``None``)."""
        return self.engine.admission

    def queue_depth(self, now: Optional[float] = None) -> float:
        """Outstanding admitted DB work (0 without admission) — the
        gauge health monitors watch alongside the shed rate."""
        if self.engine.admission is None:
            return 0.0
        return self.engine.admission.depth(
            self._clock() if now is None else now
        )

    def transport_stats(self) -> Dict[str, int]:
        """Aggregated transport/overload counters across every pool,
        limiter, and the retry budget — the frontend-level stats surface
        the ISSUE's armor exposes (all monotonic)."""
        pools = [pool for pool in self.pools if pool is not None]
        stats = {
            "dials": sum(p.dials for p in pools),
            "ejections": sum(p.ejections for p in pools),
            "reconnects": self.reconnects,
            "pool_waited": sum(p.waited for p in pools),
            "pool_leases_peak": max(
                (p.leases_peak for p in pools), default=0
            ),
            "pool_overflow_failures": sum(
                p.overflow_failures for p in pools
            ),
            "unavailable_rpcs": self.unavailable_rpcs,
            "transient_failures": self.transient_failures,
            "shed_rpcs": self.shed_rpcs,
            "budget_denied_retries": self.budget_denied_retries,
            "shed_fetches": self.engine.stats.shed,
        }
        if self.retry_budget is not None:
            stats["retries_granted"] = self.retry_budget.granted
            stats["retries_denied"] = self.retry_budget.denied
        limiters = [lim for lim in self.limiters if lim is not None]
        if limiters:
            stats["limiter_shed"] = sum(lim.shed for lim in limiters)
            stats["limiter_cuts"] = sum(lim.cuts for lim in limiters)
            stats["limiter_peak_inflight"] = max(
                lim.peak_inflight for lim in limiters
            )
        return stats

    # ----------------------------------------------------------- lifecycle

    async def connect(self) -> "AsyncProteusFrontend":
        """Create one connection pool per endpoint and prewarm each.

        An endpoint that refuses the initial dial does not fail the whole
        frontend: its pool stays registered (it keeps dialling lazily),
        its breaker absorbs the failures, and requests degrade around it
        until it comes back.
        """
        for index, (host, port) in enumerate(self.endpoints):
            if self.pools[index] is None:
                self.pools[index] = ConnectionPool(
                    host,
                    port,
                    size=self.pool_size,
                    timeout=self.resilience.op_timeout,
                    pipeline=self.pipeline,
                    nodelay=self.nodelay,
                    max_inflight_per_conn=self.max_inflight_per_conn,
                )
            try:
                await self.pools[index].prewarm()
            except (TransportError, OSError):
                self.breakers[index].record_failure()
        self._started = True
        return self

    async def close(self) -> None:
        for index, pool in enumerate(self.pools):
            if pool is not None:
                await pool.close()
                self.pools[index] = None
        self._started = False

    async def __aenter__(self) -> "AsyncProteusFrontend":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    @property
    def reconnects(self) -> int:
        """Connection churn across every server's pool (client redials
        plus pool ejections) — the signal health monitors watch."""
        return sum(pool.reconnects for pool in self.pools if pool is not None)

    def _pool(self, server_id: int) -> ConnectionPool:
        pool = self.pools[server_id]
        if pool is None or not self._started:
            raise ConfigurationError(
                f"no connection pool for cache server {server_id}; "
                "call connect()"
            )
        return pool

    async def _get(
        self,
        server_id: int,
        key: str,
        deadline: Optional[Deadline] = None,
    ) -> Optional[bytes]:
        async with self._pool(server_id).connection(deadline) as client:
            return await client.get(key)

    async def _set(
        self,
        server_id: int,
        key: str,
        value: bytes,
        deadline: Optional[Deadline] = None,
    ) -> None:
        async with self._pool(server_id).connection(deadline) as client:
            await client.set(key, value)

    async def _get_multi(
        self,
        server_id: int,
        keys: Sequence[str],
        deadline: Optional[Deadline] = None,
    ) -> Dict[str, bytes]:
        async with self._pool(server_id).connection(deadline) as client:
            return await client.get_multi(keys)

    async def _set_multi(
        self, server_id: int, items, deadline: Optional[Deadline] = None
    ) -> None:
        async with self._pool(server_id).connection(deadline) as client:
            await client.set_multi(items)

    # ------------------------------------------------------ fault-tolerant RPC

    async def _cache_rpc(
        self,
        server_id: int,
        op: Callable[[], Awaitable[Any]],
        deadline: Optional[Deadline] = None,
    ) -> Any:
        """Run one cache RPC under the breaker + retry + deadline policy.

        *op* is a zero-argument coroutine factory (so each retry issues a
        fresh exchange; the endpoint lock is taken inside it, which keeps
        the lock released across backoff sleeps).  Answers the engine with
        ``SERVER_UNAVAILABLE`` — never raises a transient error — when the
        policy degrades to the database; with ``degrade_to_database=False``
        the final transient error propagates instead.  Fatal errors
        (anything the retry policy does not classify transient) always
        propagate: retrying cannot change a configuration mistake.

        Overload armor (all opt-in via :class:`ResiliencePolicy`):

        * an already-expired deadline fails fast — no dial, no queue,
          no retry;
        * the per-server AIMD limiter bounds concurrent RPCs; a refused
          acquire degrades immediately (counted in :attr:`shed_rpcs`);
        * :class:`~repro.errors.OverloadError` answers (``SERVER_ERROR
          busy`` sheds, saturated pools, full client windows) are
          **never retried** — a storm cannot amplify through here;
        * every retry sleep must be granted by the frontend-wide
          :class:`~repro.resilience.RetryBudget`, so total retry volume
          stays a bounded fraction of request volume;
        * operation timeouts feed ``limiter.on_overload`` (the window
          shrinks multiplicatively); successes grow it back additively.
        """
        policy = self.resilience
        if deadline is not None and deadline.expired():
            # Fail fast on a dead budget: skip dialling and queueing
            # entirely — the RPC could not possibly be useful.
            self.unavailable_rpcs += 1
            if policy.degrade_to_database:
                return SERVER_UNAVAILABLE
            deadline.check(f"cache rpc to server {server_id}")
        breaker = self.breakers[server_id]
        if not breaker.allow(self._clock()):
            self.unavailable_rpcs += 1
            if policy.degrade_to_database:
                return SERVER_UNAVAILABLE
            raise TransportError(
                f"circuit open for cache server {server_id}"
            )
        limiter = self.limiters[server_id]
        if limiter is not None and not limiter.try_acquire(self._clock()):
            self.shed_rpcs += 1
            self.unavailable_rpcs += 1
            if policy.degrade_to_database:
                return SERVER_UNAVAILABLE
            raise ClientOverloadError(
                f"cache server {server_id}: in-flight window full"
            )
        try:
            if self.retry_budget is not None:
                # Deposit happens per RPC, not per attempt: the budget
                # caps retries at a fraction of *request* volume.
                self.retry_budget.record_request(now=self._clock())
            sleeps = list(policy.retry.delays())
            last_error: Optional[BaseException] = None
            for attempt in range(policy.retry.max_attempts):
                if deadline is not None and deadline.expired():
                    break
                try:
                    result = await op()
                except OverloadError as error:
                    # A shed reply or a local bound: retrying would feed
                    # the storm, so degrade straight to the database.
                    last_error = error
                    self.shed_rpcs += 1
                    if limiter is not None and isinstance(
                        error, ServerBusyError
                    ):
                        limiter.on_overload(self._clock())
                    break
                except DeadlineExceeded as error:
                    last_error = error
                    break
                except Exception as error:
                    if not policy.retry.is_transient(error):
                        raise
                    last_error = error
                    self.transient_failures += 1
                    breaker.record_failure(self._clock())
                    if limiter is not None and _is_timeout(error):
                        limiter.on_overload(self._clock())
                    if attempt >= len(sleeps):
                        break
                    if not breaker.allow(self._clock()):
                        # The circuit tripped mid-loop: stop hammering.
                        break
                    if self.retry_budget is not None and (
                        not self.retry_budget.allow_retry(self._clock())
                    ):
                        self.budget_denied_retries += 1
                        break
                    sleep = sleeps[attempt]
                    if deadline is not None and not deadline.allows(sleep):
                        break
                    if sleep > 0:
                        await asyncio.sleep(sleep)
                else:
                    breaker.record_success(self._clock())
                    if limiter is not None:
                        limiter.on_success(self._clock())
                    return result
        finally:
            if limiter is not None:
                limiter.release()
        self.unavailable_rpcs += 1
        if policy.degrade_to_database:
            return SERVER_UNAVAILABLE
        if last_error is not None:
            raise last_error
        raise TransportError(
            f"request deadline spent before cache server {server_id} answered"
        )

    # ----------------------------------------------------------- transitions

    def _current_transition(self) -> Optional[Transition]:
        return self._manager.current(self._clock())

    async def scale_to(self, n_new: int, ttl: float) -> Transition:
        """Begin a smooth transition: broadcast digests, flip routing.

        The caller is responsible for actually powering servers up/down at
        the deadline (the actuator's job); the frontend only needs the
        routing epochs and the digests.

        Digests are requested only from the *ceding* servers — the old
        owners the router's backend reports may lose keys
        (:meth:`~repro.core.router.Router.ceding_servers`); for Proteus
        scale-down that is exactly the draining servers.  The broadcast is
        all-or-nothing: each ceding owner's snapshot
        + fetch is retried under the resilience policy, and if any server
        still cannot answer, :class:`~repro.errors.DigestBroadcastError`
        (a :class:`~repro.errors.TransitionError`) is raised *before* the
        transition manager is armed — routing state rolls back to exactly
        what it was, the failures are reported per server, and the caller
        may simply retry ``scale_to``.  (Snapshots taken on the servers
        that did answer are harmless: the next broadcast re-snapshots.)
        """
        if not 1 <= n_new <= len(self.endpoints):
            raise TransitionError(f"n_new out of range: {n_new}")
        now = self._clock()
        if self._manager.in_transition(now):
            raise TransitionError("previous drain window still open")
        if n_new == self.n_active:
            raise TransitionError("already at the requested size")
        n_old = self.n_active
        ceding = self.router.ceding_servers(n_old, n_new)
        digests: Dict[int, BloomFilter] = {}
        failures: Dict[int, BaseException] = {}
        for server_id in ceding:
            try:
                digests[server_id] = await self._broadcast_digest(server_id)
            except Exception as error:
                if not self.resilience.retry.is_transient(error):
                    raise
                failures[server_id] = error
        if failures:
            detail = "; ".join(
                f"server {server_id}: {type(error).__name__}: {error}"
                for server_id, error in sorted(failures.items())
            )
            raise DigestBroadcastError(
                f"digest broadcast failed on {len(failures)}/{len(ceding)} "
                f"ceding servers, transition not started ({detail})",
                failures=failures,
            )
        # Keep the manager's default in sync for observers that read it,
        # but size *this* transition's window explicitly — an adaptive TTL
        # policy may hand every transition a different drain window.
        self._manager.ttl = ttl
        return self._manager.begin(
            n_new, now, digests=digests, ceding=ceding, ttl=ttl
        )

    async def _broadcast_digest(self, server_id: int) -> BloomFilter:
        """Snapshot + fetch one old owner's digest, retrying transient
        faults (the pair is idempotent, so it retries as a unit).  Every
        retry sleep is charged against the frontend's
        :class:`~repro.resilience.RetryBudget` — digest broadcasts are
        rare but ride the same retry machinery, so they obey the same
        storm bound."""
        retry = self.resilience.retry
        if self.retry_budget is not None:
            self.retry_budget.record_request(now=self._clock())
        sleeps = list(retry.delays())
        last_error: Optional[BaseException] = None
        for attempt in range(retry.max_attempts):
            try:
                async with self._pool(server_id).connection() as client:
                    # Two sequential exchanges on one connection: replies
                    # are matched FIFO, so interleaved traffic from other
                    # tasks cannot reorder snapshot before fetch.
                    await client.snapshot_digest()
                    return await client.fetch_digest(
                        self.bloom_config.num_counters,
                        self.bloom_config.num_hashes,
                    )
            except Exception as error:
                if not retry.is_transient(error):
                    raise
                last_error = error
                if attempt >= len(sleeps):
                    continue
                if self.retry_budget is not None and (
                    not self.retry_budget.allow_retry(self._clock())
                ):
                    self.budget_denied_retries += 1
                    break
                if sleeps[attempt] > 0:
                    await asyncio.sleep(sleeps[attempt])
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------ Algorithm 2

    async def fetch(self, key: str) -> FetchResult:
        """Retrieve *key*; returns the unified
        :class:`~repro.core.retrieval.FetchResult` — the same type the
        simulated tier returns, timed against this frontend's clock.

        ``result.path`` is a :class:`~repro.core.retrieval.FetchPath` — a
        ``str`` subclass, so comparisons against the wire labels
        (``"hit_new"``, ...) keep working.
        """
        started = self._clock()
        epochs = self._manager.routing_counts(started)
        deadline = self.resilience.new_deadline(self._clock)
        steps = self.engine.retrieve(key, epochs, now=started)
        result = None
        leader: Optional[asyncio.Future] = None
        try:
            while True:
                command = steps.send(result)
                if isinstance(command, ProbeCache):
                    server_id = command.server_id
                    probe_started = self._clock()
                    result = await self._cache_rpc(
                        server_id,
                        lambda: self._get(server_id, key, deadline),
                        deadline,
                    )
                    if (
                        self.config.hot_key_cache
                        and result is not SERVER_UNAVAILABLE
                    ):
                        # Feed measured probe latency into the armor's
                        # per-server load EWMA (the d-choices signal).
                        self.engine.armor.loads.observe_latency(
                            server_id, self._clock() - probe_started
                        )
                elif isinstance(command, CheckDigest):
                    transition = epochs.transition
                    result = transition is not None and transition.digest_hit(
                        command.server_id, key, command.hashes
                    )
                elif isinstance(command, WaitForLeader):
                    pending = self._inflight.get(key)
                    if pending is None:
                        result = False
                    else:
                        await asyncio.shield(pending)
                        result = True
                elif isinstance(command, ReadDatabase):
                    if command.announce_leader and key not in self._inflight:
                        leader = asyncio.get_running_loop().create_future()
                        self._inflight[key] = leader
                    try:
                        result = await self.database(key)
                    finally:
                        if self.engine.admission is not None:
                            # Free the admitted slot even on DB failure.
                            finished = self._clock()
                            self.engine.admission.db_finished(
                                finished, completed=finished
                            )
                elif isinstance(command, WriteBack):
                    server_id = command.server_id
                    value = command.value
                    result = await self._cache_rpc(
                        server_id,
                        lambda: self._set(server_id, key, value, deadline),
                        deadline,
                    )
                else:  # pragma: no cover - exhaustive over Command
                    raise ConfigurationError(
                        f"unknown engine command: {command!r}"
                    )
        except StopIteration as stop:
            outcome = stop.value
        finally:
            if leader is not None:
                # Resolve only after the write-back landed (or the fetch
                # failed), so followers re-probing the new owner find it.
                if self._inflight.get(key) is leader:
                    del self._inflight[key]
                if not leader.done():
                    leader.set_result(None)
        return FetchResult(
            key=key, value=outcome.value, path=outcome.path,
            started=started, completed=self._clock(),
            new_server=outcome.new_server, old_server=outcome.old_server,
            degraded=outcome.degraded,
        )

    async def fetch_many(self, keys: Iterable[str]) -> Dict[str, FetchResult]:
        """Retrieve a whole key set with at most one ``get_multi`` round
        trip per probed server per routing epoch.

        Drives :meth:`RetrievalEngine.retrieve_many`: each round's commands
        execute concurrently (``asyncio.gather``), so probes of different
        servers overlap the way spymemcached pipelines a page's lookups.
        Values, paths, and :class:`FetchStats` counts are identical to
        awaiting :meth:`fetch` once per key.
        """
        started = self._clock()
        epochs = self._manager.routing_counts(started)
        deadline = self.resilience.new_deadline(self._clock)
        steps = self.engine.retrieve_many(keys, epochs, now=started)
        answers = None
        leaders: Dict[str, asyncio.Future] = {}
        try:
            while True:
                round_ = steps.send(answers)
                answers = tuple(
                    await asyncio.gather(
                        *(
                            self._execute_batched(
                                command, epochs, leaders, deadline
                            )
                            for command in round_
                        )
                    )
                )
        except StopIteration as stop:
            outcomes = stop.value
        finally:
            for key, leader in leaders.items():
                if self._inflight.get(key) is leader:
                    del self._inflight[key]
                if not leader.done():
                    leader.set_result(None)
        completed = self._clock()
        return {
            key: FetchResult(
                key=key, value=outcome.value, path=outcome.path,
                started=started, completed=completed,
                new_server=outcome.new_server, old_server=outcome.old_server,
                degraded=outcome.degraded,
            )
            for key, outcome in outcomes.items()
        }

    async def _execute_batched(
        self,
        command: Command,
        epochs,
        leaders: Dict[str, asyncio.Future],
        deadline: Optional[Deadline] = None,
    ):
        """Perform one batched-round command (rounds run under gather).

        The batch trio dispatches on the shared :class:`BatchCommand`
        shape (``reply_with``), not per-class checks.
        """
        if isinstance(command, BatchCommand):
            server_id = command.server
            if command.reply_with == "membership":
                # Grouped digest consult: answered locally against the
                # broadcast snapshot — never a wire round trip.
                transition = epochs.transition
                if transition is None:
                    return [False] * len(command.keys)
                return transition.digest_hit_many(
                    server_id, command.keys, command.hashes
                )
            if command.reply_with == "values":
                keys = command.keys
                return await self._cache_rpc(
                    server_id,
                    lambda: self._get_multi(server_id, keys, deadline),
                    deadline,
                )
            # reply_with == "ack": pipelined write-backs
            items = command.items
            return await self._cache_rpc(
                server_id,
                lambda: self._set_multi(server_id, items, deadline),
                deadline,
            )
        if isinstance(command, CheckDigest):
            transition = epochs.transition
            return transition is not None and transition.digest_hit(
                command.server_id, command.key, command.hashes
            )
        if isinstance(command, WaitForLeader):
            pending = self._inflight.get(command.key)
            if pending is None:
                return False
            await asyncio.shield(pending)
            return True
        if isinstance(command, ReadDatabase):
            key = command.key
            if command.announce_leader and key not in self._inflight:
                leader = asyncio.get_running_loop().create_future()
                self._inflight[key] = leader
                leaders[key] = leader
            try:
                return await self.database(key)
            finally:
                if self.engine.admission is not None:
                    finished = self._clock()
                    self.engine.admission.db_finished(
                        finished, completed=finished
                    )
        raise ConfigurationError(f"unknown batched command: {command!r}")

    async def put(self, key: str, value: bytes) -> None:
        """Write-through to the authoritative owner under the new mapping."""
        await self._set(self.router.route(key, self.n_active), key, value)
        if self.config.hot_key_cache:
            # Digest-style invalidation: drop the stale local hot-key copy.
            self.engine.armor.invalidate(key)
