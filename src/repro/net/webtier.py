"""An asyncio web tier running Algorithm 2 against live memcached servers.

Completes the runnable substrate: where :mod:`repro.web.frontend` executes
the paper's retrieval logic inside the simulator,
:class:`AsyncProteusFrontend` executes it over real TCP against
:class:`~repro.net.server.MemcachedServer` (or stock memcached, for the
standard commands) endpoints:

* routing by the deterministic Proteus placement;
* smooth scale-down/up: ``get SET_BLOOM_FILTER`` + ``get BLOOM_FILTER`` on
  every old owner (the digest broadcast, over the wire), then Algorithm 2
  per request until the TTL deadline passes;
* the backing database is an async callable, so tests plug in a dict and a
  deployment plugs in a real pool.

One frontend instance is single-tasked per connection (like one servlet
thread with its pooled connections); run several instances for concurrency.
"""

from __future__ import annotations

import time
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.bloom.bloom import BloomFilter
from repro.bloom.config import BloomConfig
from repro.core.router import ProteusRouter
from repro.errors import ConfigurationError, TransitionError
from repro.net.client import MemcachedClient

#: async database fetch: key -> value bytes (authoritative, never misses)
DatabaseFetch = Callable[[str], Awaitable[bytes]]


class AsyncTransition:
    """The live-cluster analogue of :class:`repro.core.transition.Transition`."""

    def __init__(
        self,
        n_old: int,
        n_new: int,
        deadline: float,
        digests: Dict[int, BloomFilter],
    ) -> None:
        self.n_old = n_old
        self.n_new = n_new
        self.deadline = deadline
        self.digests = digests

    def expired(self, now: float) -> bool:
        return now >= self.deadline


class AsyncProteusFrontend:
    """Algorithm 2 over TCP memcached endpoints.

    Args:
        endpoints: ``(host, port)`` per cache server, in provisioning order.
        bloom_config: the cluster-wide digest geometry (web servers know it
            out of band, as in the paper).
        database: async authoritative fetch.
        initial_active: ``n(0)``.
        clock: time source for TTL deadlines (injectable in tests).
    """

    def __init__(
        self,
        endpoints: Sequence[Tuple[str, int]],
        bloom_config: BloomConfig,
        database: DatabaseFetch,
        initial_active: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not endpoints:
            raise ConfigurationError("need at least one cache endpoint")
        self.endpoints = list(endpoints)
        self.bloom_config = bloom_config
        self.database = database
        self.router = ProteusRouter(len(self.endpoints))
        self._clock = clock
        self._clients: List[Optional[MemcachedClient]] = [None] * len(endpoints)
        self.n_active = (
            len(self.endpoints) if initial_active is None else initial_active
        )
        if not 1 <= self.n_active <= len(self.endpoints):
            raise ConfigurationError(
                f"initial_active out of range: {self.n_active}"
            )
        self._transition: Optional[AsyncTransition] = None
        #: per-path counters, same labels as the simulator's FetchPath
        self.stats: Dict[str, int] = {
            "hit_new": 0, "hit_old": 0, "false_positive_db": 0, "miss_db": 0,
        }

    # ----------------------------------------------------------- lifecycle

    async def connect(self) -> "AsyncProteusFrontend":
        """Open one connection per endpoint."""
        for index, (host, port) in enumerate(self.endpoints):
            if self._clients[index] is None:
                self._clients[index] = await MemcachedClient(host, port).connect()
        return self

    async def close(self) -> None:
        for index, client in enumerate(self._clients):
            if client is not None:
                await client.close()
                self._clients[index] = None

    async def __aenter__(self) -> "AsyncProteusFrontend":
        return await self.connect()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    def _client(self, server_id: int) -> MemcachedClient:
        client = self._clients[server_id]
        if client is None:
            raise ConfigurationError(
                f"no connection to cache server {server_id}; call connect()"
            )
        return client

    # ----------------------------------------------------------- transitions

    def _current_transition(self) -> Optional[AsyncTransition]:
        if self._transition is not None and self._transition.expired(self._clock()):
            self._transition = None
        return self._transition

    async def scale_to(self, n_new: int, ttl: float) -> AsyncTransition:
        """Begin a smooth transition: broadcast digests, flip routing.

        The caller is responsible for actually powering servers up/down at
        the deadline (the actuator's job); the frontend only needs the
        routing epochs and the digests.
        """
        if not 1 <= n_new <= len(self.endpoints):
            raise TransitionError(f"n_new out of range: {n_new}")
        if self._current_transition() is not None:
            raise TransitionError("previous drain window still open")
        if n_new == self.n_active:
            raise TransitionError("already at the requested size")
        n_old = self.n_active
        digests: Dict[int, BloomFilter] = {}
        for server_id in range(n_old):
            client = self._client(server_id)
            await client.snapshot_digest()
            digests[server_id] = await client.fetch_digest(
                self.bloom_config.num_counters, self.bloom_config.num_hashes
            )
        transition = AsyncTransition(
            n_old=n_old, n_new=n_new,
            deadline=self._clock() + ttl, digests=digests,
        )
        self._transition = transition
        self.n_active = n_new
        return transition

    # ------------------------------------------------------------ Algorithm 2

    async def fetch(self, key: str) -> Tuple[bytes, str]:
        """Retrieve *key*; returns ``(value, path)`` with simulator-compatible
        path labels."""
        transition = self._current_transition()
        new_id = self.router.route(key, self.n_active)
        new_client = self._client(new_id)
        value = await new_client.get(key)
        if value is not None:
            self.stats["hit_new"] += 1
            return value, "hit_new"

        path = "miss_db"
        if transition is not None:
            old_id = self.router.route(key, transition.n_old)
            digest = transition.digests.get(old_id)
            if old_id != new_id and digest is not None and digest.contains(key):
                value = await self._client(old_id).get(key)
                path = "hit_old" if value is not None else "false_positive_db"

        if value is None:
            value = await self.database(key)
        await new_client.set(key, value)
        self.stats[path] += 1
        return value, path

    async def put(self, key: str, value: bytes) -> None:
        """Write-through to the authoritative owner under the new mapping."""
        await self._client(self.router.route(key, self.n_active)).set(key, value)
