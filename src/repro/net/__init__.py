"""Runnable memcached-protocol substrate (paper Section V-A3 analogue)."""

from repro.net.client import CasValue, MemcachedClient
from repro.net.protocol import (
    KEY_FETCH_DIGEST,
    KEY_SNAPSHOT,
    Request,
    parse_command_line,
    validate_key,
)
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend

__all__ = [
    "AsyncProteusFrontend",
    "CasValue",
    "KEY_FETCH_DIGEST",
    "KEY_SNAPSHOT",
    "MemcachedClient",
    "MemcachedServer",
    "Request",
    "parse_command_line",
    "validate_key",
]
