"""Runnable memcached-protocol substrate (paper Section V-A3 analogue)."""

from repro.net.client import CasValue, MemcachedClient
from repro.net.parser import (
    BadCommand,
    CommandParser,
    Desync,
    ErrorLine,
    LineReply,
    ReplyParser,
    StatsReply,
    ValueItem,
    ValuesReply,
)
from repro.net.pool import ConnectionPool
from repro.net.protocol import (
    KEY_FETCH_DIGEST,
    KEY_SNAPSHOT,
    Request,
    parse_command_line,
    validate_key,
)
from repro.net.server import MemcachedServer
from repro.net.webtier import AsyncProteusFrontend

__all__ = [
    "AsyncProteusFrontend",
    "BadCommand",
    "CasValue",
    "CommandParser",
    "ConnectionPool",
    "Desync",
    "ErrorLine",
    "KEY_FETCH_DIGEST",
    "KEY_SNAPSHOT",
    "LineReply",
    "MemcachedClient",
    "MemcachedServer",
    "ReplyParser",
    "Request",
    "StatsReply",
    "ValueItem",
    "ValuesReply",
    "parse_command_line",
    "validate_key",
]
