"""Memcached text-protocol framing.

Implements the classic memcached ASCII protocol surface the paper's system
exercises — ``get``/``gets``, ``set``/``add``/``replace``/``cas``,
``append``/``prepend``, ``delete``, ``incr``/``decr``, ``touch``,
``stats``, ``flush_all``, ``version``, ``quit`` — plus the two reserved
keys of Section V-A3:

* ``get SET_BLOOM_FILTER`` — the server snapshots its counting Bloom filter
  into a frozen bit array and acknowledges;
* ``get BLOOM_FILTER`` — the snapshot is returned "as normal data", so any
  stock memcached client library can fetch the digest (the paper verified
  spymemcached and python-memcached against its modified server).

Requests and responses are parsed/serialized here with no I/O, so the same
framing serves the asyncio server, the client, and protocol unit tests.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ProtocolError

CRLF = b"\r\n"

#: Section V-A3 reserved keys.
KEY_SNAPSHOT = "SET_BLOOM_FILTER"
KEY_FETCH_DIGEST = "BLOOM_FILTER"

MAX_KEY_LENGTH = 250  # memcached's limit


@dataclass(slots=True)
class Request:
    """One parsed client command."""

    command: str
    keys: List[str] = field(default_factory=list)
    flags: int = 0
    exptime: int = 0
    num_bytes: int = 0
    noreply: bool = False
    value: bytes = b""
    #: cas unique id (``cas`` command only)
    cas: int = 0
    #: numeric delta (``incr``/``decr`` only)
    delta: int = 0


#: every character memcached rejects in a key (whitespace + control
#: chars below 33); a compiled character-class regex makes the per-key
#: check one C-level scan that exits at the first offender —
#: validate_key sits on both the client's and the server's per-command
#: hot path
_BAD_KEY_CHARS = "".join(
    chr(c) for c in range(0x3001) if c < 33 or chr(c).isspace()
)
_BAD_KEY_SEARCH = re.compile(f"[{re.escape(_BAD_KEY_CHARS)}]").search


def validate_key(key: str) -> None:
    """Reject keys memcached would reject (length, control chars, spaces)."""
    if not key or len(key) > MAX_KEY_LENGTH:
        raise ProtocolError(f"bad key length: {len(key)}")
    if _BAD_KEY_SEARCH(key) is not None:
        raise ProtocolError(f"key contains whitespace/control chars: {key!r}")


def parse_command_line(line: bytes) -> Request:
    """Parse one command line (without its data block).

    Raises:
        ProtocolError: malformed command or arguments.
    """
    # Fast path: single-key ``get`` — the live tier's dominant command
    # (a pipelined 64-key page arrives as 64 of these).  Skips the
    # decode/strip/split/lower dance of the general path below.
    if line.startswith(b"get ") and line.find(b" ", 4) < 0:
        try:
            key = line[4:].rstrip(b"\r\n").decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("command line is not valid UTF-8") from exc
        validate_key(key)
        return Request(command="get", keys=[key])
    try:
        text = line.decode("utf-8").strip("\r\n")
    except UnicodeDecodeError as exc:
        raise ProtocolError("command line is not valid UTF-8") from exc
    if not text:
        raise ProtocolError("empty command line")
    parts = text.split(" ")
    command = parts[0].lower()

    if command in ("get", "gets"):
        if len(parts) < 2:
            raise ProtocolError("get requires at least one key")
        keys = parts[1:]
        for key in keys:
            validate_key(key)
        return Request(command=command, keys=keys)

    if command in ("set", "add", "replace", "append", "prepend", "cas"):
        noreply = parts[-1] == "noreply"
        args = parts[:-1] if noreply else parts
        expected = 6 if command == "cas" else 5
        if len(args) != expected:
            raise ProtocolError(
                f"{command} requires: key flags exptime bytes"
                + (" cas_unique" if command == "cas" else "")
            )
        key = args[1]
        validate_key(key)
        try:
            flags = int(args[2])
            exptime = int(args[3])
            num_bytes = int(args[4])
            cas = int(args[5]) if command == "cas" else 0
        except ValueError as exc:
            raise ProtocolError(f"non-numeric storage argument in {text!r}") from exc
        if num_bytes < 0:
            raise ProtocolError(f"negative byte count: {num_bytes}")
        return Request(
            command=command, keys=[key], flags=flags, exptime=exptime,
            num_bytes=num_bytes, noreply=noreply, cas=cas,
        )

    if command in ("incr", "decr"):
        noreply = parts[-1] == "noreply"
        args = parts[:-1] if noreply else parts
        if len(args) != 3:
            raise ProtocolError(f"{command} requires: key delta")
        validate_key(args[1])
        try:
            delta = int(args[2])
        except ValueError as exc:
            raise ProtocolError(f"non-numeric delta in {text!r}") from exc
        if delta < 0:
            raise ProtocolError(f"delta must be >= 0, got {delta}")
        return Request(command=command, keys=[args[1]], delta=delta,
                       noreply=noreply)

    if command == "touch":
        noreply = parts[-1] == "noreply"
        args = parts[:-1] if noreply else parts
        if len(args) != 3:
            raise ProtocolError("touch requires: key exptime")
        validate_key(args[1])
        try:
            exptime = int(args[2])
        except ValueError as exc:
            raise ProtocolError(f"non-numeric exptime in {text!r}") from exc
        return Request(command=command, keys=[args[1]], exptime=exptime,
                       noreply=noreply)

    if command == "delete":
        noreply = parts[-1] == "noreply"
        args = parts[:-1] if noreply else parts
        if len(args) != 2:
            raise ProtocolError("delete requires exactly one key")
        validate_key(args[1])
        return Request(command=command, keys=[args[1]], noreply=noreply)

    if command in ("stats", "version", "quit", "flush_all"):
        return Request(command=command, keys=parts[1:])

    raise ProtocolError(f"unknown command {command!r}")


def value_response(key: str, flags: int, data: bytes, cas: Optional[int] = None) -> bytes:
    """One ``VALUE`` block of a get response."""
    if cas is not None:
        return b"VALUE %s %d %d %d\r\n%s\r\n" % (
            key.encode("utf-8"), flags, len(data), cas, data,
        )
    return b"VALUE %s %d %d\r\n%s\r\n" % (
        key.encode("utf-8"), flags, len(data), data,
    )


def end_response() -> bytes:
    return b"END" + CRLF


def stored_response() -> bytes:
    return b"STORED" + CRLF


def not_stored_response() -> bytes:
    return b"NOT_STORED" + CRLF


def deleted_response() -> bytes:
    return b"DELETED" + CRLF


def not_found_response() -> bytes:
    return b"NOT_FOUND" + CRLF


def touched_response() -> bytes:
    return b"TOUCHED" + CRLF


def exists_response() -> bytes:
    """``cas`` reply when the item changed since the client's ``gets``."""
    return b"EXISTS" + CRLF


def number_response(value: int) -> bytes:
    """``incr``/``decr`` reply: the new value as plain decimal."""
    return str(value).encode("utf-8") + CRLF


def error_response(message: str = "") -> bytes:
    if message:
        return f"SERVER_ERROR {message}".encode("utf-8") + CRLF
    return b"ERROR" + CRLF


#: The shed reply: the server refused the command because its in-flight
#: limit was exceeded.  A *well-formed* error line in the command's reply
#: slot — the stream stays in sync, later pipelined commands may still
#: succeed.  Clients classify it as never-retryable (see
#: :class:`~repro.errors.ServerBusyError`).
BUSY_PREFIX = b"SERVER_ERROR busy"


def busy_response(detail: str = "overloaded") -> bytes:
    """``SERVER_ERROR busy <detail>`` — the backpressure shed reply."""
    return BUSY_PREFIX + f" {detail}".encode("utf-8") + CRLF


def client_error_response(message: str) -> bytes:
    return f"CLIENT_ERROR {message}".encode("utf-8") + CRLF


def stats_response(stats: Dict[str, object]) -> bytes:
    """A ``stats`` reply: one ``STAT name value`` line per entry, then END."""
    lines = [f"STAT {name} {value}".encode("utf-8") for name, value in stats.items()]
    return CRLF.join(lines) + CRLF + end_response() if lines else end_response()
