"""Incremental memcached ASCII framing: feed bytes, get complete frames.

The pre-pipelining client parsed replies with ``StreamReader.readline`` —
one syscall-ish await per protocol line, one in-flight command per
connection.  This module is the sans-IO core of the pipelined transport
(the emcache-style ``feed_data`` design): byte chunks go in, complete
protocol frames come out, and nothing is ever re-scanned — the parsers
remember how far they looked for a line terminator and resume from there
on the next chunk.

Two directions:

* :class:`ReplyParser` — the client side.  Commands register a *reply
  shape* (:class:`LineReply`, :class:`ValuesReply`, :class:`StatsReply`)
  in FIFO order as they are written; :meth:`ReplyParser.feed` matches
  server bytes against the head shape and emits one result per completed
  reply, in order.  A reply that cannot belong to the expected shape
  raises :class:`Desync`: the stream position is unknown from that byte
  on, and the connection owner must poison the transport (pairing any
  later line with a queued command would be the PR-5 mispairing bug).
  Complete ``ERROR``/``CLIENT_ERROR``/``SERVER_ERROR`` lines are *not*
  desyncs — the stream stays framed — and surface as :class:`ErrorLine`
  results so the caller can raise without dropping the connection.

* :class:`CommandParser` — the server side.  Yields complete
  :class:`~repro.net.protocol.Request` objects (data block attached for
  storage commands); malformed input surfaces as :class:`BadCommand`
  entries that the server answers with ``CLIENT_ERROR``, fatal ones
  (an unterminated data block — framing is gone) drop the connection,
  exactly as the ``readline`` loop did.

Both parsers are pure byte machines — no I/O, no asyncio — so they unit
test byte-by-byte and serve any transport (the asyncio protocol client,
the server's chunked read loop, tests).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Tuple, Union

from repro.errors import ProtocolError, ServerBusyError
from repro.net import protocol as proto

__all__ = [
    "BadCommand",
    "CommandParser",
    "Desync",
    "ErrorLine",
    "LineReply",
    "ReplyParser",
    "StatsReply",
    "ValueItem",
    "ValuesReply",
]

#: complete error replies keep the stream framed (they end at their CRLF)
ERROR_PREFIXES = (b"ERROR", b"CLIENT_ERROR", b"SERVER_ERROR")


class Desync(Exception):
    """The reply stream no longer matches the pipelined command queue.

    Raised by :meth:`ReplyParser.feed`; every byte after the offending
    one is unattributable, so the connection must be poisoned.
    :attr:`results` carries the replies the same chunk *completed before*
    the fault — those frames are unambiguous and must still be delivered
    to their commands (dropping them would fail commands whose replies
    arrived intact).
    """

    def __init__(self, message: str, results: Optional[list] = None) -> None:
        super().__init__(message)
        self.results: List["ReplyResult"] = results or []


@dataclass(frozen=True)
class ErrorLine:
    """A complete ``ERROR``-family reply line (stream still in sync)."""

    line: bytes

    @property
    def is_busy(self) -> bool:
        """True for the server's backpressure shed reply
        (``SERVER_ERROR busy ...``)."""
        return self.line.startswith(proto.BUSY_PREFIX)

    def raise_(self) -> None:
        text = self.line.decode("utf-8", "replace")
        if self.is_busy:
            # A shed, not a protocol fault: never transiently retried
            # (storms must not amplify), and the stream is still framed.
            raise ServerBusyError(text)
        raise ProtocolError(text)


@dataclass(slots=True)
class ValueItem:
    """One ``VALUE`` block of a retrieval reply.

    Not frozen: one is built per VALUE block on the client's reply hot
    path, and a frozen dataclass pays ``object.__setattr__`` per field.
    """

    key: str
    flags: int
    value: bytes
    cas: Optional[int] = None


class LineReply:
    """Expect exactly one reply line.

    Args:
        validator: called with the stripped line; ``False`` means the
            line cannot be this command's reply — a :class:`Desync`
            (error-family lines bypass the validator and complete the
            reply as :class:`ErrorLine`).
    """

    __slots__ = ("validator",)

    def __init__(self, validator: Optional[Callable[[bytes], bool]] = None):
        self.validator = validator


class ValuesReply:
    """Expect ``VALUE`` blocks terminated by ``END`` (get/gets family)."""

    __slots__ = ()


class StatsReply:
    """Expect ``STAT`` lines terminated by ``END``."""

    __slots__ = ()


ReplyShape = Union[LineReply, ValuesReply, StatsReply]
ReplyResult = Union[bytes, ErrorLine, List[ValueItem], dict]


def _tokens(*words: bytes) -> Callable[[bytes], bool]:
    """Validator accepting exactly the given reply tokens."""
    allowed = frozenset(words)
    return lambda line: line in allowed


class ReplyParser:
    """Incremental reply framing for one pipelined client connection.

    Usage: :meth:`expect` once per command written (FIFO), then
    :meth:`feed` with each received chunk; completed replies come back in
    command order.  The internal buffer keeps a scan cursor so a long
    line arriving in many chunks is never re-scanned.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0         # start of the unconsumed region
        self._scan = 0        # how far we've looked for the next newline
        self._shapes: Deque[ReplyShape] = deque()
        self._dead = False    # a Desync happened; nothing more comes out
        # in-progress multi-frame reply state
        self._items: List[ValueItem] = []
        self._stats: dict = {}
        self._block: Optional[Tuple[str, int, Optional[int], int]] = None

    def expect(self, shape: ReplyShape) -> None:
        """Register the reply shape of the next written command."""
        self._shapes.append(shape)

    @property
    def pending(self) -> int:
        """Replies still owed by the server."""
        return len(self._shapes)

    @property
    def buffered(self) -> int:
        """Bytes received but not yet consumed by a complete frame."""
        return len(self._buf) - self._pos

    # ---------------------------------------------------------------- feed

    def feed(self, data: bytes) -> List[ReplyResult]:
        """Append *data*; return every reply it completed, in order.

        Raises:
            Desync: the stream cannot be matched to the expected shapes;
                the connection must be poisoned by the caller.  The
                exception's ``results`` holds replies this chunk
                completed *before* the fault — deliver them first.
        """
        if self._dead:
            raise Desync("reply stream already desynchronized")
        self._buf += data
        out: List[ReplyResult] = []
        while True:
            try:
                result = self._step()
            except Desync as exc:
                self._dead = True
                exc.results = out
                raise
            if result is None:
                break
            out.append(result)
        # Compact once per feed, not once per frame: consuming a frame
        # only advances the _pos cursor, so a chunk carrying k pipelined
        # replies costs one buffer shift instead of O(k) shifts.
        if self._pos:
            del self._buf[: self._pos]
            self._scan -= self._pos
            self._pos = 0
        return out

    # ------------------------------------------------------------ plumbing

    def _take_line(self) -> Optional[bytes]:
        """The next complete line (CRLF stripped), consuming it; ``None``
        while incomplete.  Scanning resumes where the last call left off."""
        index = self._buf.find(b"\n", self._scan)
        if index < 0:
            self._scan = len(self._buf)
            return None
        line = bytes(self._buf[self._pos: index])
        if line.endswith(b"\r"):
            line = line[:-1]
        self._pos = index + 1
        self._scan = self._pos
        return line

    def _take_block(self, count: int) -> Optional[bytes]:
        """*count* bytes + CRLF, consuming them; ``None`` while short."""
        if len(self._buf) - self._pos < count + 2:
            return None
        end = self._pos + count
        if self._buf[end: end + 2] != proto.CRLF:
            raise Desync(
                f"value block of {count} bytes not terminated by CRLF"
            )
        block = bytes(self._buf[self._pos: end])
        self._pos = end + 2
        self._scan = self._pos
        return block

    def _step(self) -> Optional[ReplyResult]:
        """Try to complete the head reply; ``None`` while starved."""
        if not self._shapes:
            if len(self._buf) - self._pos:
                raise Desync(
                    f"{len(self._buf) - self._pos} unsolicited bytes with "
                    "no command in flight: "
                    f"{bytes(self._buf[self._pos: self._pos + 40])!r}"
                )
            return None
        shape = self._shapes[0]
        if isinstance(shape, LineReply):
            return self._step_line(shape)
        if isinstance(shape, ValuesReply):
            return self._step_values()
        return self._step_stats()

    def _finish(self, result: ReplyResult) -> ReplyResult:
        self._shapes.popleft()
        return result

    def _step_line(self, shape: LineReply) -> Optional[ReplyResult]:
        line = self._take_line()
        if line is None:
            return None
        if line.startswith(ERROR_PREFIXES):
            return self._finish(ErrorLine(line))
        if shape.validator is not None and not shape.validator(line):
            raise Desync(f"unexpected reply line: {line!r}")
        return self._finish(line)

    def _step_values(self) -> Optional[ReplyResult]:
        while True:
            if self._block is not None:
                key, flags, cas, count = self._block
                block = self._take_block(count)
                if block is None:
                    return None
                self._block = None
                self._items.append(ValueItem(key, flags, block, cas))
                continue
            line = self._take_line()
            if line is None:
                return None
            if line == b"END":
                items, self._items = self._items, []
                return self._finish(items)
            if line.startswith(ERROR_PREFIXES):
                # A complete error reply; whatever VALUE blocks preceded
                # it belonged to this same (failed) command.
                self._items = []
                return self._finish(ErrorLine(line))
            if not line.startswith(b"VALUE "):
                raise Desync(f"unexpected get response line: {line!r}")
            parts = line.split(b" ")
            try:
                key = parts[1].decode("utf-8")
                flags = int(parts[2])
                count = int(parts[3])
                cas = int(parts[4]) if len(parts) > 4 else None
            except (IndexError, ValueError, UnicodeDecodeError):
                raise Desync(f"malformed VALUE line: {line!r}")
            self._block = (key, flags, cas, count)

    def _step_stats(self) -> Optional[ReplyResult]:
        while True:
            line = self._take_line()
            if line is None:
                return None
            if line == b"END":
                stats, self._stats = self._stats, {}
                return self._finish(stats)
            if line.startswith(ERROR_PREFIXES):
                self._stats = {}
                return self._finish(ErrorLine(line))
            if not line.startswith(b"STAT "):
                raise Desync(f"unexpected stats line: {line!r}")
            try:
                _, name, value = line.decode("utf-8").split(" ", 2)
            except (ValueError, UnicodeDecodeError):
                raise Desync(f"malformed stats line: {line!r}")
            self._stats[name] = value


# --------------------------------------------------------------- server side


@dataclass(frozen=True)
class BadCommand:
    """A malformed request the server answers with ``CLIENT_ERROR``.

    ``fatal`` means framing is lost (an unterminated data block): the
    server must reply and then drop the connection, as memcached does.
    """

    message: str
    fatal: bool = False


CommandItem = Union[proto.Request, BadCommand]


class CommandParser:
    """Incremental request framing for one server connection.

    Feed received chunks; complete :class:`~repro.net.protocol.Request`
    objects (with their data block read and CRLF-checked) come out in
    order.  After a fatal :class:`BadCommand` the parser is dead — the
    stream position is unknowable — and yields nothing further.
    """

    def __init__(self) -> None:
        self._buf = bytearray()
        self._pos = 0
        self._scan = 0
        self._pending: Optional[proto.Request] = None  # awaiting its block
        self._dead = False

    def feed(self, data: bytes) -> List[CommandItem]:
        """Append *data*; return every request it completed, in order."""
        if self._dead:
            return []
        self._buf += data
        out: List[CommandItem] = []
        while not self._dead:
            item = self._step()
            if item is None:
                break
            out.append(item)
        # One buffer shift per chunk, not per command (see ReplyParser).
        if self._pos:
            del self._buf[: self._pos]
            self._scan -= self._pos
            self._pos = 0
        return out

    def _take_line(self) -> Optional[bytes]:
        index = self._buf.find(b"\n", self._scan)
        if index < 0:
            self._scan = len(self._buf)
            return None
        line = bytes(self._buf[self._pos: index + 1])
        self._pos = index + 1
        self._scan = self._pos
        return line

    def _step(self) -> Optional[CommandItem]:
        if self._pending is not None:
            request = self._pending
            count = request.num_bytes
            if len(self._buf) - self._pos < count + 2:
                return None
            end = self._pos + count
            block = bytes(self._buf[self._pos: end])
            tail = bytes(self._buf[end: end + 2])
            self._pos = end + 2
            self._scan = self._pos
            self._pending = None
            if tail != proto.CRLF:
                self._dead = True
                return BadCommand(
                    "data block not terminated by CRLF", fatal=True
                )
            request.value = block
            return request
        line = self._take_line()
        if line is None:
            return None
        try:
            request = proto.parse_command_line(line)
        except ProtocolError as exc:
            return BadCommand(str(exc))
        if request.command in (
            "set", "add", "replace", "append", "prepend", "cas"
        ):
            self._pending = request
            return self._step()
        return request


# Shared reply-token validators (the per-command contracts the old
# readline client enforced inline).
STORE_TOKENS = _tokens(b"STORED", b"NOT_STORED")
CAS_TOKENS = _tokens(b"STORED", b"EXISTS", b"NOT_FOUND")
TOUCH_TOKENS = _tokens(b"TOUCHED", b"NOT_FOUND")
DELETE_TOKENS = _tokens(b"DELETED", b"NOT_FOUND")
OK_TOKENS = _tokens(b"OK")


def arith_token(line: bytes) -> bool:
    """``incr``/``decr`` replies: a decimal or ``NOT_FOUND``."""
    return line == b"NOT_FOUND" or line.isdigit()


def version_token(line: bytes) -> bool:
    return line.startswith(b"VERSION ")
