"""Asyncio memcached server with a built-in counting-Bloom-filter digest.

The runnable analogue of the paper's modified memcached (Section V-A3): a
TCP server speaking the classic text protocol whose item link/unlink events
keep a counting Bloom filter consistent with the store, with the reserved
keys ``SET_BLOOM_FILTER`` (snapshot) and ``BLOOM_FILTER`` (fetch snapshot as
normal data).  The store and digest are the *same* classes the simulation
uses — only time comes from the wall clock here.

Example::

    server = MemcachedServer(capacity_bytes=64 * 1024 * 1024)
    await server.start("127.0.0.1", 0)   # port 0 -> ephemeral
    ...
    await server.stop()
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Dict, Optional

from repro.bloom.config import BloomConfig, optimal_config
from repro.cache.eviction import LRUPolicy
from repro.cache.item import CacheItem
from repro.cache.store import KeyValueStore
from repro.bloom.counting import CountingBloomFilter
from repro.cache.slabs import SlabStore
from repro.errors import CapacityError, ConfigurationError
from repro.net import protocol as proto
from repro.net.parser import BadCommand, CommandParser

#: per-connection read size; big enough that a pipelined burst of
#: commands lands in one read and its replies go out in one write
READ_CHUNK = 65536


class MemcachedServer:
    """A single cache node reachable over TCP.

    Args:
        capacity_bytes: store capacity (LRU beyond it), ``None`` = unbounded.
        bloom_config: digest sizing; defaults to the Section IV-B optimum
            for the capacity-implied key count.
        clock: time source (injectable for tests; defaults to wall clock).
        use_slabs: back the server with the memcached-style slab allocator
            (:class:`~repro.cache.slabs.SlabStore`) instead of byte-exact
            accounting; enables ``stats slabs`` and requires a capacity.
        nodelay: set ``TCP_NODELAY`` on accepted sockets (default True) —
            reply batches must not sit behind Nagle while the client
            pipelines; the net throughput bench A/Bs this knob.
        max_inflight: global cap on commands accepted but not yet
            replied-and-drained, across all connections (``None`` =
            unbounded, the pre-armor behaviour).  Commands over the cap
            are *shed*: answered ``SERVER_ERROR busy`` without being
            dispatched, so an overload burst costs one error line each
            instead of queue growth.
        max_conn_inflight: per-connection watermark — a connection whose
            single read chunk carries more commands than this has its
            reads paused (``transport.pause_reading()``) until the
            replies drain, bounding per-connection pipeline memory.
        write_high_water: per-connection write-buffer high watermark in
            bytes (``None`` = asyncio default).  A slow-reading client
            then blocks ``drain()`` early, which holds its commands
            in-flight and lets the global cap shed around it.
    """

    def __init__(
        self,
        capacity_bytes: Optional[int] = None,
        bloom_config: Optional[BloomConfig] = None,
        clock=time.monotonic,
        use_slabs: bool = False,
        nodelay: bool = True,
        max_inflight: Optional[int] = None,
        max_conn_inflight: Optional[int] = None,
        write_high_water: Optional[int] = None,
    ) -> None:
        self._clock = clock
        self.nodelay = nodelay
        if max_inflight is not None and max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if max_conn_inflight is not None and max_conn_inflight < 1:
            raise ConfigurationError(
                f"max_conn_inflight must be >= 1, got {max_conn_inflight}"
            )
        self.max_inflight = max_inflight
        self.max_conn_inflight = max_conn_inflight
        self.write_high_water = write_high_water
        #: commands accepted but not yet replied-and-drained (all conns)
        self.inflight = 0
        #: commands refused with ``SERVER_ERROR busy``
        self.shed_commands = 0
        #: times a connection's reads were paused at the watermark
        self.paused_reads = 0
        if use_slabs:
            if capacity_bytes is None:
                raise ConfigurationError("use_slabs requires capacity_bytes")
            self.store = SlabStore(capacity_bytes)
        else:
            self.store = KeyValueStore(
                capacity_bytes=capacity_bytes, policy=LRUPolicy(),
                default_item_size=0,
            )
        if bloom_config is None:
            expected = (
                max(1024, capacity_bytes // 4096) if capacity_bytes else 100_000
            )
            bloom_config = optimal_config(expected)
        self.digest: CountingBloomFilter = bloom_config.build()
        self.bloom_config = bloom_config
        self.store.link_hooks.append(self._on_link)
        self.store.unlink_hooks.append(self._on_unlink)
        self._snapshot: Optional[bytes] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self.connections = 0
        # cas bookkeeping: every successful store bumps the key's unique id.
        self._cas_counter = 0
        self._cas: Dict[str, int] = {}

    # ------------------------------------------------------------- digest

    def _on_link(self, item: CacheItem) -> None:
        self.digest.add(item.key)

    def _on_unlink(self, item: CacheItem, reason: str) -> None:
        self.digest.remove(item.key)

    def take_snapshot(self) -> bytes:
        """Freeze the digest into a bit array (``get SET_BLOOM_FILTER``)."""
        self._snapshot = self.digest.snapshot().to_bytes()
        return self._snapshot

    # ------------------------------------------------------------ lifecycle

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Begin serving; returns the bound port."""
        self._server = await asyncio.start_server(self._handle, host, port)
        return self.port

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------- serving

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection with chunked reads and batched replies.

        Commands are framed by the incremental
        :class:`~repro.net.parser.CommandParser` — a pipelined burst
        arriving in one TCP segment is parsed, dispatched, and answered
        with **one** write, so a client pipelining *k* commands pays ~one
        syscall round trip instead of *k* (the server half of the
        pipelined transport).

        Backpressure: each accepted command counts against the global
        ``max_inflight`` from dispatch until its chunk's replies have
        drained — a slow-reading client therefore holds its commands
        in-flight and the excess offered load is shed with
        ``SERVER_ERROR busy`` instead of queued.  A chunk carrying more
        than ``max_conn_inflight`` commands additionally pauses that
        connection's reads until the replies drain (the per-connection
        watermark).
        """
        self.connections += 1
        transport = writer.transport
        if self.nodelay:
            sock = writer.get_extra_info("socket")
            if sock is not None:
                try:
                    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                except OSError:  # pragma: no cover - non-TCP transports
                    pass
        if self.write_high_water is not None:
            transport.set_write_buffer_limits(high=self.write_high_water)
        parser = CommandParser()
        out = bytearray()
        try:
            closing = False
            while not closing:
                data = await reader.read(READ_CHUNK)
                if not data:
                    break
                accepted = 0
                for item in parser.feed(data):
                    if isinstance(item, BadCommand):
                        out += proto.client_error_response(item.message)
                        if item.fatal:
                            # The stream is desynchronized past a bad
                            # data block; reply and drop the connection,
                            # as memcached does.
                            closing = True
                            break
                        continue
                    if item.command == "quit":
                        closing = True
                        break
                    if (
                        self.max_inflight is not None
                        and self.inflight >= self.max_inflight
                    ):
                        # Shed: a well-formed error line in the command's
                        # reply slot — the stream stays framed, and the
                        # command is never dispatched.
                        self.shed_commands += 1
                        if not item.noreply:
                            out += proto.busy_response(
                                f"inflight limit {self.max_inflight}"
                            )
                        continue
                    self.inflight += 1
                    accepted += 1
                    response = self._dispatch(item)
                    if response and not item.noreply:
                        out += response
                paused = False
                if (
                    self.max_conn_inflight is not None
                    and accepted > self.max_conn_inflight
                ):
                    try:
                        transport.pause_reading()
                        paused = True
                        self.paused_reads += 1
                    except RuntimeError:  # pragma: no cover - closing race
                        pass
                try:
                    if out:
                        writer.write(bytes(out))
                        out.clear()
                        await writer.drain()
                finally:
                    self.inflight -= accepted
                    if paused:
                        try:
                            transport.resume_reading()
                        except RuntimeError:  # pragma: no cover
                            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # Teardown races (peer gone, loop shutting down) are benign.
                pass

    # ------------------------------------------------------------ commands

    def _dispatch(self, request: proto.Request) -> bytes:
        command = request.command
        if command in ("get", "gets"):
            return self._do_get(request)
        if command in ("set", "add", "replace", "cas"):
            return self._do_store(request)
        if command in ("append", "prepend"):
            return self._do_concat(request)
        if command in ("incr", "decr"):
            return self._do_arith(request)
        if command == "touch":
            return self._do_touch(request)
        if command == "delete":
            return self._do_delete(request)
        if command == "stats":
            if request.keys and request.keys[0] == "slabs":
                return self._do_stats_slabs()
            return proto.stats_response(self._stats_dict())
        if command == "flush_all":
            self.store.flush()
            return b"OK" + proto.CRLF
        if command == "version":
            return b"VERSION proteus-repro 1.0.0" + proto.CRLF
        return proto.error_response()

    def _do_get(self, request: proto.Request) -> bytes:
        now = self._clock()
        keys = request.keys
        if (
            request.command == "get"
            and len(keys) == 1
            and keys[0] != proto.KEY_SNAPSHOT
            and keys[0] != proto.KEY_FETCH_DIGEST
        ):
            # Hot path: the pipelined live tier issues pages as bursts of
            # single-key gets; skip the chunk-list machinery for them.
            key = keys[0]
            value = self.store.get(key, now)
            if value is None:
                return b"END\r\n"
            item = self.store.peek(key)
            return proto.value_response(
                key, item.flags if item is not None else 0, value
            ) + b"END\r\n"
        chunks = []
        for key in keys:
            if key == proto.KEY_SNAPSHOT:
                # Reserved key: snapshot the digest, acknowledge with a
                # 1-byte value so stock clients see a normal hit.
                self.take_snapshot()
                chunks.append(proto.value_response(key, 0, b"1"))
                continue
            if key == proto.KEY_FETCH_DIGEST:
                if self._snapshot is not None:
                    chunks.append(proto.value_response(key, 0, self._snapshot))
                continue
            value = self.store.get(key, now)
            if value is not None:
                item = self.store.peek(key)
                flags = item.flags if item is not None else 0
                cas = self._cas.get(key) if request.command == "gets" else None
                chunks.append(proto.value_response(key, flags, value, cas=cas))
        chunks.append(proto.end_response())
        return b"".join(chunks)

    def _do_store(self, request: proto.Request) -> bytes:
        key = request.keys[0]
        if key in (proto.KEY_SNAPSHOT, proto.KEY_FETCH_DIGEST):
            return proto.client_error_response(f"{key} is reserved")
        now = self._clock()
        current = self.store.peek(key)
        exists = current is not None and not current.expired(now)
        if request.command == "add" and exists:
            return proto.not_stored_response()
        if request.command == "replace" and not exists:
            return proto.not_stored_response()
        if request.command == "cas":
            if not exists:
                return proto.not_found_response()
            if self._cas.get(key) != request.cas:
                return proto.exists_response()
        ttl = float(request.exptime) if request.exptime > 0 else None
        try:
            self.store.set(
                key,
                request.value,
                now=now,
                size=len(request.value),
                ttl=ttl,
                flags=request.flags,
            )
        except CapacityError as exc:
            return proto.error_response(str(exc))
        self._bump_cas(key)
        return proto.stored_response()

    def _bump_cas(self, key: str) -> None:
        self._cas_counter += 1
        self._cas[key] = self._cas_counter

    def _do_concat(self, request: proto.Request) -> bytes:
        key = request.keys[0]
        if key in (proto.KEY_SNAPSHOT, proto.KEY_FETCH_DIGEST):
            return proto.client_error_response(f"{key} is reserved")
        now = self._clock()
        item = self.store.peek(key)
        if item is None or item.expired(now):
            return proto.not_stored_response()
        if request.command == "append":
            merged = bytes(item.value) + request.value
        else:
            merged = request.value + bytes(item.value)
        expires = item.expires_at
        self.store.set(
            key, merged, now=now, size=len(merged), flags=item.flags,
            ttl=None if expires is None else max(0.0, expires - now),
        )
        self._bump_cas(key)
        return proto.stored_response()

    def _do_arith(self, request: proto.Request) -> bytes:
        key = request.keys[0]
        now = self._clock()
        value = self.store.get(key, now)
        if value is None:
            return proto.not_found_response()
        try:
            number = int(bytes(value).decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            return proto.client_error_response(
                "cannot increment or decrement non-numeric value"
            )
        if request.command == "incr":
            number = (number + request.delta) % (1 << 64)
        else:
            number = max(0, number - request.delta)  # decr clamps at zero
        item = self.store.peek(key)
        encoded = str(number).encode("ascii")
        expires = item.expires_at if item is not None else None
        self.store.set(
            key, encoded, now=now, size=len(encoded),
            flags=item.flags if item is not None else 0,
            ttl=None if expires is None else max(0.0, expires - now),
        )
        self._bump_cas(key)
        return proto.number_response(number)

    def _do_touch(self, request: proto.Request) -> bytes:
        key = request.keys[0]
        now = self._clock()
        item = self.store.peek(key)
        if item is None or item.expired(now):
            return proto.not_found_response()
        item.expires_at = (
            None if request.exptime <= 0 else now + float(request.exptime)
        )
        item.touch(now)
        return proto.touched_response()

    def _do_delete(self, request: proto.Request) -> bytes:
        if self.store.delete(request.keys[0], self._clock()):
            return proto.deleted_response()
        return proto.not_found_response()

    def _do_stats_slabs(self) -> bytes:
        if not isinstance(self.store, SlabStore):
            return proto.stats_response({})
        stats: Dict[str, object] = {}
        for row in self.store.slab_stats():
            prefix = str(row["class"])
            stats[f"{prefix}:chunk_size"] = row["chunk_size"]
            stats[f"{prefix}:total_pages"] = row["pages"]
            stats[f"{prefix}:used_chunks"] = row["used_chunks"]
            stats[f"{prefix}:free_chunks"] = row["free_chunks"]
        return proto.stats_response(stats)

    def _stats_dict(self) -> Dict[str, object]:
        stats = self.store.stats
        return {
            "cmd_get": stats.gets,
            "get_hits": stats.hits,
            "get_misses": stats.misses,
            "cmd_set": stats.sets,
            "evictions": stats.evictions,
            "expired_unfetched": stats.expirations,
            "curr_items": len(self.store),
            "bytes": self.store.used_bytes,
            "digest_keys": self.digest.count,
            "digest_overflows": self.digest.overflow_events,
            "digest_bytes": self.digest.size_bytes(),
            "curr_connections": self.connections,
            "inflight_commands": self.inflight,
            "shed_commands": self.shed_commands,
            "paused_reads": self.paused_reads,
        }


def main(argv: Optional[list] = None) -> None:  # pragma: no cover - CLI
    """Run one cache node as its own process (``python -m repro.net.server``).

    The net throughput bench uses this to put the server on its own core
    — a co-located server shares the client's event loop and measures
    GIL contention, not the transport.
    """
    import argparse

    parser = argparse.ArgumentParser(description="Run one cache node")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--capacity-mb", type=float, default=None)
    parser.add_argument("--expected-keys", type=int, default=100_000)
    parser.add_argument("--max-inflight", type=int, default=None)
    parser.add_argument("--max-conn-inflight", type=int, default=None)
    args = parser.parse_args(argv)

    async def serve() -> None:
        server = MemcachedServer(
            capacity_bytes=(
                int(args.capacity_mb * (1 << 20)) if args.capacity_mb else None
            ),
            bloom_config=optimal_config(args.expected_keys),
            max_inflight=args.max_inflight,
            max_conn_inflight=args.max_conn_inflight,
        )
        port = await server.start(args.host, args.port)
        print(f"LISTENING {port}", flush=True)
        await asyncio.Event().wait()

    try:
        asyncio.run(serve())
    except KeyboardInterrupt:
        pass


if __name__ == "__main__":  # pragma: no cover
    main()
