"""A small per-server connection pool for the pipelined client.

The paper's web tier pools its spymemcached connections with Apache
Commons Pool (Section V); this is the asyncio analogue.  One
:class:`ConnectionPool` fronts one cache server with up to ``size``
pipelined :class:`~repro.net.client.MemcachedClient` connections:

* **lazy dial** — connections are created on first demand (and after an
  ejection), never eagerly, so a pool pointed at a dead server costs
  nothing until someone actually calls it;
* **shared leases** — pipelined connections are safe for concurrent
  use, so :meth:`acquire` hands out the *least-loaded* live connection
  (dialling a new one while under ``size``) instead of blocking;
  concurrent fetches to one server therefore spread across sockets and
  pipeline within each, and nothing ever queues on a pool lock;
* **broken-connection ejection** — a connection poisoned mid-lease
  (timeout, reset, desync) is dropped from the pool when its last lease
  is released; the next :meth:`acquire` dials a replacement.  Ejections
  count toward :attr:`reconnects` so health monitors see connection
  churn whether the client redialled itself or the pool replaced it.

The pool never retries or degrades — that stays with the caller's
:mod:`repro.resilience` policies, which wrap pooled RPCs exactly as they
wrapped the single connection.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator, Dict, List, Optional

from repro.errors import ClientOverloadError, ConfigurationError
from repro.net.client import MemcachedClient
from repro.resilience.deadline import Deadline

__all__ = ["ConnectionPool"]


class ConnectionPool:
    """Up to ``size`` pipelined connections to one memcached endpoint.

    Args:
        host/port: the server endpoint.
        size: maximum live connections (the bound; leases are unbounded
            because pipelined connections multiplex).
        timeout: per-operation timeout handed to every client.
        pipeline: hand out pipelined clients (default).  ``False`` makes
            every connection strictly request/response — the pool then
            behaves like the pre-pipelining tier (the bench baseline).
        nodelay: set ``TCP_NODELAY`` on every connection (default True).
        max_inflight_per_conn: per-connection in-flight window used by
            the saturation check (``None`` = no window, the pre-armor
            behaviour).  When every live connection is at its window and
            the pool is at ``size``, an acquire carrying a deadline that
            cannot afford one more op-timeout of queueing **fails fast**
            with :class:`~repro.errors.ClientOverloadError` instead of
            piling onto a saturated connection.
    """

    def __init__(
        self,
        host: str,
        port: int,
        size: int = 4,
        timeout: Optional[float] = None,
        pipeline: bool = True,
        nodelay: bool = True,
        max_inflight_per_conn: Optional[int] = None,
    ) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        if max_inflight_per_conn is not None and max_inflight_per_conn < 1:
            raise ConfigurationError(
                "max_inflight_per_conn must be >= 1, "
                f"got {max_inflight_per_conn}"
            )
        self.host = host
        self.port = port
        self.size = size
        self.timeout = timeout
        self.pipeline = pipeline
        self.nodelay = nodelay
        self.max_inflight_per_conn = max_inflight_per_conn
        self._conns: List[MemcachedClient] = []
        self._leases: Dict[int, int] = {}  # id(client) -> live leases
        self._dialing = 0  # dials in flight (they hold a size slot)
        #: connections dialled over the pool's lifetime
        self.dials = 0
        #: broken connections dropped from the pool
        self.ejections = 0
        #: acquisitions that found no idle connection at the size bound
        #: and had to share a busy one (mirrors ``web.pool``'s counter)
        self.waited = 0
        #: highest concurrent lease count ever reached (high-water mark)
        self.leases_peak = 0
        #: acquisitions refused because every window was full and the
        #: deadline could not afford to queue
        self.overflow_failures = 0
        self._retired_reconnects = 0
        self._closed = False

    # ------------------------------------------------------------- stats

    @property
    def live(self) -> int:
        """Connections currently in the pool."""
        return len(self._conns)

    @property
    def leases(self) -> int:
        """Live leases across every connection."""
        return sum(self._leases.values())

    @property
    def reconnects(self) -> int:
        """Connection churn: client-level redials plus pool ejections
        (each ejection forces a replacement dial on the next acquire),
        including connections since retired.  Monotonic — health
        monitors difference it per window."""
        live = sum(client.reconnects for client in self._conns)
        return live + self._retired_reconnects + self.ejections

    # ---------------------------------------------------------- lifecycle

    async def prewarm(self) -> MemcachedClient:
        """Dial the first connection eagerly (connect-time health probe).

        Raises whatever the dial raises so the caller can record the
        failure (e.g. against a breaker); the pool stays usable — later
        acquires keep trying lazily.
        """
        if self._conns:
            return self._conns[0]
        return await self._dial()

    async def close(self) -> None:
        """Close every pooled connection (bounded by the client timeout)."""
        self._closed = True
        conns, self._conns = self._conns, []
        self._leases.clear()
        for client in conns:
            self._retired_reconnects += client.reconnects
            await client.close()

    async def __aenter__(self) -> "ConnectionPool":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------ acquire/release

    async def _dial(self) -> MemcachedClient:
        client = MemcachedClient(
            self.host,
            self.port,
            timeout=self.timeout,
            pipeline=self.pipeline,
            nodelay=self.nodelay,
        )
        # The in-flight dial holds a size slot: concurrent acquires must
        # not each pass the bound check and over-dial.
        self._dialing += 1
        try:
            await client.connect()
        finally:
            self._dialing -= 1
        self.dials += 1
        self._conns.append(client)
        self._leases[id(client)] = 0
        return client

    def _eject(self, client: MemcachedClient) -> None:
        self._conns.remove(client)
        self._leases.pop(id(client), None)
        self._retired_reconnects += client.reconnects
        self.ejections += 1
        client._poison()  # abort outright: the stream is already dead

    async def acquire(
        self, deadline: Optional[Deadline] = None
    ) -> MemcachedClient:
        """A connection to run commands on; call :meth:`release` after.

        Never blocks: below ``size`` a fresh connection is dialled when
        every live one is busy; at the bound the least-loaded live
        connection is shared (it pipelines).  Dial errors propagate —
        classification is the caller's retry policy's job.

        With a *deadline* attached the acquire fails fast instead of
        wasting work: an already-expired deadline raises
        :class:`~repro.errors.DeadlineExceeded` before any dial, and a
        saturated pool (every live connection at its
        ``max_inflight_per_conn`` window, no dial slot free) raises
        :class:`~repro.errors.ClientOverloadError` when the deadline
        cannot afford even one more op-timeout of queueing.
        """
        if self._closed:
            raise ConfigurationError("pool is closed")
        if deadline is not None:
            # A dead budget must not burn a connect + retry cycle.
            deadline.check("connection acquire")
        # Sweep idle broken connections first: they hold no leases, so
        # eject now and let the dial below replace them.
        for client in list(self._conns):
            if client.broken and self._leases.get(id(client), 0) == 0:
                self._eject(client)
        candidates = [c for c in self._conns if not c.broken]
        idle = [c for c in candidates if self._leases[id(c)] == 0]
        if idle:
            chosen = idle[0]
        elif len(self._conns) + self._dialing < self.size:
            chosen = await self._dial()
            if self._closed:  # closed while dialling
                await chosen.close()
                raise ConfigurationError("pool is closed")
        elif not candidates and not self._conns and self._dialing:
            # Everything usable is still being dialled: wait a tick and
            # share whatever lands instead of over-dialling past size.
            while self._dialing and not self._conns:
                await asyncio.sleep(0)
            return await self.acquire(deadline)
        elif candidates:
            self._check_saturation(candidates, deadline)
            self.waited += 1
            chosen = min(candidates, key=lambda c: self._leases[id(c)])
        else:
            # Every connection is broken but still leased: share one —
            # the client auto-reconnects on its next exchange.
            self.waited += 1
            chosen = min(self._conns, key=lambda c: self._leases[id(c)])
        self._leases[id(chosen)] = self._leases.get(id(chosen), 0) + 1
        total = self.leases
        if total > self.leases_peak:
            self.leases_peak = total
        return chosen

    def _check_saturation(
        self, candidates: List[MemcachedClient], deadline: Optional[Deadline]
    ) -> None:
        """Fail fast when every window is full and the deadline cannot
        afford to queue behind them (~one op-timeout of waiting)."""
        if self.max_inflight_per_conn is None or deadline is None:
            return
        if any(
            c.inflight < self.max_inflight_per_conn for c in candidates
        ):
            return
        if deadline.allows(self.timeout or 0.0):
            return
        self.overflow_failures += 1
        raise ClientOverloadError(
            f"{self.host}:{self.port}: every connection is at its "
            f"{self.max_inflight_per_conn}-command window and the "
            "deadline cannot afford to queue"
        )

    def release(self, client: MemcachedClient) -> None:
        """Return a leased connection; broken ones are ejected once the
        last lease is gone."""
        key = id(client)
        if key not in self._leases:
            return  # ejected mid-lease by close(); nothing to do
        self._leases[key] = max(0, self._leases[key] - 1)
        if client.broken and self._leases[key] == 0:
            self._eject(client)

    @contextlib.asynccontextmanager
    async def connection(
        self, deadline: Optional[Deadline] = None
    ) -> AsyncIterator[MemcachedClient]:
        """``async with pool.connection() as client:`` acquire/release."""
        client = await self.acquire(deadline)
        try:
            yield client
        finally:
            self.release(client)
